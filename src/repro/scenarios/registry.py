"""Validating registry of named scenarios.

Scenarios register under a unique name after full validation: the device,
detector and dataset must exist in their registries, the method must be one
the policy factories can build, and the ambient profile must be one of the
serialisable library profiles (so every registered scenario is guaranteed
to round-trip through JSON).  ``python -m repro scenario list|show|run``
drives the registry from the command line.

The built-in library covers the situations the paper and the examples care
about — a phone living through day/night cycles, a drone climbing into cold
air, a CCTV pole baking in midday sun, a soak test pinned at 40 °C — plus
two heterogeneous fleets: ``mixed-edge-fleet`` (three device models, four
ambient regimes in one population) and ``shared-device-mixed-load`` (one
device group whose sessions split across methods and datasets).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigurationError, ScenarioError
from repro.env.ambient import (
    AmbientSegment,
    ConstantAmbient,
    DiurnalAmbient,
    LinearRampAmbient,
    StepAmbient,
    warm_cold_warm,
)
from repro.scenarios.spec import (
    FLEET_ONLY_METHODS,
    FleetMember,
    FleetScenario,
    Scenario,
    ScenarioSpec,
    ambient_to_dict,
)

_REGISTRY: Dict[str, Scenario] = {}


def validate_scenario(scenario: Scenario) -> None:
    """Check a scenario against the component registries; raise on problems.

    Validates device, detector, dataset and method names, and that the
    ambient profile serialises (fleet scenarios validate every member).
    The spec dataclasses already enforce their structural invariants
    (positive counts, matching episode lengths, positive weights) at
    construction time.
    """
    if isinstance(scenario, FleetScenario):
        for member in scenario.members:
            validate_scenario(member.spec)
        return
    if not isinstance(scenario, ScenarioSpec):
        raise ScenarioError(
            f"expected a ScenarioSpec or FleetScenario, got {type(scenario).__name__}"
        )
    from repro.analysis.experiments import available_methods
    from repro.detection.registry import build_detector
    from repro.hardware.devices.registry import build_device
    from repro.workload.dataset import build_dataset

    try:
        build_device(scenario.device)
        build_detector(scenario.detector)
        build_dataset(scenario.dataset)
    except ConfigurationError as exc:
        raise ScenarioError(f"scenario {scenario.name!r} is invalid: {exc}") from exc
    methods = available_methods() + FLEET_ONLY_METHODS
    # "policy:<id>" deploys a frozen checkpoint from the (machine-local)
    # policy zoo; only the shape is validated here — the id resolves against
    # the store at run time (see repro.policies.frozen).
    from repro.errors import PolicyError
    from repro.policies.frozen import is_policy_method, policy_method_id

    if is_policy_method(scenario.method):
        try:
            policy_method_id(scenario.method)
        except PolicyError as exc:
            raise ScenarioError(
                f"scenario {scenario.name!r} uses an invalid policy:<id> "
                f"method: {exc}"
            ) from exc
    elif scenario.method not in methods:
        raise ScenarioError(
            f"scenario {scenario.name!r} uses unknown method "
            f"{scenario.method!r}; available: {methods} (or policy:<id>)"
        )
    ambient_to_dict(scenario.ambient)


def register_scenario(scenario: Scenario, *, overwrite: bool = False) -> None:
    """Validate and register ``scenario`` under its name."""
    validate_scenario(scenario)
    if scenario.name in _REGISTRY and not overwrite:
        raise ScenarioError(f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario


def available_scenarios() -> tuple:
    """Names of all registered scenarios, sorted."""
    return tuple(sorted(_REGISTRY))


def build_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name.

    The returned objects are frozen dataclasses; use ``with_overrides`` to
    derive variants without touching the registry.
    """
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise ScenarioError(
            f"unknown scenario {name!r}; available: {available_scenarios()}"
        ) from exc


# ---------------------------------------------------------------------------
# Built-in scenario library
# ---------------------------------------------------------------------------


def _builtin_specs() -> List[ScenarioSpec]:
    return [
        ScenarioSpec(
            name="jetson-kitti-baseline",
            device="jetson-orin-nano",
            detector="faster_rcnn",
            dataset="kitti",
            method="lotus",
            num_frames=1000,
            num_sessions=4,
            ambient=ConstantAmbient(25.0),
            description="The paper's reference cell: FasterRCNN on KITTI on "
            "a Jetson Orin Nano in a 25 C room, Lotus-managed.",
        ),
        ScenarioSpec(
            name="phone-diurnal",
            device="mi11-lite",
            detector="yolo_v5",
            dataset="kitti",
            method="default",
            num_frames=1000,
            num_sessions=8,
            ambient=DiurnalAmbient(
                mean_c=27.0, amplitude_c=9.0, period_frames=600
            ),
            description="A phone running one-stage detection through warm "
            "days and cool nights (sinusoidal ambient).",
        ),
        ScenarioSpec(
            name="drone-climb",
            device="jetson-orin-nano",
            detector="mask_rcnn",
            dataset="visdrone2019",
            method="lotus",
            num_frames=1000,
            num_sessions=4,
            ambient=LinearRampAmbient(
                start_c=25.0, end_c=0.0, ramp_frames=500, delay_frames=100
            ),
            description="A surveillance drone climbing from warm ground "
            "level into cold air while segmenting dense aerial scenes.",
        ),
        ScenarioSpec(
            name="cctv-burst",
            device="raspberry-pi-5",
            detector="yolo_v5",
            dataset="visdrone2019",
            method="default",
            num_frames=1000,
            num_sessions=6,
            ambient=StepAmbient(
                [
                    AmbientSegment(300, 24.0, label="overcast"),
                    AmbientSegment(200, 38.0, label="sun on housing"),
                    AmbientSegment(500, 24.0, label="overcast"),
                ]
            ),
            description="A pole-mounted Raspberry Pi camera hit by a "
            "midday-sun heat burst between overcast stretches.",
        ),
        ScenarioSpec(
            name="thermal-soak",
            device="mi11-lite",
            detector="faster_rcnn",
            dataset="kitti",
            method="performance",
            num_frames=1000,
            num_sessions=4,
            ambient=ConstantAmbient(40.0),
            description="Worst-case soak test: a phone pinned at maximum "
            "frequencies in a 40 C environment (throttling stress).",
        ),
        ScenarioSpec(
            name="pi-smart-farm",
            device="raspberry-pi-5",
            detector="yolo_v5",
            dataset="kitti",
            method="default",
            num_frames=1000,
            num_sessions=6,
            ambient=DiurnalAmbient(
                mean_c=24.0, amplitude_c=12.0, period_frames=800, phase_frames=200
            ),
            description="A greenhouse monitoring Pi through wide day/night "
            "temperature swings.",
        ),
        ScenarioSpec(
            name="autonomous-driving",
            device="jetson-orin-nano",
            detector="faster_rcnn",
            dataset="kitti",
            method="lotus",
            num_frames=900,
            num_sessions=2,
            ambient=ConstantAmbient(30.0),
            description="In-vehicle perception: latency-constrained "
            "FasterRCNN on KITTI in a 30 C cabin (examples/autonomous_driving.py).",
        ),
        ScenarioSpec(
            name="drone-surveillance",
            device="jetson-orin-nano",
            detector="mask_rcnn",
            dataset="visdrone2019",
            method="lotus",
            num_frames=900,
            num_sessions=2,
            ambient=warm_cold_warm(300),
            description="The paper's Fig. 7a flight: warm ground, cold "
            "altitude, warm ground (examples/drone_surveillance.py).",
        ),
        ScenarioSpec(
            name="edge-kiosk",
            device="mi11-lite",
            detector="yolo_v5",
            dataset="kitti",
            method="powersave",
            num_frames=1000,
            num_sessions=4,
            ambient=ConstantAmbient(28.0),
            description="A battery-conscious indoor kiosk holding minimum "
            "operating points in a warm lobby.",
        ),
    ]


def _builtin_fleets(specs: Dict[str, ScenarioSpec]) -> List[FleetScenario]:
    return [
        FleetScenario(
            name="mixed-edge-fleet",
            members=(
                FleetMember(specs["phone-diurnal"], weight=3.0),
                FleetMember(specs["drone-climb"], weight=1.0),
                FleetMember(specs["cctv-burst"], weight=2.0),
                FleetMember(specs["thermal-soak"], weight=1.0),
            ),
            description="A heterogeneous edge population: phones through "
            "day/night cycles, climbing drones, sun-baked CCTV poles and a "
            "hot soak cell — three device models, four ambient regimes.",
        ),
        FleetScenario(
            name="shared-device-mixed-load",
            members=(
                FleetMember(
                    specs["jetson-kitti-baseline"].with_overrides(
                        name="jetson-kitti-default", method="default"
                    ),
                    weight=1.0,
                ),
                FleetMember(
                    specs["jetson-kitti-baseline"].with_overrides(
                        name="jetson-visdrone-lotus",
                        dataset="visdrone2019",
                        seed=50,
                    ),
                    weight=1.0,
                ),
            ),
            description="One Jetson device group whose sessions split "
            "across workloads and methods — exercises the sub-fleet policy "
            "partitioning inside a single batched group.",
        ),
    ]


def _register_builtins() -> None:
    specs = {spec.name: spec for spec in _builtin_specs()}
    for spec in specs.values():
        register_scenario(spec)
    for fleet in _builtin_fleets(specs):
        register_scenario(fleet)


_register_builtins()
