"""Declarative scenarios: serialisable run recipes and heterogeneous fleets.

The scenario subsystem turns "what to run" into a first-class object:

* :class:`ScenarioSpec` — one homogeneous population (device, detector,
  dataset, method, ambient schedule, episode length, session count, seed
  block) with lossless dict/JSON round-trips.
* :class:`FleetScenario` — several weighted specs composed into one
  heterogeneous population (mixed devices, workloads and ambients), the
  input of :func:`repro.runtime.fleet.run_fleet_scenario`.
* the validating registry (:func:`register_scenario`,
  :func:`build_scenario`, :func:`available_scenarios`) with a built-in
  library of named scenarios (``phone-diurnal``, ``drone-climb``,
  ``cctv-burst``, ``thermal-soak``, ``mixed-edge-fleet``, ...), exposed on
  the command line as ``python -m repro scenario list|show|run``.
"""

from repro.scenarios.spec import (
    FLEET_ONLY_METHODS,
    FleetMember,
    FleetScenario,
    Scenario,
    ScenarioSpec,
    SessionAssignment,
    ambient_from_dict,
    ambient_to_dict,
    scenario_from_dict,
    scenario_from_json,
)
from repro.scenarios.registry import (
    available_scenarios,
    build_scenario,
    register_scenario,
    validate_scenario,
)

__all__ = [
    "FLEET_ONLY_METHODS",
    "FleetMember",
    "FleetScenario",
    "Scenario",
    "ScenarioSpec",
    "SessionAssignment",
    "ambient_from_dict",
    "ambient_to_dict",
    "available_scenarios",
    "build_scenario",
    "register_scenario",
    "scenario_from_dict",
    "scenario_from_json",
    "validate_scenario",
]
