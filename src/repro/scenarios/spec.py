"""Declarative scenario specifications.

A :class:`ScenarioSpec` is the complete, serialisable recipe for a
population of identical sessions: which device runs which detector over
which workload, under which ambient schedule and latency constraint, driven
by which control method, for how many frames, across how many sessions, and
from which seed block.  Two equal specs describe bit-identical runs, and a
spec round-trips losslessly through ``to_dict``/``from_dict`` (and JSON), so
scenarios can live in files, travel over the wire, and key caches.

A :class:`FleetScenario` composes several weighted specs into one
heterogeneous population: mixed devices, mixed detectors, mixed workloads,
mixed ambients — the "traffic model" a single
:func:`repro.runtime.fleet.run_fleet_scenario` call simulates.  Sessions
are allocated to members by weight (largest-remainder, at least one session
per member) and numbered member-by-member; session ``j`` of a member runs
seed ``spec.seed + j``, exactly like a homogeneous fleet of that spec.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple, Union

from repro.errors import ScenarioError
from repro.faults.plan import FaultPlan, fault_plan_from_dict
from repro.env.ambient import (
    AmbientProfile,
    AmbientSegment,
    ConstantAmbient,
    DiurnalAmbient,
    LinearRampAmbient,
    StepAmbient,
)

#: Fleet-only methods accepted in scenarios on top of the scalar factory's
#: list (``lotus-fleet`` trains one shared Q-network across the sessions and
#: has no scalar counterpart).
FLEET_ONLY_METHODS = ("lotus-fleet",)


# ---------------------------------------------------------------------------
# Ambient profile (de)serialisation
# ---------------------------------------------------------------------------


def ambient_to_dict(profile: AmbientProfile) -> Dict[str, Any]:
    """Serialisable description of an ambient profile.

    Supports the four library profiles (constant, stepped, diurnal, linear
    ramp); raises :class:`ScenarioError` for custom profile types, which
    cannot be promised to round-trip.
    """
    if isinstance(profile, ConstantAmbient):
        return {"kind": "constant", "temperature_c": float(profile.temperature_c)}
    if isinstance(profile, StepAmbient):
        return {
            "kind": "steps",
            "segments": [
                {
                    "num_frames": int(segment.num_frames),
                    "temperature_c": float(segment.temperature_c),
                    "label": segment.label,
                }
                for segment in profile.segments
            ],
        }
    if isinstance(profile, DiurnalAmbient):
        return {
            "kind": "diurnal",
            "mean_c": float(profile.mean_c),
            "amplitude_c": float(profile.amplitude_c),
            "period_frames": int(profile.period_frames),
            "phase_frames": int(profile.phase_frames),
        }
    if isinstance(profile, LinearRampAmbient):
        return {
            "kind": "linear_ramp",
            "start_c": float(profile.start_c),
            "end_c": float(profile.end_c),
            "ramp_frames": int(profile.ramp_frames),
            "delay_frames": int(profile.delay_frames),
        }
    raise ScenarioError(
        f"cannot serialise ambient profile of type {type(profile).__name__}"
    )


def ambient_from_dict(payload: Dict[str, Any]) -> AmbientProfile:
    """Rebuild an ambient profile from :func:`ambient_to_dict` output."""
    if not isinstance(payload, dict) or "kind" not in payload:
        raise ScenarioError("ambient payload must be a dict with a 'kind' key")
    kind = payload["kind"]
    try:
        if kind == "constant":
            return ConstantAmbient(temperature_c=float(payload["temperature_c"]))
        if kind == "steps":
            return StepAmbient(
                [
                    AmbientSegment(
                        num_frames=int(segment["num_frames"]),
                        temperature_c=float(segment["temperature_c"]),
                        label=str(segment.get("label", "")),
                    )
                    for segment in payload["segments"]
                ]
            )
        if kind == "diurnal":
            return DiurnalAmbient(
                mean_c=float(payload["mean_c"]),
                amplitude_c=float(payload["amplitude_c"]),
                period_frames=int(payload["period_frames"]),
                phase_frames=int(payload.get("phase_frames", 0)),
            )
        if kind == "linear_ramp":
            return LinearRampAmbient(
                start_c=float(payload["start_c"]),
                end_c=float(payload["end_c"]),
                ramp_frames=int(payload["ramp_frames"]),
                delay_frames=int(payload.get("delay_frames", 0)),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise ScenarioError(f"malformed ambient payload for kind {kind!r}: {exc}") from exc
    raise ScenarioError(f"unknown ambient kind {kind!r}")


# ---------------------------------------------------------------------------
# ScenarioSpec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSpec:
    """One homogeneous population of sessions, fully described.

    Attributes:
        name: Scenario identifier (registry key / report label).
        device: Device model name (:mod:`repro.hardware.devices.registry`).
        detector: Detector cost-model name (:mod:`repro.detection.registry`).
        dataset: Workload dataset profile name
            (:mod:`repro.workload.dataset`).
        method: Control method — any scalar method
            (:func:`repro.analysis.experiments.make_policy`) or the
            fleet-only ``lotus-fleet``.
        num_frames: Episode length in frames.
        num_sessions: Default population size when the scenario runs on the
            fleet engine (a scalar run uses one session).
        seed: Base seed of the scenario's seed block; session ``i`` runs
            with seed ``seed + i``.
        latency_constraint_ms: Explicit latency constraint, or ``None`` to
            derive the default from the cost model.
        ambient: Ambient-temperature schedule every session follows.
        faults: Optional seeded fault plan (sensor dropouts/spikes,
            throttling storms, channel loss, worker crashes) injected into
            every run of the scenario; ``None`` runs fault-free.
        description: Human-readable description for listings.
    """

    name: str
    device: str = "jetson-orin-nano"
    detector: str = "faster_rcnn"
    dataset: str = "kitti"
    method: str = "default"
    num_frames: int = 1000
    num_sessions: int = 1
    seed: int = 0
    latency_constraint_ms: float | None = None
    ambient: AmbientProfile = field(default_factory=ConstantAmbient)
    faults: FaultPlan | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("scenario name must be non-empty")
        if self.num_frames <= 0:
            raise ScenarioError("num_frames must be positive")
        if self.num_sessions <= 0:
            raise ScenarioError("num_sessions must be positive")
        if self.latency_constraint_ms is not None and self.latency_constraint_ms <= 0:
            raise ScenarioError("latency_constraint_ms must be positive")
        if not isinstance(self.ambient, AmbientProfile):
            raise ScenarioError("ambient must be an AmbientProfile")
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise ScenarioError("faults must be a FaultPlan or None")

    def with_overrides(self, **kwargs: Any) -> "ScenarioSpec":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)

    def with_faults(self, plan: FaultPlan | None) -> "ScenarioSpec":
        """Return a copy with the fault plan replaced (``None`` clears it)."""
        return self.with_overrides(faults=plan)

    def session_seed(self, session_index: int) -> int:
        """Base seed of session ``session_index`` of this scenario."""
        if session_index < 0:
            raise ScenarioError("session_index must be non-negative")
        return self.seed + session_index

    def setting(self) -> Any:
        """The :class:`~repro.analysis.experiments.ExperimentSetting` of one
        session of this scenario (seeded with the block's base seed; pass
        the spec's :attr:`ambient` alongside it for non-constant profiles).
        """
        from repro.analysis.experiments import ExperimentSetting

        return ExperimentSetting(
            device=self.device,
            detector=self.detector,
            dataset=self.dataset,
            num_frames=self.num_frames,
            latency_constraint_ms=self.latency_constraint_ms,
            ambient_temperature_c=float(self.ambient.initial_temperature()),
            seed=self.seed,
        )

    def resolved_latency_constraint_ms(self) -> float:
        """The constraint in force: explicit, or the cost-model default."""
        if self.latency_constraint_ms is not None:
            return float(self.latency_constraint_ms)
        from repro.analysis.experiments import default_latency_constraint

        return default_latency_constraint(self.device, self.detector, self.dataset)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible description; inverse of :meth:`from_dict`."""
        return {
            "kind": "scenario",
            "name": self.name,
            "device": self.device,
            "detector": self.detector,
            "dataset": self.dataset,
            "method": self.method,
            "num_frames": int(self.num_frames),
            "num_sessions": int(self.num_sessions),
            "seed": int(self.seed),
            "latency_constraint_ms": (
                None
                if self.latency_constraint_ms is None
                else float(self.latency_constraint_ms)
            ),
            "ambient": ambient_to_dict(self.ambient),
            "faults": None if self.faults is None else self.faults.to_dict(),
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        if not isinstance(payload, dict):
            raise ScenarioError("scenario payload must be a dict")
        kind = payload.get("kind", "scenario")
        if kind != "scenario":
            raise ScenarioError(f"expected kind 'scenario', got {kind!r}")
        known = {
            "kind",
            "name",
            "device",
            "detector",
            "dataset",
            "method",
            "num_frames",
            "num_sessions",
            "seed",
            "latency_constraint_ms",
            "ambient",
            "faults",
            "description",
        }
        unexpected = set(payload) - known
        if unexpected:
            raise ScenarioError(f"unexpected scenario keys: {sorted(unexpected)}")
        if "name" not in payload:
            raise ScenarioError("scenario payload needs a 'name'")
        constraint = payload.get("latency_constraint_ms")
        try:
            return cls(
                name=str(payload["name"]),
                device=str(payload.get("device", "jetson-orin-nano")),
                detector=str(payload.get("detector", "faster_rcnn")),
                dataset=str(payload.get("dataset", "kitti")),
                method=str(payload.get("method", "default")),
                num_frames=int(payload.get("num_frames", 1000)),
                num_sessions=int(payload.get("num_sessions", 1)),
                seed=int(payload.get("seed", 0)),
                latency_constraint_ms=None if constraint is None else float(constraint),
                ambient=(
                    ambient_from_dict(payload["ambient"])
                    if "ambient" in payload
                    else ConstantAmbient()
                ),
                faults=(
                    None
                    if payload.get("faults") is None
                    else fault_plan_from_dict(payload["faults"])
                ),
                description=str(payload.get("description", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ScenarioError(f"malformed scenario payload: {exc}") from exc

    def to_json(self, indent: int | None = 2) -> str:
        """Serialise to JSON; inverse of :meth:`from_json`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"invalid scenario JSON: {exc}") from exc
        return cls.from_dict(payload)


# ---------------------------------------------------------------------------
# FleetScenario
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FleetMember:
    """One weighted member of a heterogeneous fleet.

    Attributes:
        spec: The member's scenario spec.
        weight: Relative share of the fleet's sessions this member receives
            (must be positive and finite).
    """

    spec: ScenarioSpec
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not isinstance(self.spec, ScenarioSpec):
            raise ScenarioError("member spec must be a ScenarioSpec")
        if not math.isfinite(self.weight) or self.weight <= 0:
            raise ScenarioError("member weight must be positive and finite")


@dataclass(frozen=True)
class SessionAssignment:
    """One session of a heterogeneous fleet, resolved to its spec and seed.

    Attributes:
        index: Global session index within the fleet (trace column).
        member_index: Which fleet member the session belongs to.
        spec: The member's scenario spec.
        seed: The session's base seed (``spec.seed`` + its local index
            within the member).
    """

    index: int
    member_index: int
    spec: ScenarioSpec
    seed: int


@dataclass(frozen=True)
class FleetScenario:
    """A heterogeneous fleet: several weighted scenario specs, one run.

    Members may differ in device, detector, dataset, method, ambient
    schedule, constraint and seed block; they must agree on the episode
    length (sessions advance lock-step).  Plain
    :class:`ScenarioSpec` entries in ``members`` are wrapped as weight-1
    members.

    Attributes:
        name: Fleet identifier (registry key / report label).
        members: The weighted member specs.
        num_sessions: Default total population size; ``None`` uses the sum
            of the member specs' own ``num_sessions``.
        description: Human-readable description for listings.
    """

    name: str
    members: Tuple[FleetMember, ...]
    num_sessions: int | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("fleet scenario name must be non-empty")
        members = tuple(
            member if isinstance(member, FleetMember) else FleetMember(member)
            for member in self.members
        )
        if not members:
            raise ScenarioError("a fleet scenario needs at least one member")
        object.__setattr__(self, "members", members)
        frames = {member.spec.num_frames for member in members}
        if len(frames) > 1:
            raise ScenarioError(
                f"fleet members must share one episode length, got {sorted(frames)}"
            )
        if self.num_sessions is not None and self.num_sessions < len(members):
            raise ScenarioError(
                f"num_sessions={self.num_sessions} cannot cover "
                f"{len(members)} members (need at least one session each)"
            )

    @property
    def num_frames(self) -> int:
        """Episode length shared by every member."""
        return self.members[0].spec.num_frames

    def total_sessions(self) -> int:
        """Default fleet size: explicit, or the sum of member populations."""
        if self.num_sessions is not None:
            return int(self.num_sessions)
        return sum(member.spec.num_sessions for member in self.members)

    def allocate(self, total_sessions: int | None = None) -> Tuple[int, ...]:
        """Sessions per member for a total of ``total_sessions``.

        Largest-remainder allocation over the member weights, with every
        member guaranteed at least one session; deterministic (remainder
        ties break towards earlier members).
        """
        total = self.total_sessions() if total_sessions is None else int(total_sessions)
        count = len(self.members)
        if total < count:
            raise ScenarioError(
                f"cannot allocate {total} sessions across {count} members"
            )
        weights = [member.weight for member in self.members]
        weight_sum = sum(weights)
        ideal = [weight / weight_sum * total for weight in weights]
        counts = [int(share) for share in ideal]
        remainders = [share - count_ for share, count_ in zip(ideal, counts)]
        order = sorted(range(count), key=lambda i: (-remainders[i], i))
        for i in order[: total - sum(counts)]:
            counts[i] += 1
        for i in range(count):
            if counts[i] == 0:
                donor = max(range(count), key=lambda j: (counts[j], -j))
                counts[donor] -= 1
                counts[i] += 1
        return tuple(counts)

    def session_assignments(
        self, total_sessions: int | None = None
    ) -> Tuple[SessionAssignment, ...]:
        """Resolve every session to its spec and seed, in fleet order.

        Sessions are numbered member-by-member (member 0's sessions first);
        the ``j``-th session of a member runs seed ``spec.seed + j``, so each
        member behaves exactly like a homogeneous fleet of its own spec.
        """
        assignments: List[SessionAssignment] = []
        counts = self.allocate(total_sessions)
        for member_index, (member, count) in enumerate(zip(self.members, counts)):
            for local in range(count):
                assignments.append(
                    SessionAssignment(
                        index=len(assignments),
                        member_index=member_index,
                        spec=member.spec,
                        seed=member.spec.session_seed(local),
                    )
                )
        return tuple(assignments)

    def with_overrides(self, **kwargs: Any) -> "FleetScenario":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)

    def with_faults(self, plan: FaultPlan | None) -> "FleetScenario":
        """Return a copy with ``plan`` attached to every member spec."""
        return self.with_overrides(
            members=tuple(
                FleetMember(member.spec.with_faults(plan), member.weight)
                for member in self.members
            )
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible description; inverse of :meth:`from_dict`."""
        return {
            "kind": "fleet",
            "name": self.name,
            "num_sessions": self.num_sessions,
            "members": [
                {"weight": float(member.weight), "spec": member.spec.to_dict()}
                for member in self.members
            ],
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FleetScenario":
        """Rebuild a fleet scenario from :meth:`to_dict` output."""
        if not isinstance(payload, dict):
            raise ScenarioError("fleet payload must be a dict")
        if payload.get("kind") != "fleet":
            raise ScenarioError(f"expected kind 'fleet', got {payload.get('kind')!r}")
        unexpected = set(payload) - {
            "kind",
            "name",
            "num_sessions",
            "members",
            "description",
        }
        if unexpected:
            raise ScenarioError(f"unexpected fleet keys: {sorted(unexpected)}")
        if "name" not in payload or "members" not in payload:
            raise ScenarioError("fleet payload needs 'name' and 'members'")
        try:
            members = tuple(
                FleetMember(
                    spec=ScenarioSpec.from_dict(entry["spec"]),
                    weight=float(entry.get("weight", 1.0)),
                )
                for entry in payload["members"]
            )
            sessions = payload.get("num_sessions")
            return cls(
                name=str(payload["name"]),
                members=members,
                num_sessions=None if sessions is None else int(sessions),
                description=str(payload.get("description", "")),
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ScenarioError(f"malformed fleet payload: {exc}") from exc

    def to_json(self, indent: int | None = 2) -> str:
        """Serialise to JSON; inverse of :meth:`from_json`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FleetScenario":
        """Rebuild a fleet scenario from :meth:`to_json` output."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"invalid fleet scenario JSON: {exc}") from exc
        return cls.from_dict(payload)


Scenario = Union[ScenarioSpec, FleetScenario]


def scenario_from_dict(payload: Dict[str, Any]) -> Scenario:
    """Rebuild either scenario flavour, dispatching on the ``kind`` key."""
    if not isinstance(payload, dict):
        raise ScenarioError("scenario payload must be a dict")
    kind = payload.get("kind", "scenario")
    if kind == "scenario":
        return ScenarioSpec.from_dict(payload)
    if kind == "fleet":
        return FleetScenario.from_dict(payload)
    raise ScenarioError(f"unknown scenario kind {kind!r}")


def scenario_from_json(text: str) -> Scenario:
    """Rebuild either scenario flavour from its JSON form."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"invalid scenario JSON: {exc}") from exc
    return scenario_from_dict(payload)
