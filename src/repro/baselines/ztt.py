"""zTT baseline (Kim et al., "zTT: Learning-based DVFS with zero thermal
throttling for mobile devices", MobiSys 2021).

zTT is the strongest baseline of the paper: like Lotus it scales CPU and GPU
frequency jointly with a DQN and tries to avoid thermal throttling.  The
differences — and the reasons it underperforms on two-stage detectors — are:

* **one decision per frame**: zTT scales frequency only at the start of an
  image inference, so it cannot react to the proposal count and the
  second-stage latency variation goes uncorrected;
* **no proposal awareness**: its state contains temperatures, frequencies
  and the achieved performance (previous frame latency) but nothing about
  the current frame's work;
* **no variation term in the reward**: zTT rewards high performance and
  penalises overheating but does not explicitly reward a small latency
  variance;
* **unconditional cool-down**: whenever the device is overheated it always
  takes a random lower frequency pair, so it never learns how to act in hot
  states.

This implementation reuses the same DQN substrate as Lotus so that the
comparison isolates exactly those design differences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.core.action import JointActionSpace
from repro.core.cooldown import CooldownSelector
from repro.env.environment import (
    FrameResult,
    FrameStartObservation,
    MidFrameObservation,
)
from repro.env.policy import FrequencyDecision, Policy
from repro.rl.dqn import DqnConfig, DqnLearner
from repro.rl.optimizer import Adam
from repro.rl.replay import ReplayBuffer
from repro.rl.schedule import CosineDecaySchedule, LinearDecaySchedule
from repro.rl.slimmable import SlimmableMLP

#: zTT state: CPU temperature, GPU temperature, CPU level, GPU level,
#: previous frame latency (normalised by the constraint) and the previous
#: frame's latency slack.
ZTT_STATE_DIMENSION = 6


@dataclass(frozen=True)
class ZttConfig:
    """Hyper-parameters of the zTT baseline agent.

    Attributes:
        hidden_dims: Hidden-layer sizes of the Q-network.
        discount: DQN discount factor.
        learning_rate: Adam learning rate.
        lr_decay_steps: Cosine learning-rate decay horizon.
        batch_size: Replay mini-batch size.
        replay_capacity: Replay buffer capacity.
        learning_starts: Transitions required before training begins.
        target_sync_interval: Training steps between target syncs.
        epsilon_start / epsilon_end / epsilon_decay_steps: Exploration
            schedule.
        temperature_weight: Weight of the temperature reward term.
        penalty: Penalty multiplier for violations and overheating.
        tanh_scale: Slope of the performance reward.
        temperature_soft_margin_c: Width of the graded zone below the
            threshold (kept identical to the Lotus reward so the comparison
            isolates the algorithmic differences, not the reward shaping).
        temperature_threshold_c: Override of the throttling threshold used by
            the reward/cool-down (``None`` = use the environment's).
        seed: Seed for the agent's random generator.
    """

    hidden_dims: tuple[int, ...] = (64, 64, 64)
    discount: float = 0.5
    learning_rate: float = 0.005
    lr_decay_steps: int = 10_000
    batch_size: int = 64
    replay_capacity: int = 4_096
    learning_starts: int = 64
    target_sync_interval: int = 100
    epsilon_start: float = 1.0
    epsilon_end: float = 0.01
    epsilon_decay_steps: int = 600
    temperature_weight: float = 0.5
    penalty: float = 2.0
    tanh_scale: float = 2.0
    temperature_soft_margin_c: float = 4.0
    temperature_threshold_c: float | None = None
    seed: int = 1

    def __post_init__(self) -> None:
        if not self.hidden_dims:
            raise ConfigurationError("hidden_dims must not be empty")
        if not 0.0 <= self.discount < 1.0:
            raise ConfigurationError("discount must lie in [0, 1)")
        if self.batch_size <= 0 or self.replay_capacity < self.batch_size:
            raise ConfigurationError("replay_capacity must be at least batch_size")
        if self.learning_starts < self.batch_size:
            raise ConfigurationError("learning_starts must be at least batch_size")

    def for_episode_length(self, num_frames: int) -> "ZttConfig":
        """Scale the exploration/decay horizons to an episode length."""
        if num_frames <= 0:
            raise ConfigurationError("num_frames must be positive")
        return ZttConfig(
            hidden_dims=self.hidden_dims,
            discount=self.discount,
            learning_rate=self.learning_rate,
            lr_decay_steps=max(200, num_frames),
            batch_size=self.batch_size,
            replay_capacity=self.replay_capacity,
            learning_starts=self.learning_starts,
            target_sync_interval=self.target_sync_interval,
            epsilon_start=self.epsilon_start,
            epsilon_end=self.epsilon_end,
            epsilon_decay_steps=max(50, int(0.4 * num_frames)),
            temperature_weight=self.temperature_weight,
            penalty=self.penalty,
            tanh_scale=self.tanh_scale,
            temperature_soft_margin_c=self.temperature_soft_margin_c,
            temperature_threshold_c=self.temperature_threshold_c,
            seed=self.seed,
        )


class ZttPolicy(Policy):
    """The zTT joint CPU/GPU DQN governor (single decision per frame)."""

    name = "ztt"

    def __init__(
        self,
        cpu_levels: int,
        gpu_levels: int,
        temperature_threshold_c: float,
        config: ZttConfig | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.config = config if config is not None else ZttConfig()
        self.rng = rng if rng is not None else np.random.default_rng(self.config.seed)
        self.action_space = JointActionSpace(cpu_levels, gpu_levels)
        self.temperature_threshold_c = (
            self.config.temperature_threshold_c
            if self.config.temperature_threshold_c is not None
            else temperature_threshold_c
        )
        self._cpu_levels = cpu_levels
        self._gpu_levels = gpu_levels
        self.network = SlimmableMLP(
            input_dim=ZTT_STATE_DIMENSION,
            hidden_dims=self.config.hidden_dims,
            output_dim=self.action_space.size,
            widths=(1.0,),
            rng=self.rng,
        )
        self.learner = DqnLearner(
            network=self.network,
            config=DqnConfig(
                discount=self.config.discount,
                batch_size=self.config.batch_size,
                target_sync_interval=self.config.target_sync_interval,
            ),
            optimizer=Adam(learning_rate=self.config.learning_rate),
            learning_rate_schedule=CosineDecaySchedule(
                initial=self.config.learning_rate,
                decay_steps=self.config.lr_decay_steps,
                final=self.config.learning_rate * 0.01,
            ),
        )
        self._epsilon_schedule = LinearDecaySchedule(
            initial=self.config.epsilon_start,
            final=self.config.epsilon_end,
            decay_steps=self.config.epsilon_decay_steps,
        )
        # zTT's cool-down is unconditional: always pick a cooler pair when hot.
        self.cooldown = CooldownSelector(initial_epsilon=1.0, decay_triggers=1, always=True)
        self.buffer = ReplayBuffer(self.config.replay_capacity)

        self.training = True
        self._step_count = 0
        self._loss_history: List[float] = []
        self._reward_history: List[float] = []
        self._last_state: np.ndarray | None = None
        self._last_action: int | None = None
        self._pending_reward: float | None = None

    # -- public knobs -------------------------------------------------------------------

    def set_training(self, training: bool) -> None:
        """Enable/disable exploration and learning."""
        self.training = training

    @property
    def epsilon(self) -> float:
        """Current exploration epsilon (0 in evaluation mode)."""
        if not self.training:
            return 0.0
        return self._epsilon_schedule.value(self._step_count)

    @property
    def loss_history(self) -> List[float]:
        """TD losses of all training steps so far."""
        return list(self._loss_history)

    @property
    def reward_history(self) -> List[float]:
        """Per-frame rewards observed so far."""
        return list(self._reward_history)

    def reset(self) -> None:
        """Reset per-episode bookkeeping (keeps learned weights and replay)."""
        self._last_state = None
        self._last_action = None
        self._pending_reward = None

    # -- checkpointing -------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Complete snapshot of the agent's training state (see
        :meth:`repro.core.agent.LotusAgent.state_dict` for the contract)."""
        return {
            "training": bool(self.training),
            "step_count": int(self._step_count),
            "loss_history": [float(v) for v in self._loss_history],
            "reward_history": [float(v) for v in self._reward_history],
            "rng": self.rng.bit_generator.state,
            "cooldown": self.cooldown.state_dict(),
            "learner": self.learner.state_dict(),
            "buffer": self.buffer.state_dict(),
            "last_state": None if self._last_state is None else self._last_state.copy(),
            "last_action": None if self._last_action is None else int(self._last_action),
            "pending_reward": (
                None if self._pending_reward is None else float(self._pending_reward)
            ),
        }

    def load_state_dict(self, payload: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into this agent in place."""
        self.learner.load_state_dict(payload["learner"])
        self.buffer.load_state_dict(payload["buffer"])
        self.cooldown.load_state_dict(payload["cooldown"])
        self.rng.bit_generator.state = payload["rng"]
        self.training = bool(payload["training"])
        self._step_count = int(payload["step_count"])
        self._loss_history = [float(v) for v in payload["loss_history"]]
        self._reward_history = [float(v) for v in payload["reward_history"]]
        self._last_state = (
            None
            if payload["last_state"] is None
            else np.asarray(payload["last_state"], dtype=float)
        )
        self._last_action = (
            None if payload["last_action"] is None else int(payload["last_action"])
        )
        self._pending_reward = (
            None if payload["pending_reward"] is None else float(payload["pending_reward"])
        )

    # -- state / reward --------------------------------------------------------------------

    def _encode(self, observation: FrameStartObservation) -> np.ndarray:
        previous_latency = (
            observation.previous_latency_ms
            if observation.previous_latency_ms is not None
            else observation.latency_constraint_ms
        )
        latency_fraction = previous_latency / observation.latency_constraint_ms
        slack_fraction = 1.0 - latency_fraction
        return np.array(
            [
                observation.cpu_temperature_c / self.temperature_threshold_c,
                observation.gpu_temperature_c / self.temperature_threshold_c,
                observation.cpu_level / max(1, self._cpu_levels - 1),
                observation.gpu_level / max(1, self._gpu_levels - 1),
                float(np.clip(latency_fraction, 0.0, 2.0)),
                float(np.clip(slack_fraction, -1.0, 1.0)),
            ],
            dtype=float,
        )

    def _reward(self, result: FrameResult) -> float:
        slack_fraction = result.latency_slack_ms / result.latency_constraint_ms
        if slack_fraction > 0:
            time_reward = float(np.tanh(self.config.tanh_scale * slack_fraction))
        else:
            time_reward = self.config.penalty * slack_fraction
        hottest = max(result.cpu_temperature_c, result.gpu_temperature_c)
        margin = self.config.temperature_soft_margin_c
        if hottest > self.temperature_threshold_c:
            temperature_reward = -self.config.penalty
        elif margin <= 0 or hottest <= self.temperature_threshold_c - margin:
            temperature_reward = 1.0
        else:
            temperature_reward = (self.temperature_threshold_c - hottest) / margin
        return time_reward + self.config.temperature_weight * temperature_reward

    # -- policy protocol -----------------------------------------------------------------

    def begin_frame(self, observation: FrameStartObservation) -> FrequencyDecision:
        state = self._encode(observation)
        if (
            self.training
            and self._last_state is not None
            and self._last_action is not None
            and self._pending_reward is not None
        ):
            self.buffer.append(
                state=self._last_state,
                action=self._last_action,
                reward=self._pending_reward,
                next_state=state,
                next_width=1.0,
            )
        self._pending_reward = None
        if (
            self.training
            and len(self.buffer) >= max(self.config.learning_starts, self.config.batch_size)
        ):
            batch = self.buffer.sample(self.config.batch_size, self.rng)
            loss = self.learner.train_batch(batch, width=1.0)
            self._loss_history.append(loss)

        forced = None
        if self.training:
            forced = self.cooldown.maybe_cooldown_action(
                self.action_space,
                observation.cpu_level,
                observation.gpu_level,
                observation.cpu_temperature_c,
                observation.gpu_temperature_c,
                self.temperature_threshold_c,
                self.rng,
            )
        if forced is not None:
            action = forced
        else:
            action = self.learner.select_action(state, self.epsilon, self.rng, width=1.0)
        self._step_count += 1
        self._last_state = state
        self._last_action = action
        cpu_level, gpu_level = self.action_space.decode(action)
        return FrequencyDecision(cpu_level=cpu_level, gpu_level=gpu_level)

    def mid_frame(self, observation: MidFrameObservation) -> None:
        # zTT only acts once per frame: the mid-frame decision point is the
        # Lotus contribution it lacks.
        return None

    def end_frame(self, result: FrameResult) -> None:
        reward = self._reward(result)
        self._reward_history.append(reward)
        self._pending_reward = reward
