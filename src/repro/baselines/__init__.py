"""Learning-based baselines.

Currently this package contains the zTT baseline (Kim et al., MobiSys'21),
the state-of-the-art learning-based thermal-aware DVFS governor the paper
compares against.  The "default" operating-system baseline lives in
:mod:`repro.governors`.
"""

from repro.baselines.ztt import ZttConfig, ZttPolicy

__all__ = ["ZttConfig", "ZttPolicy"]
