"""Frame-level execution traces.

A :class:`Trace` is the primary experiment artefact: one
:class:`FrameRecord` per processed image, carrying everything needed to
regenerate the paper's figures (latency and temperature series) and tables
(latency mean/std and satisfaction rate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence

import numpy as np

from repro.errors import ExperimentError


@dataclass(frozen=True)
class FrameRecord:
    """Everything recorded about the inference of one image frame.

    Attributes:
        index: Frame index within the episode.
        dataset: Dataset the frame came from.
        num_proposals: RPN proposal count (0 for one-stage detectors).
        stage1_latency_ms: Latency of pre-processing + backbone + RPN.
        stage2_latency_ms: Latency of RoI pooling + heads + post-processing.
        total_latency_ms: End-to-end frame latency.
        latency_constraint_ms: Constraint in force for this frame.
        met_constraint: Whether ``total_latency_ms <= latency_constraint_ms``.
        cpu_temperature_c / gpu_temperature_c: Die temperatures at frame end.
        cpu_level_stage1 / gpu_level_stage1: Effective levels during stage 1.
        cpu_level_stage2 / gpu_level_stage2: Effective levels during stage 2.
        cpu_throttled / gpu_throttled: Whether hardware throttling was active
            at any point during the frame.
        ambient_temperature_c: Ambient temperature while processing the frame.
        energy_j: Energy consumed by the frame.
    """

    index: int
    dataset: str
    num_proposals: int
    stage1_latency_ms: float
    stage2_latency_ms: float
    total_latency_ms: float
    latency_constraint_ms: float
    met_constraint: bool
    cpu_temperature_c: float
    gpu_temperature_c: float
    cpu_level_stage1: int
    gpu_level_stage1: int
    cpu_level_stage2: int
    gpu_level_stage2: int
    cpu_throttled: bool
    gpu_throttled: bool
    ambient_temperature_c: float
    energy_j: float

    @property
    def mean_temperature_c(self) -> float:
        """Average of CPU and GPU temperature (the quantity the paper plots)."""
        return 0.5 * (self.cpu_temperature_c + self.gpu_temperature_c)

    @property
    def any_throttled(self) -> bool:
        """Whether either processor throttled during the frame."""
        return self.cpu_throttled or self.gpu_throttled


class Trace:
    """Ordered collection of :class:`FrameRecord` entries."""

    def __init__(self, records: Sequence[FrameRecord] | None = None):
        self._records: List[FrameRecord] = list(records) if records else []

    # -- container protocol -------------------------------------------------------

    def append(self, record: FrameRecord) -> None:
        """Append a record to the trace."""
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[FrameRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> FrameRecord:
        return self._records[index]

    @property
    def records(self) -> tuple[FrameRecord, ...]:
        """All records as an immutable tuple."""
        return tuple(self._records)

    # -- slicing helpers -------------------------------------------------------------

    def tail(self, count: int) -> "Trace":
        """The last ``count`` records as a new trace."""
        if count < 0:
            raise ExperimentError("count must be non-negative")
        return Trace(self._records[-count:] if count else [])

    def skip(self, count: int) -> "Trace":
        """Drop the first ``count`` records (e.g. a warm-up / learning prefix)."""
        if count < 0:
            raise ExperimentError("count must be non-negative")
        return Trace(self._records[count:])

    def for_dataset(self, dataset: str) -> "Trace":
        """Records belonging to one dataset (useful after domain switches)."""
        return Trace([r for r in self._records if r.dataset == dataset])

    # -- array accessors ---------------------------------------------------------------

    def latencies_ms(self) -> np.ndarray:
        """Total latency of every frame as a NumPy array."""
        return np.array([r.total_latency_ms for r in self._records], dtype=float)

    def stage1_latencies_ms(self) -> np.ndarray:
        """Stage-1 latency of every frame."""
        return np.array([r.stage1_latency_ms for r in self._records], dtype=float)

    def stage2_latencies_ms(self) -> np.ndarray:
        """Stage-2 latency of every frame."""
        return np.array([r.stage2_latency_ms for r in self._records], dtype=float)

    def proposals(self) -> np.ndarray:
        """Proposal count of every frame."""
        return np.array([r.num_proposals for r in self._records], dtype=int)

    def mean_temperatures_c(self) -> np.ndarray:
        """Mean (CPU, GPU) temperature of every frame."""
        return np.array([r.mean_temperature_c for r in self._records], dtype=float)

    def cpu_temperatures_c(self) -> np.ndarray:
        """CPU temperature of every frame."""
        return np.array([r.cpu_temperature_c for r in self._records], dtype=float)

    def gpu_temperatures_c(self) -> np.ndarray:
        """GPU temperature of every frame."""
        return np.array([r.gpu_temperature_c for r in self._records], dtype=float)

    def constraint_met(self) -> np.ndarray:
        """Boolean array of constraint satisfaction per frame."""
        return np.array([r.met_constraint for r in self._records], dtype=bool)

    def throttled(self) -> np.ndarray:
        """Boolean array: whether either processor throttled per frame."""
        return np.array([r.any_throttled for r in self._records], dtype=bool)

    def energies_j(self) -> np.ndarray:
        """Per-frame energy consumption."""
        return np.array([r.energy_j for r in self._records], dtype=float)
