"""Policy interface.

Everything that controls frequency in this repository — the reimplemented
Linux default governors, the zTT baseline, the Lotus agent and the frozen
checkpoint deployments of :mod:`repro.policies` — implements the same small
:class:`Policy` protocol: it may return a frequency decision at the start
of a frame, another one after the RPN, and receives the frame's outcome as
feedback.  The episode runner drives any policy through the same loop,
which is what makes the head-to-head comparisons of Tables 1/2
straightforward.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.env.environment import (
    FrameResult,
    FrameStartObservation,
    MidFrameObservation,
)


@dataclass(frozen=True)
class FrequencyDecision:
    """A joint CPU/GPU frequency-level request.

    Attributes:
        cpu_level: Requested CPU frequency level.
        gpu_level: Requested GPU frequency level.
    """

    cpu_level: int
    gpu_level: int


class Policy(ABC):
    """A DVFS control policy driven by the episode runner.

    Implementations return ``None`` from a decision hook to leave the
    frequencies untouched at that point (e.g. a governor that only acts once
    per frame, or the hardware-default behaviour between kernel governor
    invocations).
    """

    #: Human-readable policy name used in tables and reports.
    name: str = "policy"

    @abstractmethod
    def begin_frame(self, observation: FrameStartObservation) -> FrequencyDecision | None:
        """Decide frequencies at the start of an image inference."""

    @abstractmethod
    def mid_frame(self, observation: MidFrameObservation) -> FrequencyDecision | None:
        """Decide frequencies after the RPN, when the proposal count is known."""

    def end_frame(self, result: FrameResult) -> None:
        """Receive the completed frame's outcome (latency, temperatures)."""

    def reset(self) -> None:
        """Reset any internal state before a new episode."""
