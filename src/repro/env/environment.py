"""The frame-by-frame inference environment.

:class:`InferenceEnvironment` runs a detector on a workload stream on a
simulated device, exposing the two per-frame decision points that structure
the Lotus framework:

1. :meth:`begin_frame` returns the observation available at the start of an
   image inference (temperatures, frequencies, constraint) — the controller
   may set frequencies before stage 1 runs.
2. :meth:`run_first_stage` executes pre-processing + backbone + RPN at the
   current frequencies, heats the device accordingly, samples the proposal
   count, and returns the mid-frame observation — the controller may adjust
   frequencies again before stage 2 runs.
3. :meth:`run_second_stage` executes the proposal-dependent second stage and
   returns the complete :class:`FrameResult`.

A strict phase protocol is enforced so that policies cannot accidentally
skip a stage or act twice; that protocol is precisely the contract a real
deployment has (the second decision can only happen once the RPN has
produced its proposals).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Union

import numpy as np

from repro.errors import ConfigurationError, ExperimentError
from repro.detection.detector import DetectorModel
from repro.detection.latency import ExecutionModel, compute_profile_for
from repro.env.ambient import AmbientProfile, ConstantAmbient
from repro.env.trace import FrameRecord
from repro.hardware.device import EdgeDevice
from repro.workload.generator import DomainSwitchStream, Frame, FrameStream

StreamLike = Union[FrameStream, DomainSwitchStream]


@dataclass(frozen=True)
class FrameStartObservation:
    """Observation available at the start of an image inference (state s_2i).

    Attributes:
        frame_index: Index of the frame about to be processed.
        dataset: Dataset the frame belongs to.
        cpu_temperature_c / gpu_temperature_c: Current die temperatures.
        cpu_level / gpu_level: Current effective frequency levels.
        cpu_num_levels / gpu_num_levels: Sizes of the frequency tables.
        latency_constraint_ms: Constraint L for this frame.
        remaining_budget_ms: Time left to meet the constraint (equals L at
            the start of the frame; this is the paper's ΔL_{2i}).
        previous_latency_ms: Total latency of the previous frame (None for
            the first frame) — the feedback signal utilisation-style
            governors and zTT react to.
        cpu_utilisation / gpu_utilisation: Utilisation observed during the
            previous frame (0 before the first frame).
        ambient_temperature_c: Current ambient temperature.
        throttle_threshold_c: Hardware trip temperature of the device.
        cpu_throttled / gpu_throttled: Whether throttling is currently active.
    """

    frame_index: int
    dataset: str
    cpu_temperature_c: float
    gpu_temperature_c: float
    cpu_level: int
    gpu_level: int
    cpu_num_levels: int
    gpu_num_levels: int
    latency_constraint_ms: float
    remaining_budget_ms: float
    previous_latency_ms: float | None
    cpu_utilisation: float
    gpu_utilisation: float
    ambient_temperature_c: float
    throttle_threshold_c: float
    cpu_throttled: bool
    gpu_throttled: bool


@dataclass(frozen=True)
class MidFrameObservation:
    """Observation available after the RPN (state s_{2i+1}).

    Carries everything :class:`FrameStartObservation` does, plus the number
    of proposals produced by the first stage and how much of the latency
    budget the first stage consumed.
    """

    frame_index: int
    dataset: str
    cpu_temperature_c: float
    gpu_temperature_c: float
    cpu_level: int
    gpu_level: int
    cpu_num_levels: int
    gpu_num_levels: int
    latency_constraint_ms: float
    remaining_budget_ms: float
    stage1_latency_ms: float
    num_proposals: int
    cpu_utilisation: float
    gpu_utilisation: float
    ambient_temperature_c: float
    throttle_threshold_c: float
    cpu_throttled: bool
    gpu_throttled: bool


@dataclass(frozen=True)
class FrameResult:
    """End-of-frame feedback handed to the policy and recorded in the trace."""

    record: FrameRecord

    @property
    def total_latency_ms(self) -> float:
        """End-to-end latency of the frame."""
        return self.record.total_latency_ms

    @property
    def latency_constraint_ms(self) -> float:
        """Constraint in force for the frame."""
        return self.record.latency_constraint_ms

    @property
    def latency_slack_ms(self) -> float:
        """ΔL_i = L - l_i; negative when the constraint was violated."""
        return self.record.latency_constraint_ms - self.record.total_latency_ms

    @property
    def met_constraint(self) -> bool:
        """Whether the frame met its latency constraint."""
        return self.record.met_constraint

    @property
    def cpu_temperature_c(self) -> float:
        """CPU temperature at the end of the frame."""
        return self.record.cpu_temperature_c

    @property
    def gpu_temperature_c(self) -> float:
        """GPU temperature at the end of the frame."""
        return self.record.gpu_temperature_c

    @property
    def num_proposals(self) -> int:
        """Proposal count of the frame."""
        return self.record.num_proposals


class _Phase(enum.Enum):
    """Internal frame-processing phase used to enforce the call protocol."""

    IDLE = "idle"
    STARTED = "started"
    AFTER_STAGE1 = "after_stage1"


class InferenceEnvironment:
    """Detector inference loop on a simulated device.

    Args:
        device: The simulated edge device.
        detector: Detector cost model to run.
        stream: Frame stream supplying the workload.
        latency_constraint_ms: Default per-frame latency constraint L
            (frames may override it, e.g. after a domain switch).
        ambient: Ambient temperature profile; defaults to a constant 25 °C.
        rng: Random generator for proposal sampling.
        throttle_threshold_c: Temperature threshold exposed to controllers
            (defaults to the device's hardware trip point).
        idle_between_frames_ms: Idle gap inserted between frames (0 for the
            paper's back-to-back inference setting).
    """

    def __init__(
        self,
        device: EdgeDevice,
        detector: DetectorModel,
        stream: StreamLike,
        latency_constraint_ms: float,
        ambient: AmbientProfile | None = None,
        rng: np.random.Generator | None = None,
        throttle_threshold_c: float | None = None,
        idle_between_frames_ms: float = 0.0,
    ):
        if latency_constraint_ms <= 0:
            raise ConfigurationError("latency_constraint_ms must be positive")
        if idle_between_frames_ms < 0:
            raise ConfigurationError("idle_between_frames_ms must be non-negative")
        self.device = device
        self.detector = detector
        self.stream = stream
        self.default_latency_constraint_ms = latency_constraint_ms
        self.ambient = ambient if ambient is not None else ConstantAmbient()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.throttle_threshold_c = (
            throttle_threshold_c
            if throttle_threshold_c is not None
            else min(
                device.cpu_throttle.trip_temperature_c,
                device.gpu_throttle.trip_temperature_c,
            )
        )
        self.idle_between_frames_ms = idle_between_frames_ms
        self.execution = ExecutionModel(compute_profile_for(device.name))

        self._phase = _Phase.IDLE
        self._frame: Frame | None = None
        self._frame_index = 0
        self._previous_latency_ms: float | None = None
        self._last_cpu_utilisation = 0.0
        self._last_gpu_utilisation = 0.0
        self._stage1_latency_ms = 0.0
        self._stage1_levels = (0, 0)
        self._stage1_throttled = False
        self._frame_energy_j = 0.0
        self._num_proposals = 0
        self._constraint_ms = latency_constraint_ms

        self.device.reset(self.ambient.initial_temperature())

    # -- lifecycle -----------------------------------------------------------------

    def reset(self) -> None:
        """Reset the device (cold start) and the frame counter."""
        self.device.reset(self.ambient.initial_temperature())
        self._phase = _Phase.IDLE
        self._frame = None
        self._frame_index = 0
        self._previous_latency_ms = None
        self._last_cpu_utilisation = 0.0
        self._last_gpu_utilisation = 0.0

    # -- decision application ---------------------------------------------------------

    def apply_levels(self, cpu_level: int, gpu_level: int) -> None:
        """Request CPU/GPU frequency levels on behalf of the controller."""
        self.device.request_levels(cpu_level, gpu_level)

    # -- frame protocol ------------------------------------------------------------------

    def begin_frame(self) -> FrameStartObservation:
        """Draw the next frame and return the start-of-frame observation."""
        if self._phase is not _Phase.IDLE:
            raise ExperimentError(
                f"begin_frame called while a frame is in phase {self._phase.value!r}"
            )
        self.device.set_ambient(self.ambient.temperature_at(self._frame_index))
        self._frame = self.stream.next_frame()
        self._constraint_ms = (
            self._frame.latency_constraint_ms
            if self._frame.latency_constraint_ms is not None
            else self.default_latency_constraint_ms
        )
        self._frame_energy_j = 0.0
        self._phase = _Phase.STARTED
        return FrameStartObservation(
            frame_index=self._frame_index,
            dataset=self._frame.dataset,
            cpu_temperature_c=self.device.cpu_temperature_c,
            gpu_temperature_c=self.device.gpu_temperature_c,
            cpu_level=self.device.cpu_level,
            gpu_level=self.device.gpu_level,
            cpu_num_levels=self.device.cpu.num_levels,
            gpu_num_levels=self.device.gpu.num_levels,
            latency_constraint_ms=self._constraint_ms,
            remaining_budget_ms=self._constraint_ms,
            previous_latency_ms=self._previous_latency_ms,
            cpu_utilisation=self._last_cpu_utilisation,
            gpu_utilisation=self._last_gpu_utilisation,
            ambient_temperature_c=self.device.ambient_temperature_c,
            throttle_threshold_c=self.throttle_threshold_c,
            cpu_throttled=self.device.cpu_throttled,
            gpu_throttled=self.device.gpu_throttled,
        )

    def run_first_stage(self) -> MidFrameObservation:
        """Execute stage 1 and return the mid-frame observation."""
        if self._phase is not _Phase.STARTED:
            raise ExperimentError("run_first_stage must follow begin_frame")
        assert self._frame is not None
        cost = self.detector.stage1_cost(self._frame.image_scale)
        segment = self.execution.execute(
            cost, self.device.cpu.frequency_khz, self.device.gpu.frequency_khz
        )
        self._stage1_levels = (self.device.cpu_level, self.device.gpu_level)
        telemetry = self.device.execute(
            segment.latency_ms, segment.cpu_utilisation, segment.gpu_utilisation
        )
        self._stage1_latency_ms = segment.latency_ms
        self._stage1_throttled = telemetry.any_throttled
        self._frame_energy_j += telemetry.energy_j
        self._last_cpu_utilisation = segment.cpu_utilisation
        self._last_gpu_utilisation = segment.gpu_utilisation
        self._num_proposals = self.detector.propose(self._frame.scene_candidates, self.rng)
        self._phase = _Phase.AFTER_STAGE1
        return MidFrameObservation(
            frame_index=self._frame_index,
            dataset=self._frame.dataset,
            cpu_temperature_c=self.device.cpu_temperature_c,
            gpu_temperature_c=self.device.gpu_temperature_c,
            cpu_level=self.device.cpu_level,
            gpu_level=self.device.gpu_level,
            cpu_num_levels=self.device.cpu.num_levels,
            gpu_num_levels=self.device.gpu.num_levels,
            latency_constraint_ms=self._constraint_ms,
            remaining_budget_ms=self._constraint_ms - self._stage1_latency_ms,
            stage1_latency_ms=self._stage1_latency_ms,
            num_proposals=self._num_proposals,
            cpu_utilisation=segment.cpu_utilisation,
            gpu_utilisation=segment.gpu_utilisation,
            ambient_temperature_c=self.device.ambient_temperature_c,
            throttle_threshold_c=self.throttle_threshold_c,
            cpu_throttled=self.device.cpu_throttled,
            gpu_throttled=self.device.gpu_throttled,
        )

    def run_second_stage(self) -> FrameResult:
        """Execute stage 2 (if any), finish the frame and return its result."""
        if self._phase is not _Phase.AFTER_STAGE1:
            raise ExperimentError("run_second_stage must follow run_first_stage")
        assert self._frame is not None
        stage2_latency_ms = 0.0
        stage2_levels = (self.device.cpu_level, self.device.gpu_level)
        stage2_throttled = False
        if self.detector.is_two_stage:
            cost = self.detector.stage2_cost(self._num_proposals, self._frame.image_scale)
            segment = self.execution.execute(
                cost, self.device.cpu.frequency_khz, self.device.gpu.frequency_khz
            )
            stage2_levels = (self.device.cpu_level, self.device.gpu_level)
            telemetry = self.device.execute(
                segment.latency_ms, segment.cpu_utilisation, segment.gpu_utilisation
            )
            stage2_latency_ms = segment.latency_ms
            stage2_throttled = telemetry.any_throttled
            self._frame_energy_j += telemetry.energy_j
            self._last_cpu_utilisation = segment.cpu_utilisation
            self._last_gpu_utilisation = segment.gpu_utilisation
        if self.idle_between_frames_ms > 0:
            idle_telemetry = self.device.idle(self.idle_between_frames_ms)
            self._frame_energy_j += idle_telemetry.energy_j

        total_latency_ms = self._stage1_latency_ms + stage2_latency_ms
        record = FrameRecord(
            index=self._frame_index,
            dataset=self._frame.dataset,
            num_proposals=self._num_proposals,
            stage1_latency_ms=self._stage1_latency_ms,
            stage2_latency_ms=stage2_latency_ms,
            total_latency_ms=total_latency_ms,
            latency_constraint_ms=self._constraint_ms,
            met_constraint=total_latency_ms <= self._constraint_ms,
            cpu_temperature_c=self.device.cpu_temperature_c,
            gpu_temperature_c=self.device.gpu_temperature_c,
            cpu_level_stage1=self._stage1_levels[0],
            gpu_level_stage1=self._stage1_levels[1],
            cpu_level_stage2=stage2_levels[0],
            gpu_level_stage2=stage2_levels[1],
            cpu_throttled=self._stage1_throttled or stage2_throttled or self.device.cpu_throttled,
            gpu_throttled=self._stage1_throttled or stage2_throttled or self.device.gpu_throttled,
            ambient_temperature_c=self.device.ambient_temperature_c,
            energy_j=self._frame_energy_j,
        )
        self._previous_latency_ms = total_latency_ms
        self._frame_index += 1
        self._phase = _Phase.IDLE
        self._frame = None
        return FrameResult(record=record)

    # -- convenience -------------------------------------------------------------------

    @property
    def frames_processed(self) -> int:
        """Number of completed frames since construction/reset."""
        return self._frame_index

    def latency_at_levels(
        self, cpu_level: int, gpu_level: int, num_proposals: int, image_scale: float = 1.0
    ) -> float:
        """Predicted whole-frame latency at given levels (profiling helper)."""
        cost = self.detector.total_cost(num_proposals, image_scale)
        return self.execution.latency_ms(
            cost,
            self.device.cpu.frequency_table.frequency_khz(cpu_level),
            self.device.gpu.frequency_table.frequency_khz(gpu_level),
        )


def iterate_frames(environment: InferenceEnvironment, count: int) -> Iterable[int]:
    """Yield ``count`` frame indices, for simple ``for`` loops over frames."""
    if count < 0:
        raise ExperimentError("count must be non-negative")
    return range(environment.frames_processed, environment.frames_processed + count)
