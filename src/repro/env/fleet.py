"""The vectorized fleet inference environment.

:class:`BatchedInferenceEnvironment` advances N independent inference
sessions in lock-step, exposing the exact two-decision-point phase protocol
of the scalar :class:`~repro.env.environment.InferenceEnvironment` over
*batch* observations: every observation field is a length-N array, one
entry per session.  All sessions share one device model, detector and
ambient profile; each session has its own frame stream, proposal-noise
generator, thermal state, throttle state and frequency levels, held
struct-of-arrays in a :class:`FleetState`.

Seed-for-seed equivalence: session ``i`` of a fleet built from streams and
generators seeded like scalar runs produces the *bit-identical* trace the
scalar environment produces with those seeds — the batched kernels in
:mod:`repro.hardware.fleet` and :mod:`repro.detection.fleet` replay the
scalar arithmetic elementwise, and the per-session random streams are
consumed in the same order.  ``tests/test_fleet_equivalence.py`` enforces
this.

Policies drive the fleet through the :class:`FleetPolicy` protocol.
Vectorized implementations live in :mod:`repro.governors.fleet` (the
default governors, static policies) and :mod:`repro.core.fleet` (the
fleet-trained Lotus agent); :class:`PerSessionPolicies` adapts any list of
scalar :class:`~repro.env.policy.Policy` objects, preserving their exact
per-session behaviour.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np

from repro.errors import ConfigurationError, ExperimentError
from repro.detection.detector import DetectorModel
from repro.detection.fleet import (
    BatchedExecutionModel,
    propose_batch,
    stage1_cost_arrays,
    stage2_cost_arrays,
)
from repro.detection.latency import compute_profile_for
from repro.env.ambient import AmbientProfile, ConstantAmbient
from repro.env.environment import (
    FrameResult,
    FrameStartObservation,
    MidFrameObservation,
    StreamLike,
)
from repro.env.policy import Policy
from repro.env.trace import FrameRecord, Trace
from repro.hardware.device import EdgeDevice
from repro.hardware.fleet import DeviceFleet


# ---------------------------------------------------------------------------
# State and observations
# ---------------------------------------------------------------------------


@dataclass
class FleetState:
    """Struct-of-arrays state of N concurrent sessions.

    Attributes:
        device: Batched device state (temperatures, levels, throttle flags,
            energy) shared-model across the fleet.
        streams: Per-session workload cursors (frame streams).
        rngs: Per-session proposal-noise generators.
        previous_latency_ms: Last frame's total latency per session (``None``
            before the first frame; sessions advance lock-step).
        cpu_utilisation / gpu_utilisation: Utilisation observed during the
            most recent executed segment, per session.
        constraint_ms: Latency constraint in force for the current frame.
        image_scale / scene_candidates: Current frame's workload parameters.
        datasets: Current frame's dataset name per session.
        num_proposals: Stage-1 proposal counts of the current frame.
        stage1_latency_ms: Stage-1 latency of the current frame.
        frame_energy_j: Energy accumulated by the current frame.
    """

    device: DeviceFleet
    streams: tuple
    rngs: tuple
    previous_latency_ms: np.ndarray | None
    cpu_utilisation: np.ndarray
    gpu_utilisation: np.ndarray
    constraint_ms: np.ndarray
    image_scale: np.ndarray
    scene_candidates: np.ndarray
    datasets: tuple
    num_proposals: np.ndarray
    stage1_latency_ms: np.ndarray
    frame_energy_j: np.ndarray

    @property
    def num_sessions(self) -> int:
        """Fleet size N."""
        return self.device.num_sessions


@dataclass(frozen=True)
class FleetStartObservation:
    """Batch counterpart of :class:`FrameStartObservation` (arrays over N)."""

    frame_index: int
    datasets: tuple
    cpu_temperature_c: np.ndarray
    gpu_temperature_c: np.ndarray
    cpu_level: np.ndarray
    gpu_level: np.ndarray
    cpu_num_levels: int
    gpu_num_levels: int
    latency_constraint_ms: np.ndarray
    remaining_budget_ms: np.ndarray
    previous_latency_ms: np.ndarray | None
    cpu_utilisation: np.ndarray
    gpu_utilisation: np.ndarray
    ambient_temperature_c: np.ndarray
    throttle_threshold_c: float
    cpu_throttled: np.ndarray
    gpu_throttled: np.ndarray

    @property
    def num_sessions(self) -> int:
        """Fleet size N."""
        return len(self.cpu_temperature_c)

    def take(self, indices: np.ndarray) -> "FleetStartObservation":
        """The observation restricted to the sessions in ``indices``.

        Used by sub-fleet policy combinators: every per-session array is
        fancy-indexed (so element ``j`` of the result is session
        ``indices[j]`` of the full observation) while the shared scalars are
        passed through unchanged.
        """
        indices = np.asarray(indices, dtype=np.int64)
        return FleetStartObservation(
            frame_index=self.frame_index,
            datasets=tuple(self.datasets[i] for i in indices),
            cpu_temperature_c=self.cpu_temperature_c[indices],
            gpu_temperature_c=self.gpu_temperature_c[indices],
            cpu_level=self.cpu_level[indices],
            gpu_level=self.gpu_level[indices],
            cpu_num_levels=self.cpu_num_levels,
            gpu_num_levels=self.gpu_num_levels,
            latency_constraint_ms=self.latency_constraint_ms[indices],
            remaining_budget_ms=self.remaining_budget_ms[indices],
            previous_latency_ms=(
                None
                if self.previous_latency_ms is None
                else self.previous_latency_ms[indices]
            ),
            cpu_utilisation=self.cpu_utilisation[indices],
            gpu_utilisation=self.gpu_utilisation[indices],
            ambient_temperature_c=self.ambient_temperature_c[indices],
            throttle_threshold_c=self.throttle_threshold_c,
            cpu_throttled=self.cpu_throttled[indices],
            gpu_throttled=self.gpu_throttled[indices],
        )

    def session(self, i: int) -> FrameStartObservation:
        """The scalar observation session ``i`` would see."""
        return FrameStartObservation(
            frame_index=self.frame_index,
            dataset=self.datasets[i],
            cpu_temperature_c=float(self.cpu_temperature_c[i]),
            gpu_temperature_c=float(self.gpu_temperature_c[i]),
            cpu_level=int(self.cpu_level[i]),
            gpu_level=int(self.gpu_level[i]),
            cpu_num_levels=self.cpu_num_levels,
            gpu_num_levels=self.gpu_num_levels,
            latency_constraint_ms=float(self.latency_constraint_ms[i]),
            remaining_budget_ms=float(self.remaining_budget_ms[i]),
            previous_latency_ms=(
                None
                if self.previous_latency_ms is None
                else float(self.previous_latency_ms[i])
            ),
            cpu_utilisation=float(self.cpu_utilisation[i]),
            gpu_utilisation=float(self.gpu_utilisation[i]),
            ambient_temperature_c=float(self.ambient_temperature_c[i]),
            throttle_threshold_c=self.throttle_threshold_c,
            cpu_throttled=bool(self.cpu_throttled[i]),
            gpu_throttled=bool(self.gpu_throttled[i]),
        )


@dataclass(frozen=True)
class FleetMidObservation:
    """Batch counterpart of :class:`MidFrameObservation` (arrays over N)."""

    frame_index: int
    datasets: tuple
    cpu_temperature_c: np.ndarray
    gpu_temperature_c: np.ndarray
    cpu_level: np.ndarray
    gpu_level: np.ndarray
    cpu_num_levels: int
    gpu_num_levels: int
    latency_constraint_ms: np.ndarray
    remaining_budget_ms: np.ndarray
    stage1_latency_ms: np.ndarray
    num_proposals: np.ndarray
    cpu_utilisation: np.ndarray
    gpu_utilisation: np.ndarray
    ambient_temperature_c: np.ndarray
    throttle_threshold_c: float
    cpu_throttled: np.ndarray
    gpu_throttled: np.ndarray

    @property
    def num_sessions(self) -> int:
        """Fleet size N."""
        return len(self.cpu_temperature_c)

    def take(self, indices: np.ndarray) -> "FleetMidObservation":
        """The observation restricted to the sessions in ``indices``."""
        indices = np.asarray(indices, dtype=np.int64)
        return FleetMidObservation(
            frame_index=self.frame_index,
            datasets=tuple(self.datasets[i] for i in indices),
            cpu_temperature_c=self.cpu_temperature_c[indices],
            gpu_temperature_c=self.gpu_temperature_c[indices],
            cpu_level=self.cpu_level[indices],
            gpu_level=self.gpu_level[indices],
            cpu_num_levels=self.cpu_num_levels,
            gpu_num_levels=self.gpu_num_levels,
            latency_constraint_ms=self.latency_constraint_ms[indices],
            remaining_budget_ms=self.remaining_budget_ms[indices],
            stage1_latency_ms=self.stage1_latency_ms[indices],
            num_proposals=self.num_proposals[indices],
            cpu_utilisation=self.cpu_utilisation[indices],
            gpu_utilisation=self.gpu_utilisation[indices],
            ambient_temperature_c=self.ambient_temperature_c[indices],
            throttle_threshold_c=self.throttle_threshold_c,
            cpu_throttled=self.cpu_throttled[indices],
            gpu_throttled=self.gpu_throttled[indices],
        )

    def session(self, i: int) -> MidFrameObservation:
        """The scalar observation session ``i`` would see."""
        return MidFrameObservation(
            frame_index=self.frame_index,
            dataset=self.datasets[i],
            cpu_temperature_c=float(self.cpu_temperature_c[i]),
            gpu_temperature_c=float(self.gpu_temperature_c[i]),
            cpu_level=int(self.cpu_level[i]),
            gpu_level=int(self.gpu_level[i]),
            cpu_num_levels=self.cpu_num_levels,
            gpu_num_levels=self.gpu_num_levels,
            latency_constraint_ms=float(self.latency_constraint_ms[i]),
            remaining_budget_ms=float(self.remaining_budget_ms[i]),
            stage1_latency_ms=float(self.stage1_latency_ms[i]),
            num_proposals=int(self.num_proposals[i]),
            cpu_utilisation=float(self.cpu_utilisation[i]),
            gpu_utilisation=float(self.gpu_utilisation[i]),
            ambient_temperature_c=float(self.ambient_temperature_c[i]),
            throttle_threshold_c=self.throttle_threshold_c,
            cpu_throttled=bool(self.cpu_throttled[i]),
            gpu_throttled=bool(self.gpu_throttled[i]),
        )


@dataclass(frozen=True)
class FleetFrameResult:
    """Batch end-of-frame feedback: one completed frame across N sessions.

    Field-for-field the array counterpart of
    :class:`~repro.env.trace.FrameRecord`; scalar records materialise
    lazily via :meth:`record` so the hot loop never constructs N dataclasses
    per frame.
    """

    index: int
    datasets: tuple
    num_proposals: np.ndarray
    stage1_latency_ms: np.ndarray
    stage2_latency_ms: np.ndarray
    total_latency_ms: np.ndarray
    latency_constraint_ms: np.ndarray
    met_constraint: np.ndarray
    cpu_temperature_c: np.ndarray
    gpu_temperature_c: np.ndarray
    cpu_level_stage1: np.ndarray
    gpu_level_stage1: np.ndarray
    cpu_level_stage2: np.ndarray
    gpu_level_stage2: np.ndarray
    cpu_throttled: np.ndarray
    gpu_throttled: np.ndarray
    ambient_temperature_c: np.ndarray
    energy_j: np.ndarray

    @property
    def num_sessions(self) -> int:
        """Fleet size N."""
        return len(self.total_latency_ms)

    @property
    def latency_slack_ms(self) -> np.ndarray:
        """Per-session ``L - l_i``; negative where the constraint broke."""
        return self.latency_constraint_ms - self.total_latency_ms

    def take(self, indices: np.ndarray) -> "FleetFrameResult":
        """The frame result restricted to the sessions in ``indices``."""
        indices = np.asarray(indices, dtype=np.int64)
        return FleetFrameResult(
            index=self.index,
            datasets=tuple(self.datasets[i] for i in indices),
            num_proposals=self.num_proposals[indices],
            stage1_latency_ms=self.stage1_latency_ms[indices],
            stage2_latency_ms=self.stage2_latency_ms[indices],
            total_latency_ms=self.total_latency_ms[indices],
            latency_constraint_ms=self.latency_constraint_ms[indices],
            met_constraint=self.met_constraint[indices],
            cpu_temperature_c=self.cpu_temperature_c[indices],
            gpu_temperature_c=self.gpu_temperature_c[indices],
            cpu_level_stage1=self.cpu_level_stage1[indices],
            gpu_level_stage1=self.gpu_level_stage1[indices],
            cpu_level_stage2=self.cpu_level_stage2[indices],
            gpu_level_stage2=self.gpu_level_stage2[indices],
            cpu_throttled=self.cpu_throttled[indices],
            gpu_throttled=self.gpu_throttled[indices],
            ambient_temperature_c=self.ambient_temperature_c[indices],
            energy_j=self.energy_j[indices],
        )

    def record(self, i: int) -> FrameRecord:
        """Materialise session ``i``'s scalar :class:`FrameRecord`."""
        return FrameRecord(
            index=self.index,
            dataset=self.datasets[i],
            num_proposals=int(self.num_proposals[i]),
            stage1_latency_ms=float(self.stage1_latency_ms[i]),
            stage2_latency_ms=float(self.stage2_latency_ms[i]),
            total_latency_ms=float(self.total_latency_ms[i]),
            latency_constraint_ms=float(self.latency_constraint_ms[i]),
            met_constraint=bool(self.met_constraint[i]),
            cpu_temperature_c=float(self.cpu_temperature_c[i]),
            gpu_temperature_c=float(self.gpu_temperature_c[i]),
            cpu_level_stage1=int(self.cpu_level_stage1[i]),
            gpu_level_stage1=int(self.gpu_level_stage1[i]),
            cpu_level_stage2=int(self.cpu_level_stage2[i]),
            gpu_level_stage2=int(self.gpu_level_stage2[i]),
            cpu_throttled=bool(self.cpu_throttled[i]),
            gpu_throttled=bool(self.gpu_throttled[i]),
            ambient_temperature_c=float(self.ambient_temperature_c[i]),
            energy_j=float(self.energy_j[i]),
        )

    def result(self, i: int) -> FrameResult:
        """Session ``i``'s scalar :class:`FrameResult`."""
        return FrameResult(record=self.record(i))


class FleetTrace:
    """Columnar trace of a fleet episode: one FleetFrameResult per frame."""

    #: Bound on the :meth:`session_trace` memo so fleet-wide sweeps over a
    #: large trace don't keep every materialised scalar trace alive.
    _SESSION_CACHE_LIMIT = 64

    def __init__(self, num_sessions: int):
        if num_sessions <= 0:
            raise ExperimentError("num_sessions must be positive")
        self.num_sessions = num_sessions
        self._frames: List[FleetFrameResult] = []
        self._session_cache: "OrderedDict[int, Trace]" = OrderedDict()

    def append(self, frame: FleetFrameResult) -> None:
        """Append one completed fleet frame."""
        if frame.num_sessions != self.num_sessions:
            raise ExperimentError(
                f"frame has {frame.num_sessions} sessions, trace expects "
                f"{self.num_sessions}"
            )
        self._frames.append(frame)
        if self._session_cache:
            self._session_cache.clear()

    def __len__(self) -> int:
        return len(self._frames)

    def __iter__(self) -> Iterator[FleetFrameResult]:
        return iter(self._frames)

    def __getitem__(self, index: int) -> FleetFrameResult:
        return self._frames[index]

    @property
    def total_frames(self) -> int:
        """Aggregate frames processed across the fleet (frames x sessions)."""
        return len(self._frames) * self.num_sessions

    @property
    def start_index(self) -> int:
        """Global index of the first frame (0 for an empty trace)."""
        return self._frames[0].index if self._frames else 0

    def session_trace(self, i: int) -> Trace:
        """Materialise session ``i``'s scalar :class:`Trace`.

        Results are memoized in a bounded FIFO (invalidated on append), so
        harnesses that revisit the same sessions — metric summaries followed
        by equivalence sweeps — build each session's ``FrameRecord`` objects
        once instead of once per call.
        """
        if not 0 <= i < self.num_sessions:
            raise ExperimentError(f"session {i} out of range [0, {self.num_sessions - 1}]")
        cached = self._session_cache.get(i)
        if cached is not None:
            return cached
        trace = Trace([frame.record(i) for frame in self._frames])
        self._session_cache[i] = trace
        while len(self._session_cache) > self._SESSION_CACHE_LIMIT:
            self._session_cache.popitem(last=False)
        return trace

    def to_traces(self) -> List[Trace]:
        """Materialise every session's scalar trace."""
        return [self.session_trace(i) for i in range(self.num_sessions)]

    def column_window(self, name: str, start: int = 0, stop: int | None = None) -> np.ndarray:
        """Frames ``[start, stop)`` of one column as a ``(frames, N)`` array.

        The in-memory counterpart of
        :meth:`repro.store.MappedFleetTrace.column_window`, so streaming
        consumers can treat both trace representations uniformly.
        """
        frames = self._frames[start:stop]
        if not frames:
            dtype = (
                getattr(self._frames[0], name).dtype if self._frames else np.float64
            )
            return np.empty((0, self.num_sessions), dtype=dtype)
        return np.stack([getattr(frame, name) for frame in frames])

    def iter_column_chunks(
        self, name: str, start: int = 0, stop: int | None = None
    ) -> Iterator[tuple]:
        """Yield ``(frame_offset, block)`` windows of one column.

        Mirrors :meth:`repro.store.MappedFleetTrace.iter_column_chunks`; the
        in-memory trace serves one bounded block at a time too, so streaming
        aggregation code paths are identical for both representations.
        """
        stop = len(self._frames) if stop is None else min(stop, len(self._frames))
        chunk = 256
        for lo in range(start, stop, chunk):
            hi = min(lo + chunk, stop)
            yield lo, self.column_window(name, lo, hi)

    def datasets_window(self, start: int = 0, stop: int | None = None) -> List[tuple]:
        """Per-frame dataset-name tuples for frames ``[start, stop)``."""
        return [frame.datasets for frame in self._frames[start:stop]]

    def latencies_ms(self) -> np.ndarray:
        """Total latency as a ``(frames, sessions)`` matrix."""
        return np.array([f.total_latency_ms for f in self._frames], dtype=float)

    def constraint_met(self) -> np.ndarray:
        """Constraint satisfaction as a ``(frames, sessions)`` boolean matrix."""
        return np.array([f.met_constraint for f in self._frames], dtype=bool)


# ---------------------------------------------------------------------------
# Fleet policy protocol
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FleetDecision:
    """Joint frequency-level requests for (a subset of) the fleet.

    Attributes:
        cpu_levels / gpu_levels: Requested levels per session.
        mask: Optional boolean mask of sessions the decision applies to;
            unmasked sessions keep their previously requested levels (the
            batch analogue of a scalar policy returning ``None``).
    """

    cpu_levels: np.ndarray
    gpu_levels: np.ndarray
    mask: np.ndarray | None = None


class FleetPolicy(ABC):
    """A DVFS policy acting on observation batches across the fleet."""

    #: Human-readable policy name used in tables and reports.
    name: str = "fleet-policy"

    @abstractmethod
    def begin_frame(self, observation: FleetStartObservation) -> FleetDecision | None:
        """Decide frequencies at the start of an image inference."""

    @abstractmethod
    def mid_frame(self, observation: FleetMidObservation) -> FleetDecision | None:
        """Decide frequencies after the RPN, per session."""

    def end_frame(self, result: FleetFrameResult) -> None:
        """Receive the completed frame's per-session outcomes."""

    def reset(self) -> None:
        """Reset any internal state before a new episode."""


class PerSessionPolicies(FleetPolicy):
    """Adapter driving one scalar :class:`Policy` per session.

    Preserves each policy's exact scalar behaviour (observations are
    materialised per session), so any existing policy — including learning
    agents with per-session networks — runs on the fleet engine unchanged.
    This is the compatibility path; vectorized policies avoid the per-session
    materialisation cost.
    """

    def __init__(self, policies: Sequence[Policy]):
        if not policies:
            raise ConfigurationError("need at least one policy")
        self.policies = list(policies)
        self.name = f"per-session({policies[0].name})"

    def reset(self) -> None:
        for policy in self.policies:
            policy.reset()

    def _gather(self, decisions, observation) -> FleetDecision | None:
        if all(decision is None for decision in decisions):
            return None
        cpu = observation.cpu_level.copy()
        gpu = observation.gpu_level.copy()
        mask = np.zeros(len(decisions), dtype=bool)
        for i, decision in enumerate(decisions):
            if decision is not None:
                cpu[i] = decision.cpu_level
                gpu[i] = decision.gpu_level
                mask[i] = True
        return FleetDecision(cpu_levels=cpu, gpu_levels=gpu, mask=mask)

    def begin_frame(self, observation: FleetStartObservation) -> FleetDecision | None:
        decisions = [
            policy.begin_frame(observation.session(i))
            for i, policy in enumerate(self.policies)
        ]
        return self._gather(decisions, observation)

    def mid_frame(self, observation: FleetMidObservation) -> FleetDecision | None:
        decisions = [
            policy.mid_frame(observation.session(i))
            for i, policy in enumerate(self.policies)
        ]
        return self._gather(decisions, observation)

    def end_frame(self, result: FleetFrameResult) -> None:
        for i, policy in enumerate(self.policies):
            policy.end_frame(result.result(i))

    def loss_histories(self) -> List[List[float]]:
        """Per-session loss histories (empty lists for non-learning policies)."""
        return [list(getattr(p, "loss_history", [])) for p in self.policies]

    def reward_histories(self) -> List[List[float]]:
        """Per-session reward histories (empty lists where not recorded)."""
        return [list(getattr(p, "reward_history", [])) for p in self.policies]

    # -- checkpointing -------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Per-session snapshots (``None`` entries for stateless policies)."""
        return {
            "policies": [
                policy.state_dict() if hasattr(policy, "state_dict") else None
                for policy in self.policies
            ]
        }

    def load_state_dict(self, payload: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into the session policies."""
        states = payload["policies"]
        if len(states) != len(self.policies):
            raise ConfigurationError(
                f"snapshot carries {len(states)} session policies for "
                f"{len(self.policies)} sessions"
            )
        for policy, state in zip(self.policies, states):
            if state is not None:
                policy.load_state_dict(state)


# ---------------------------------------------------------------------------
# The environment
# ---------------------------------------------------------------------------


class SessionAmbient:
    """Per-session ambient schedules for one fleet.

    Wraps one :class:`~repro.env.ambient.AmbientProfile` per session and
    exposes the same two methods the environment calls on a shared profile —
    except they return length-N arrays, so heterogeneous fleets can give
    every session its own day/night cycle, ramp or zone schedule.  Element
    ``i`` is exactly what the scalar environment would compute for session
    ``i``'s own profile, preserving the seed-for-seed equivalence contract.
    """

    def __init__(self, profiles: Sequence[AmbientProfile]):
        if not profiles:
            raise ConfigurationError("need at least one ambient profile")
        self.profiles = tuple(profiles)

    @property
    def num_sessions(self) -> int:
        """Fleet size N."""
        return len(self.profiles)

    def temperature_at(self, frame_index: int) -> np.ndarray:
        """Per-session ambient temperatures when processing ``frame_index``."""
        return np.array(
            [profile.temperature_at(frame_index) for profile in self.profiles]
        )

    def initial_temperature(self) -> np.ndarray:
        """Per-session ambient temperatures before the first frame."""
        return np.array(
            [profile.initial_temperature() for profile in self.profiles]
        )


class _Phase(enum.Enum):
    IDLE = "idle"
    STARTED = "started"
    AFTER_STAGE1 = "after_stage1"


class BatchedInferenceEnvironment:
    """Detector inference across N lock-step sessions on one device model.

    Args:
        device: Template edge device (shared description; per-session state
            lives in the fleet arrays).
        detector: Detector cost model all sessions run.
        streams: The workload — either one scalar frame stream per session,
            or a single batched stream exposing ``next_frames()`` (e.g.
            :class:`repro.workload.fleet.FleetFrameStream`, the fast path
            that avoids per-session Python dispatch).
        latency_constraint_ms: Default per-frame latency constraint.
        ambient: Ambient schedule — a single shared
            :class:`~repro.env.ambient.AmbientProfile` (frame-index driven;
            sessions are lock-step so they observe the same temperatures), a
            prepared :class:`SessionAmbient`, or a sequence of one profile
            per session (each session follows its own schedule).
        rngs: Per-session proposal-noise generators; defaults to
            ``default_rng(i)``.
        throttle_threshold_c: Temperature threshold exposed to controllers.
        idle_between_frames_ms: Idle gap inserted between frames.
    """

    def __init__(
        self,
        device: EdgeDevice,
        detector: DetectorModel,
        streams: "Sequence[StreamLike] | object",
        latency_constraint_ms: float,
        ambient: "AmbientProfile | SessionAmbient | Sequence[AmbientProfile] | None" = None,
        rngs: Sequence[np.random.Generator] | None = None,
        throttle_threshold_c: float | None = None,
        idle_between_frames_ms: float = 0.0,
    ):
        if latency_constraint_ms <= 0:
            raise ConfigurationError("latency_constraint_ms must be positive")
        if idle_between_frames_ms < 0:
            raise ConfigurationError("idle_between_frames_ms must be non-negative")
        self._batched_stream = streams if hasattr(streams, "next_frames") else None
        if self._batched_stream is not None:
            num_sessions = self._batched_stream.num_sessions
            streams = ()
        else:
            if not streams:
                raise ConfigurationError("need at least one stream (one per session)")
            num_sessions = len(streams)
        if rngs is None:
            rngs = [np.random.default_rng(i) for i in range(num_sessions)]
        if len(rngs) != num_sessions:
            raise ConfigurationError(
                f"got {len(rngs)} generators for {num_sessions} sessions"
            )
        self.device = device
        self.detector = detector
        self.default_latency_constraint_ms = latency_constraint_ms
        if ambient is None:
            self.ambient = ConstantAmbient()
        elif hasattr(ambient, "temperature_at"):
            self.ambient = ambient
        else:
            self.ambient = SessionAmbient(list(ambient))
        if (
            isinstance(self.ambient, SessionAmbient)
            and self.ambient.num_sessions != num_sessions
        ):
            raise ConfigurationError(
                f"got {self.ambient.num_sessions} ambient profiles for "
                f"{num_sessions} sessions"
            )
        self.throttle_threshold_c = (
            throttle_threshold_c
            if throttle_threshold_c is not None
            else min(
                device.cpu_throttle.trip_temperature_c,
                device.gpu_throttle.trip_temperature_c,
            )
        )
        self.idle_between_frames_ms = idle_between_frames_ms
        self.execution = BatchedExecutionModel(compute_profile_for(device.name))

        fleet = DeviceFleet(device, num_sessions, self.ambient.initial_temperature())
        n = num_sessions
        self.state = FleetState(
            device=fleet,
            streams=tuple(streams),
            rngs=tuple(rngs),
            previous_latency_ms=None,
            cpu_utilisation=np.zeros(n),
            gpu_utilisation=np.zeros(n),
            constraint_ms=np.full(n, latency_constraint_ms),
            image_scale=np.ones(n),
            scene_candidates=np.zeros(n),
            datasets=("",) * n,
            num_proposals=np.zeros(n, dtype=np.int64),
            stage1_latency_ms=np.zeros(n),
            frame_energy_j=np.zeros(n),
        )
        self._phase = _Phase.IDLE
        self._frame_index = 0
        self._stage1_levels = (fleet.cpu_level.copy(), fleet.gpu_level.copy())
        self._stage1_throttled = np.zeros(n, dtype=bool)
        self.state.device.reset(self.ambient.initial_temperature())

    # -- lifecycle -----------------------------------------------------------------

    @property
    def num_sessions(self) -> int:
        """Fleet size N."""
        return self.state.num_sessions

    @property
    def frames_processed(self) -> int:
        """Completed lock-step frames since construction/reset."""
        return self._frame_index

    def reset(self) -> None:
        """Reset the fleet devices (cold start) and the frame counter."""
        self.state.device.reset(self.ambient.initial_temperature())
        self._phase = _Phase.IDLE
        self._frame_index = 0
        self.state.previous_latency_ms = None
        self.state.cpu_utilisation = np.zeros(self.num_sessions)
        self.state.gpu_utilisation = np.zeros(self.num_sessions)

    # -- checkpointing ---------------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot of the environment at a frame boundary.

        Captures everything the next :meth:`begin_frame` →
        :meth:`run_second_stage` cycle reads — device state, workload
        cursors, proposal generators, the previous frame's latency and
        utilisation feedback, and the frame counter — so a restored
        environment continues bit-identically to an uninterrupted one.
        Only valid between frames (phase ``idle``); per-frame transients
        are rebuilt by the next frame and need not be captured.
        """
        if self._phase is not _Phase.IDLE:
            raise ExperimentError(
                f"state_dict is only valid at a frame boundary, not in phase "
                f"{self._phase.value!r}"
            )
        if self._batched_stream is None:
            raise ExperimentError(
                "state_dict requires a batched fleet stream (FleetFrameStream)"
            )
        state = self.state
        return {
            "num_sessions": int(self.num_sessions),
            "frame_index": int(self._frame_index),
            "device": state.device.state_dict(),
            "stream": self._batched_stream.state_dict(),
            "rngs": [rng.bit_generator.state for rng in state.rngs],
            "previous_latency_ms": (
                None
                if state.previous_latency_ms is None
                else state.previous_latency_ms.copy()
            ),
            "cpu_utilisation": state.cpu_utilisation.copy(),
            "gpu_utilisation": state.gpu_utilisation.copy(),
        }

    def load_state_dict(self, payload: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into this environment.

        The environment must have been constructed from the same device,
        detector, workload and generators as the one that produced the
        snapshot (the recovery layer guarantees this by rebuilding the
        shard deterministically before restoring).
        """
        if int(payload["num_sessions"]) != self.num_sessions:
            raise ExperimentError(
                f"snapshot was captured from a {payload['num_sessions']}-session "
                f"environment but this one drives {self.num_sessions} sessions"
            )
        if self._batched_stream is None:
            raise ExperimentError(
                "load_state_dict requires a batched fleet stream (FleetFrameStream)"
            )
        state = self.state
        state.device.load_state_dict(payload["device"])
        self._batched_stream.load_state_dict(payload["stream"])
        for rng, rng_state in zip(state.rngs, payload["rngs"]):
            rng.bit_generator.state = rng_state
        state.previous_latency_ms = (
            None
            if payload["previous_latency_ms"] is None
            else np.array(payload["previous_latency_ms"], dtype=float)
        )
        state.cpu_utilisation = np.array(payload["cpu_utilisation"], dtype=float)
        state.gpu_utilisation = np.array(payload["gpu_utilisation"], dtype=float)
        self._phase = _Phase.IDLE
        self._frame_index = int(payload["frame_index"])

    # -- decision application --------------------------------------------------------

    def apply_levels(
        self,
        cpu_levels: np.ndarray,
        gpu_levels: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> None:
        """Request per-session frequency levels on behalf of the policy."""
        self.state.device.request_levels(cpu_levels, gpu_levels, mask=mask)

    def apply_decision(self, decision: FleetDecision | None) -> None:
        """Apply a policy decision (``None`` leaves all requests untouched)."""
        if decision is None:
            return
        self.apply_levels(decision.cpu_levels, decision.gpu_levels, decision.mask)

    # -- frame protocol ----------------------------------------------------------------

    def begin_frame(self) -> FleetStartObservation:
        """Draw every session's next frame; return the batch observation."""
        if self._phase is not _Phase.IDLE:
            raise ExperimentError(
                f"begin_frame called while a frame is in phase {self._phase.value!r}"
            )
        state = self.state
        state.device.set_ambient(self.ambient.temperature_at(self._frame_index))
        default_constraint = self.default_latency_constraint_ms
        if self._batched_stream is not None:
            batch = self._batched_stream.next_frames()
            image_scale = batch.image_scale
            candidates = batch.scene_candidates
            if batch.latency_constraint_ms is None:
                constraint = np.full(self.num_sessions, default_constraint)
            else:
                constraint = batch.latency_constraint_ms
                unset = np.isnan(constraint)
                if unset.any():
                    # NaN entries mark sessions without a per-session
                    # override; they fall back to the experiment default.
                    constraint = np.where(unset, default_constraint, constraint)
            datasets = batch.datasets
        else:
            image_scale = np.empty(self.num_sessions)
            candidates = np.empty(self.num_sessions)
            constraint = np.empty(self.num_sessions)
            names = []
            for i, stream in enumerate(state.streams):
                frame = stream.next_frame()
                image_scale[i] = frame.image_scale
                candidates[i] = frame.scene_candidates
                constraint[i] = (
                    frame.latency_constraint_ms
                    if frame.latency_constraint_ms is not None
                    else default_constraint
                )
                names.append(frame.dataset)
            datasets = tuple(names)
        state.image_scale = image_scale
        state.scene_candidates = candidates
        state.constraint_ms = constraint
        state.datasets = datasets
        state.frame_energy_j = np.zeros(self.num_sessions)
        self._phase = _Phase.STARTED
        device = state.device
        return FleetStartObservation(
            frame_index=self._frame_index,
            datasets=state.datasets,
            cpu_temperature_c=device.cpu_temperature_c.copy(),
            gpu_temperature_c=device.gpu_temperature_c.copy(),
            cpu_level=device.cpu_level.copy(),
            gpu_level=device.gpu_level.copy(),
            cpu_num_levels=device.cpu.num_levels,
            gpu_num_levels=device.gpu.num_levels,
            latency_constraint_ms=constraint,
            remaining_budget_ms=constraint,
            previous_latency_ms=state.previous_latency_ms,
            cpu_utilisation=state.cpu_utilisation,
            gpu_utilisation=state.gpu_utilisation,
            ambient_temperature_c=device.ambient_temperature_c.copy(),
            throttle_threshold_c=self.throttle_threshold_c,
            cpu_throttled=device.cpu_throttled.copy(),
            gpu_throttled=device.gpu_throttled.copy(),
        )

    def run_first_stage(self) -> FleetMidObservation:
        """Execute stage 1 for every session; return the batch observation."""
        if self._phase is not _Phase.STARTED:
            raise ExperimentError("run_first_stage must follow begin_frame")
        state = self.state
        device = state.device
        cpu_kc, gpu_kc = stage1_cost_arrays(self.detector, state.image_scale)
        segment = self.execution.execute(
            cpu_kc, gpu_kc, device.cpu_frequency_khz, device.gpu_frequency_khz
        )
        self._stage1_levels = (device.cpu_level.copy(), device.gpu_level.copy())
        telemetry = device.execute(
            segment.latency_ms, segment.cpu_utilisation, segment.gpu_utilisation
        )
        state.stage1_latency_ms = segment.latency_ms
        self._stage1_throttled = telemetry.any_throttled
        state.frame_energy_j = state.frame_energy_j + telemetry.energy_j
        state.cpu_utilisation = segment.cpu_utilisation
        state.gpu_utilisation = segment.gpu_utilisation
        state.num_proposals = propose_batch(
            self.detector, state.scene_candidates, state.rngs
        )
        self._phase = _Phase.AFTER_STAGE1
        return FleetMidObservation(
            frame_index=self._frame_index,
            datasets=state.datasets,
            cpu_temperature_c=device.cpu_temperature_c.copy(),
            gpu_temperature_c=device.gpu_temperature_c.copy(),
            cpu_level=device.cpu_level.copy(),
            gpu_level=device.gpu_level.copy(),
            cpu_num_levels=device.cpu.num_levels,
            gpu_num_levels=device.gpu.num_levels,
            latency_constraint_ms=state.constraint_ms,
            remaining_budget_ms=state.constraint_ms - state.stage1_latency_ms,
            stage1_latency_ms=state.stage1_latency_ms,
            num_proposals=state.num_proposals,
            cpu_utilisation=segment.cpu_utilisation,
            gpu_utilisation=segment.gpu_utilisation,
            ambient_temperature_c=device.ambient_temperature_c.copy(),
            throttle_threshold_c=self.throttle_threshold_c,
            cpu_throttled=device.cpu_throttled.copy(),
            gpu_throttled=device.gpu_throttled.copy(),
        )

    def run_second_stage(self) -> FleetFrameResult:
        """Execute stage 2 (if any) for every session; finish the frame."""
        if self._phase is not _Phase.AFTER_STAGE1:
            raise ExperimentError("run_second_stage must follow run_first_stage")
        state = self.state
        device = state.device
        n = self.num_sessions
        stage2_latency = np.zeros(n)
        stage2_levels = (device.cpu_level.copy(), device.gpu_level.copy())
        stage2_throttled = np.zeros(n, dtype=bool)
        if self.detector.is_two_stage:
            cpu_kc, gpu_kc = stage2_cost_arrays(
                self.detector, state.num_proposals, state.image_scale
            )
            segment = self.execution.execute(
                cpu_kc, gpu_kc, device.cpu_frequency_khz, device.gpu_frequency_khz
            )
            stage2_levels = (device.cpu_level.copy(), device.gpu_level.copy())
            telemetry = device.execute(
                segment.latency_ms, segment.cpu_utilisation, segment.gpu_utilisation
            )
            stage2_latency = segment.latency_ms
            stage2_throttled = telemetry.any_throttled
            state.frame_energy_j = state.frame_energy_j + telemetry.energy_j
            state.cpu_utilisation = segment.cpu_utilisation
            state.gpu_utilisation = segment.gpu_utilisation
        if self.idle_between_frames_ms > 0:
            idle_telemetry = device.idle(np.full(n, self.idle_between_frames_ms))
            state.frame_energy_j = state.frame_energy_j + idle_telemetry.energy_j

        total_latency = state.stage1_latency_ms + stage2_latency
        result = FleetFrameResult(
            index=self._frame_index,
            datasets=state.datasets,
            num_proposals=state.num_proposals,
            stage1_latency_ms=state.stage1_latency_ms,
            stage2_latency_ms=stage2_latency,
            total_latency_ms=total_latency,
            latency_constraint_ms=state.constraint_ms,
            met_constraint=total_latency <= state.constraint_ms,
            cpu_temperature_c=device.cpu_temperature_c.copy(),
            gpu_temperature_c=device.gpu_temperature_c.copy(),
            cpu_level_stage1=self._stage1_levels[0],
            gpu_level_stage1=self._stage1_levels[1],
            cpu_level_stage2=stage2_levels[0],
            gpu_level_stage2=stage2_levels[1],
            cpu_throttled=self._stage1_throttled
            | stage2_throttled
            | device.cpu_throttled,
            gpu_throttled=self._stage1_throttled
            | stage2_throttled
            | device.gpu_throttled,
            ambient_temperature_c=device.ambient_temperature_c.copy(),
            energy_j=state.frame_energy_j,
        )
        state.previous_latency_ms = total_latency
        self._frame_index += 1
        self._phase = _Phase.IDLE
        return result


# ---------------------------------------------------------------------------
# Episode loop
# ---------------------------------------------------------------------------


def run_fleet_episode(
    environment: BatchedInferenceEnvironment,
    policy: FleetPolicy,
    num_frames: int,
    reset_environment: bool = True,
    reset_policy: bool = True,
    sink=None,
):
    """Run ``policy`` on the fleet for ``num_frames`` lock-step frames.

    The single loop shared by every fleet experiment: the batch analogue of
    :func:`repro.env.episode.run_episode`.

    Args:
        sink: Optional frame sink with an ``append(FleetFrameResult)``
            method — e.g. a :class:`repro.store.FleetTraceWriter` spooling
            chunks to disk so the episode never holds the full trace in
            memory.  Defaults to a fresh in-memory :class:`FleetTrace`.
            When a writer is passed the caller owns sealing it
            (``close()``).

    Returns:
        The sink — the columnar :class:`FleetTrace` of all processed frames
        unless a custom sink was supplied.
    """
    if num_frames <= 0:
        raise ExperimentError("num_frames must be positive")
    if reset_environment:
        environment.reset()
    if reset_policy:
        policy.reset()
    trace = FleetTrace(environment.num_sessions) if sink is None else sink
    for _ in range(num_frames):
        start_observation = environment.begin_frame()
        environment.apply_decision(policy.begin_frame(start_observation))
        mid_observation = environment.run_first_stage()
        environment.apply_decision(policy.mid_frame(mid_observation))
        result = environment.run_second_stage()
        policy.end_frame(result)
        trace.append(result)
    return trace


# ---------------------------------------------------------------------------
# Grouped sub-fleets (heterogeneous fleets)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FleetSessionGroup:
    """One homogeneous sub-fleet of a heterogeneous fleet run.

    A heterogeneous fleet is partitioned into groups that share one device
    model and one detector (the quantities the batched kernels require to be
    uniform); everything else — dataset, ambient schedule, latency
    constraint, seed, policy — may vary per session *within* the group.
    Each group is one :class:`BatchedInferenceEnvironment` advanced as a
    single batched kernel; ``session_indices`` maps the group's local
    session order back to positions in the combined fleet.

    Attributes:
        environment: The group's batched environment (local sessions
            ``0..n_g-1``).
        policy: The fleet policy driving the group's sessions.
        session_indices: Global fleet index of each local session.
    """

    environment: BatchedInferenceEnvironment
    policy: FleetPolicy
    session_indices: tuple

    def __post_init__(self) -> None:
        if len(self.session_indices) != self.environment.num_sessions:
            raise ExperimentError(
                f"group has {self.environment.num_sessions} sessions but "
                f"{len(self.session_indices)} session indices"
            )


_FRAME_RESULT_ARRAY_FIELDS = (
    "num_proposals",
    "stage1_latency_ms",
    "stage2_latency_ms",
    "total_latency_ms",
    "latency_constraint_ms",
    "met_constraint",
    "cpu_temperature_c",
    "gpu_temperature_c",
    "cpu_level_stage1",
    "gpu_level_stage1",
    "cpu_level_stage2",
    "gpu_level_stage2",
    "cpu_throttled",
    "gpu_throttled",
    "ambient_temperature_c",
    "energy_j",
)


def validate_session_partition(
    session_indices: Sequence[Sequence[int]],
    num_sessions: int,
    allow_empty_groups: bool = True,
) -> List[np.ndarray]:
    """Check that the index groups partition ``0..N-1``; return int arrays.

    The single definition of the partition invariant shared by the grouped
    episode loop, :func:`interleave_frame_results` and the sub-fleet policy
    combinator (:class:`repro.governors.fleet.SubFleetPolicies`): indices in
    range, disjoint across groups, and together covering every session.
    """
    targets = [
        np.asarray(indices, dtype=np.int64) for indices in session_indices
    ]
    seen = np.zeros(num_sessions, dtype=bool)
    for target in targets:
        if not allow_empty_groups and target.size == 0:
            raise ConfigurationError("every group needs at least one session")
        if target.size and (target.min() < 0 or target.max() >= num_sessions):
            raise ConfigurationError(
                f"session index out of range [0, {num_sessions - 1}]"
            )
        if seen[target].any():
            raise ConfigurationError("groups must cover disjoint session indices")
        seen[target] = True
    if not seen.all():
        missing = np.flatnonzero(~seen).tolist()
        raise ConfigurationError(f"groups leave sessions {missing} uncovered")
    return targets


def _scatter_frame_results(
    results: Sequence[FleetFrameResult],
    targets: Sequence[np.ndarray],
    num_sessions: int,
) -> FleetFrameResult:
    """Scatter pre-validated per-group results into one combined frame."""
    index = results[0].index
    arrays: dict[str, np.ndarray] = {}
    datasets: List[str] = [""] * num_sessions
    for field in _FRAME_RESULT_ARRAY_FIELDS:
        arrays[field] = np.empty(num_sessions, dtype=getattr(results[0], field).dtype)
    for result, target in zip(results, targets):
        if result.index != index:
            raise ExperimentError(
                f"group frame indices diverged ({result.index} != {index})"
            )
        for field in _FRAME_RESULT_ARRAY_FIELDS:
            arrays[field][target] = getattr(result, field)
        for local, global_index in enumerate(target.tolist()):
            datasets[global_index] = result.datasets[local]
    return FleetFrameResult(index=index, datasets=tuple(datasets), **arrays)


def interleave_frame_results(
    results: Sequence[FleetFrameResult],
    session_indices: Sequence[Sequence[int]],
    num_sessions: int,
) -> FleetFrameResult:
    """Scatter per-group frame results back into one combined fleet frame.

    The inverse of the partitioning that built the groups: array element
    ``session_indices[g][j]`` of the combined result is element ``j`` of
    group ``g``'s result, so the combined :class:`FleetFrameResult` is
    ordered by global session index regardless of how sessions were grouped.
    The episode loop validates the (fixed) partition once and scatters per
    frame; this entry point validates on every call.
    """
    if not results:
        raise ExperimentError("need at least one group result")
    if len(results) != len(session_indices):
        raise ExperimentError(
            f"got {len(results)} group results for {len(session_indices)} "
            f"index groups"
        )
    targets = validate_session_partition(session_indices, num_sessions)
    return _scatter_frame_results(results, targets, num_sessions)


def run_grouped_fleet_episode(
    groups: Sequence[FleetSessionGroup],
    num_frames: int,
    reset_environments: bool = True,
    reset_policies: bool = True,
    sink=None,
):
    """Run a heterogeneous fleet — several grouped sub-fleets — in lock-step.

    The grouped analogue of :func:`run_fleet_episode`: every group advances
    through the same three-phase frame protocol each iteration (each phase
    as one batched kernel per group), and the per-group frame results are
    re-interleaved into a single columnar :class:`FleetTrace` ordered by
    global session index.  Groups never interact, so each session's
    trajectory is bit-identical to what it would produce in a homogeneous
    fleet — or a scalar run — of its own configuration and seed.

    Args:
        sink: Optional frame sink with ``append`` (see
            :func:`run_fleet_episode`); defaults to an in-memory
            :class:`FleetTrace`.

    Returns:
        The sink — the combined columnar trace over all groups' sessions
        unless a custom sink was supplied.
    """
    if num_frames <= 0:
        raise ExperimentError("num_frames must be positive")
    if not groups:
        raise ExperimentError("need at least one session group")
    num_sessions = sum(group.environment.num_sessions for group in groups)
    # The partition is fixed for the whole episode: validate it once and
    # keep only the scatter on the per-frame path.
    targets = validate_session_partition(
        [group.session_indices for group in groups], num_sessions
    )
    for group in groups:
        if reset_environments:
            group.environment.reset()
        if reset_policies:
            group.policy.reset()
    trace = FleetTrace(num_sessions) if sink is None else sink
    for _ in range(num_frames):
        for group in groups:
            observation = group.environment.begin_frame()
            group.environment.apply_decision(group.policy.begin_frame(observation))
        for group in groups:
            observation = group.environment.run_first_stage()
            group.environment.apply_decision(group.policy.mid_frame(observation))
        results = []
        for group in groups:
            result = group.environment.run_second_stage()
            group.policy.end_frame(result)
            results.append(result)
        trace.append(_scatter_frame_results(results, targets, num_sessions))
    return trace
