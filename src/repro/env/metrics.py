"""Episode metrics.

The quantitative results of the paper (Tables 1 and 2) report, per
(detector, dataset, method) combination: the mean latency ``l``, the latency
standard deviation ``sigma_l`` and the satisfaction rate ``R_L`` (fraction
of frames meeting the latency constraint).  :func:`summarize_trace` computes
these plus the thermal and energy metrics used in the discussion sections.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExperimentError
from repro.env.trace import Trace


@dataclass(frozen=True)
class EpisodeMetrics:
    """Summary statistics of one episode trace.

    Attributes:
        num_frames: Number of frames summarised.
        mean_latency_ms: Mean end-to-end latency (``l`` in the tables).
        latency_std_ms: Standard deviation of latency (``sigma_l``).
        min_latency_ms / max_latency_ms: Latency extremes.
        p95_latency_ms: 95th-percentile latency.
        satisfaction_rate: Fraction of frames meeting the constraint (``R_L``).
        mean_stage1_latency_ms / mean_stage2_latency_ms: Per-stage means.
        stage2_latency_std_ms: Standard deviation of the second-stage latency.
        mean_temperature_c: Mean of the per-frame mean (CPU, GPU) temperature.
        max_temperature_c: Hottest per-frame mean temperature observed.
        max_cpu_temperature_c / max_gpu_temperature_c: Per-die maxima.
        throttled_fraction: Fraction of frames with hardware throttling active.
        total_energy_j: Total energy consumed over the episode.
        mean_proposals: Mean RPN proposal count.
    """

    num_frames: int
    mean_latency_ms: float
    latency_std_ms: float
    min_latency_ms: float
    max_latency_ms: float
    p95_latency_ms: float
    satisfaction_rate: float
    mean_stage1_latency_ms: float
    mean_stage2_latency_ms: float
    stage2_latency_std_ms: float
    mean_temperature_c: float
    max_temperature_c: float
    max_cpu_temperature_c: float
    max_gpu_temperature_c: float
    throttled_fraction: float
    total_energy_j: float
    mean_proposals: float

    @property
    def stage1_latency_share(self) -> float:
        """Fraction of mean latency spent in stage 1 (≈0.8 per paper §4.2)."""
        total = self.mean_stage1_latency_ms + self.mean_stage2_latency_ms
        if total <= 0:
            return 0.0
        return self.mean_stage1_latency_ms / total


def summarize_trace(trace: Trace) -> EpisodeMetrics:
    """Compute :class:`EpisodeMetrics` for a trace.

    Raises:
        ExperimentError: If the trace is empty.
    """
    if len(trace) == 0:
        raise ExperimentError("cannot summarise an empty trace")
    latencies = trace.latencies_ms()
    stage1 = trace.stage1_latencies_ms()
    stage2 = trace.stage2_latencies_ms()
    mean_temps = trace.mean_temperatures_c()
    return EpisodeMetrics(
        num_frames=len(trace),
        mean_latency_ms=float(np.mean(latencies)),
        latency_std_ms=float(np.std(latencies)),
        min_latency_ms=float(np.min(latencies)),
        max_latency_ms=float(np.max(latencies)),
        p95_latency_ms=float(np.percentile(latencies, 95)),
        satisfaction_rate=float(np.mean(trace.constraint_met())),
        mean_stage1_latency_ms=float(np.mean(stage1)),
        mean_stage2_latency_ms=float(np.mean(stage2)),
        stage2_latency_std_ms=float(np.std(stage2)),
        mean_temperature_c=float(np.mean(mean_temps)),
        max_temperature_c=float(np.max(mean_temps)),
        max_cpu_temperature_c=float(np.max(trace.cpu_temperatures_c())),
        max_gpu_temperature_c=float(np.max(trace.gpu_temperatures_c())),
        throttled_fraction=float(np.mean(trace.throttled())),
        total_energy_j=float(np.sum(trace.energies_j())),
        mean_proposals=float(np.mean(trace.proposals())),
    )


def downsample_series(values: np.ndarray, max_points: int = 100) -> np.ndarray:
    """Average ``values`` into at most ``max_points`` buckets.

    Figure benches print latency/temperature series; averaging into a fixed
    number of buckets keeps the printed output readable regardless of the
    episode length.
    """
    if max_points <= 0:
        raise ExperimentError("max_points must be positive")
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return values
    if values.size <= max_points:
        return values.copy()
    edges = np.linspace(0, values.size, max_points + 1, dtype=int)
    return np.array(
        [np.mean(values[start:end]) for start, end in zip(edges[:-1], edges[1:]) if end > start]
    )
