"""Ambient-temperature profiles.

The external environment of an edge device changes over time: a phone moves
between a warm room and the cold outdoors, a drone climbs to colder air.
The paper's Fig. 7a evaluates exactly this by moving the device between a
25 °C "warm zone" and a 0 °C "cold zone" during inference.  An
:class:`AmbientProfile` maps the current frame index to the ambient
temperature the thermal network should cool towards.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError


class AmbientProfile(ABC):
    """Maps a frame index to an ambient temperature in °C."""

    @abstractmethod
    def temperature_at(self, frame_index: int) -> float:
        """Ambient temperature (°C) when processing frame ``frame_index``."""

    def initial_temperature(self) -> float:
        """Ambient temperature before the first frame."""
        return self.temperature_at(0)


@dataclass(frozen=True)
class ConstantAmbient(AmbientProfile):
    """A fixed ambient temperature (the paper's "static environment").

    Attributes:
        temperature_c: The constant ambient temperature.
    """

    temperature_c: float = 25.0

    def temperature_at(self, frame_index: int) -> float:
        return self.temperature_c


@dataclass(frozen=True)
class AmbientSegment:
    """One segment of a stepped ambient schedule.

    Attributes:
        num_frames: Number of frames the segment lasts.
        temperature_c: Ambient temperature during the segment.
        label: Optional human-readable label ("warm zone", "cold zone").
    """

    num_frames: int
    temperature_c: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.num_frames <= 0:
            raise ConfigurationError("ambient segment must last at least one frame")


class StepAmbient(AmbientProfile):
    """Piecewise-constant ambient schedule (warm zone → cold zone → ...).

    The last segment extends indefinitely, so an episode may run longer than
    the scheduled segments without error.
    """

    def __init__(self, segments: Sequence[AmbientSegment]):
        if not segments:
            raise ConfigurationError("StepAmbient requires at least one segment")
        self._segments = tuple(segments)
        boundaries = []
        start = 0
        for segment in self._segments:
            start += segment.num_frames
            boundaries.append(start)
        self._boundaries = tuple(boundaries)

    @property
    def segments(self) -> tuple[AmbientSegment, ...]:
        """The configured segments."""
        return self._segments

    def segment_at(self, frame_index: int) -> AmbientSegment:
        """The segment active at ``frame_index``."""
        if frame_index < 0:
            raise ConfigurationError("frame_index must be non-negative")
        for boundary, segment in zip(self._boundaries, self._segments):
            if frame_index < boundary:
                return segment
        return self._segments[-1]

    def temperature_at(self, frame_index: int) -> float:
        return self.segment_at(frame_index).temperature_c


def warm_cold_warm(
    frames_per_zone: int,
    warm_temperature_c: float = 25.0,
    cold_temperature_c: float = 0.0,
) -> StepAmbient:
    """The Fig. 7a schedule: warm zone → cold zone → warm zone."""
    return StepAmbient(
        [
            AmbientSegment(frames_per_zone, warm_temperature_c, label="warm zone"),
            AmbientSegment(frames_per_zone, cold_temperature_c, label="cold zone"),
            AmbientSegment(frames_per_zone, warm_temperature_c, label="warm zone"),
        ]
    )
