"""Ambient-temperature profiles.

The external environment of an edge device changes over time: a phone moves
between a warm room and the cold outdoors, a drone climbs to colder air.
The paper's Fig. 7a evaluates exactly this by moving the device between a
25 °C "warm zone" and a 0 °C "cold zone" during inference.  An
:class:`AmbientProfile` maps the current frame index to the ambient
temperature the thermal network should cool towards.

Four concrete profiles cover the scenario library:

* :class:`ConstantAmbient` — a fixed temperature (the static environment),
* :class:`StepAmbient` — piecewise-constant zone schedules (Fig. 7a),
* :class:`DiurnalAmbient` — a sinusoidal day/night cycle (a phone or kiosk
  that lives through whole days),
* :class:`LinearRampAmbient` — a linear transition between two
  temperatures (a drone climbing to colder air, a vehicle warming up).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError


class AmbientProfile(ABC):
    """Maps a frame index to an ambient temperature in °C."""

    @abstractmethod
    def temperature_at(self, frame_index: int) -> float:
        """Ambient temperature (°C) when processing frame ``frame_index``."""

    def initial_temperature(self) -> float:
        """Ambient temperature before the first frame."""
        return self.temperature_at(0)


@dataclass(frozen=True)
class ConstantAmbient(AmbientProfile):
    """A fixed ambient temperature (the paper's "static environment").

    Attributes:
        temperature_c: The constant ambient temperature.
    """

    temperature_c: float = 25.0

    def temperature_at(self, frame_index: int) -> float:
        return self.temperature_c


@dataclass(frozen=True)
class AmbientSegment:
    """One segment of a stepped ambient schedule.

    Attributes:
        num_frames: Number of frames the segment lasts.
        temperature_c: Ambient temperature during the segment.
        label: Optional human-readable label ("warm zone", "cold zone").
    """

    num_frames: int
    temperature_c: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.num_frames <= 0:
            raise ConfigurationError("ambient segment must last at least one frame")


class StepAmbient(AmbientProfile):
    """Piecewise-constant ambient schedule (warm zone → cold zone → ...).

    The last segment extends indefinitely, so an episode may run longer than
    the scheduled segments without error.
    """

    def __init__(self, segments: Sequence[AmbientSegment]):
        if not segments:
            raise ConfigurationError("StepAmbient requires at least one segment")
        self._segments = tuple(segments)
        boundaries = []
        start = 0
        for segment in self._segments:
            start += segment.num_frames
            boundaries.append(start)
        self._boundaries = tuple(boundaries)

    @property
    def segments(self) -> tuple[AmbientSegment, ...]:
        """The configured segments."""
        return self._segments

    def __eq__(self, other: object) -> bool:
        # Value semantics, so schedules survive serialisation round-trips
        # and can be compared inside scenario specs.
        if not isinstance(other, StepAmbient):
            return NotImplemented
        return self._segments == other._segments

    def __hash__(self) -> int:
        return hash(self._segments)

    def __repr__(self) -> str:
        return f"StepAmbient({list(self._segments)!r})"

    def segment_at(self, frame_index: int) -> AmbientSegment:
        """The segment active at ``frame_index``."""
        if frame_index < 0:
            raise ConfigurationError("frame_index must be non-negative")
        for boundary, segment in zip(self._boundaries, self._segments):
            if frame_index < boundary:
                return segment
        return self._segments[-1]

    def temperature_at(self, frame_index: int) -> float:
        return self.segment_at(frame_index).temperature_c


@dataclass(frozen=True)
class DiurnalAmbient(AmbientProfile):
    """Sinusoidal day/night ambient cycle.

    The temperature follows ``mean_c + amplitude_c * sin(2π * (i +
    phase_frames) / period_frames)``: one full warm/cool swing every
    ``period_frames`` frames, starting at the mean and warming first (use
    ``phase_frames`` to start elsewhere in the cycle, e.g. a quarter period
    earlier for a midday start).

    Attributes:
        mean_c: Average ambient temperature over one cycle.
        amplitude_c: Half the peak-to-trough swing (must be non-negative).
        period_frames: Frames per full cycle (must be positive).
        phase_frames: Phase offset in frames (may be negative).
    """

    mean_c: float = 25.0
    amplitude_c: float = 8.0
    period_frames: int = 1000
    phase_frames: int = 0

    def __post_init__(self) -> None:
        if self.period_frames <= 0:
            raise ConfigurationError("period_frames must be positive")
        if self.amplitude_c < 0:
            raise ConfigurationError("amplitude_c must be non-negative")

    def temperature_at(self, frame_index: int) -> float:
        angle = (
            2.0
            * math.pi
            * ((frame_index + self.phase_frames) / self.period_frames)
        )
        return self.mean_c + self.amplitude_c * math.sin(angle)


@dataclass(frozen=True)
class LinearRampAmbient(AmbientProfile):
    """Linear ambient transition, then hold.

    Temperature stays at ``start_c`` for ``delay_frames`` frames, moves
    linearly to ``end_c`` over the following ``ramp_frames`` frames, and
    holds ``end_c`` afterwards — a drone climbing into colder air, a parked
    vehicle heating up in the sun.

    Attributes:
        start_c: Temperature before the ramp.
        end_c: Temperature after the ramp.
        ramp_frames: Duration of the transition in frames (must be positive).
        delay_frames: Frames at ``start_c`` before the ramp begins.
    """

    start_c: float = 25.0
    end_c: float = 0.0
    ramp_frames: int = 500
    delay_frames: int = 0

    def __post_init__(self) -> None:
        if self.ramp_frames <= 0:
            raise ConfigurationError("ramp_frames must be positive")
        if self.delay_frames < 0:
            raise ConfigurationError("delay_frames must be non-negative")

    def temperature_at(self, frame_index: int) -> float:
        if frame_index < 0:
            raise ConfigurationError("frame_index must be non-negative")
        progressed = frame_index - self.delay_frames
        if progressed <= 0:
            return self.start_c
        if progressed >= self.ramp_frames:
            return self.end_c
        fraction = progressed / self.ramp_frames
        return self.start_c + (self.end_c - self.start_c) * fraction


def warm_cold_warm(
    frames_per_zone: int,
    warm_temperature_c: float = 25.0,
    cold_temperature_c: float = 0.0,
) -> StepAmbient:
    """The Fig. 7a schedule: warm zone → cold zone → warm zone."""
    return StepAmbient(
        [
            AmbientSegment(frames_per_zone, warm_temperature_c, label="warm zone"),
            AmbientSegment(frames_per_zone, cold_temperature_c, label="cold zone"),
            AmbientSegment(frames_per_zone, warm_temperature_c, label="warm zone"),
        ]
    )
