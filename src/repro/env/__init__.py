"""Simulation environment.

Ties the hardware simulator, the detector cost models and the workload
streams together into the frame-by-frame inference loop that DVFS policies
(default governors, zTT, Lotus) control.  The environment exposes exactly
two decision points per frame — at the start of the frame and right after
the RPN, when the proposal count becomes known — mirroring the structure of
the Lotus framework (paper §4.2).
"""

from repro.env.ambient import (
    AmbientProfile,
    AmbientSegment,
    ConstantAmbient,
    DiurnalAmbient,
    LinearRampAmbient,
    StepAmbient,
    warm_cold_warm,
)
from repro.env.environment import (
    FrameResult,
    FrameStartObservation,
    InferenceEnvironment,
    MidFrameObservation,
)
from repro.env.episode import run_episode
from repro.env.fleet import (
    BatchedInferenceEnvironment,
    FleetDecision,
    FleetFrameResult,
    FleetMidObservation,
    FleetPolicy,
    FleetSessionGroup,
    FleetStartObservation,
    FleetState,
    FleetTrace,
    PerSessionPolicies,
    SessionAmbient,
    interleave_frame_results,
    run_fleet_episode,
    run_grouped_fleet_episode,
)
from repro.env.metrics import EpisodeMetrics, summarize_trace
from repro.env.policy import FrequencyDecision, Policy
from repro.env.trace import Trace

__all__ = [
    "AmbientProfile",
    "AmbientSegment",
    "BatchedInferenceEnvironment",
    "ConstantAmbient",
    "DiurnalAmbient",
    "EpisodeMetrics",
    "FleetDecision",
    "FleetFrameResult",
    "FleetMidObservation",
    "FleetPolicy",
    "FleetSessionGroup",
    "FleetStartObservation",
    "FleetState",
    "FleetTrace",
    "FrameResult",
    "FrameStartObservation",
    "FrequencyDecision",
    "InferenceEnvironment",
    "LinearRampAmbient",
    "MidFrameObservation",
    "PerSessionPolicies",
    "Policy",
    "SessionAmbient",
    "StepAmbient",
    "Trace",
    "interleave_frame_results",
    "run_episode",
    "run_fleet_episode",
    "run_grouped_fleet_episode",
    "summarize_trace",
    "warm_cold_warm",
]
