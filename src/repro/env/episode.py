"""Episode runner.

Runs a policy against an :class:`InferenceEnvironment` for a number of
frames and records the resulting trace.  This is the single loop shared by
all experiments: the only thing that differs between a "default governor"
row and a "Lotus" row of the paper's tables is the policy object passed in.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ExperimentError
from repro.env.environment import InferenceEnvironment
from repro.env.policy import Policy
from repro.env.trace import Trace

ProgressCallback = Callable[[int, Trace], None]


def run_episode(
    environment: InferenceEnvironment,
    policy: Policy,
    num_frames: int,
    reset_environment: bool = True,
    reset_policy: bool = True,
    progress_callback: ProgressCallback | None = None,
) -> Trace:
    """Run ``policy`` on ``environment`` for ``num_frames`` frames.

    Args:
        environment: The inference environment to drive.
        policy: The DVFS policy under evaluation.
        num_frames: Number of image frames to process.
        reset_environment: Reset the device to a cold state first (the
            paper's episodes start from a cold device).
        reset_policy: Reset the policy's internal state first.
        progress_callback: Optional callable invoked after every frame with
            the frame index and the trace so far (used by long-running
            examples to report progress).

    Returns:
        The :class:`Trace` of all processed frames.
    """
    if num_frames <= 0:
        raise ExperimentError("num_frames must be positive")
    if reset_environment:
        environment.reset()
    if reset_policy:
        policy.reset()

    trace = Trace()
    for _ in range(num_frames):
        start_observation = environment.begin_frame()
        decision = policy.begin_frame(start_observation)
        if decision is not None:
            environment.apply_levels(decision.cpu_level, decision.gpu_level)

        mid_observation = environment.run_first_stage()
        decision = policy.mid_frame(mid_observation)
        if decision is not None:
            environment.apply_levels(decision.cpu_level, decision.gpu_level)

        result = environment.run_second_stage()
        policy.end_frame(result)
        trace.append(result.record)
        if progress_callback is not None:
            progress_callback(result.record.index, trace)
    return trace
