"""Command-line interface of the experiment runtime (``python -m repro``).

Eleven subcommands drive the engine without writing any code:

* ``run`` — execute one experiment cell and print its summary metrics.
* ``sweep`` — expand a (devices × detectors × datasets × methods × seeds)
  grid, run it on the worker pool with result caching, and print one
  paper-style comparison table per device.
* ``fleet`` — run one cell as N vectorized lock-step sessions in a single
  process (the fleet engine) and print per-session plus aggregate metrics.
* ``scenario`` — the declarative front end: ``scenario list`` names the
  registered scenario library, ``scenario show`` prints a scenario's JSON
  spec, and ``scenario run`` executes a (possibly heterogeneous) scenario
  on the grouped fleet engine with a per-group summary table.
* ``report`` — render the same tables purely from the cache, listing any
  missing cells instead of running them (useful on machines that only hold
  the cache, e.g. when collecting results produced elsewhere).
* ``policy`` — the policy lifecycle: ``policy train`` trains a scenario's
  learning method and files the checkpoint in the content-addressed policy
  zoo, ``policy list``/``show`` inspect the zoo (metadata, lineage),
  ``policy export``/``import`` move checkpoints between machines, and
  ``policy eval-matrix`` runs M frozen policies × N registry scenarios
  through the cached runtime and renders the transfer table.
* ``devices`` / ``detectors`` — list the registered device and detector
  models with their key parameters.
* ``cache`` — inspect (``info``/``list``), clear or ``prune`` the result
  cache (``--keep-latest`` / ``--max-age-days``; add ``--dry-run`` to see
  what prune would remove without deleting anything).
* ``bench`` — run a :mod:`repro.perf` microbenchmark suite (``--suite rl``,
  ``--suite fleet``, ``--suite shards``, ``--suite faults``,
  ``--suite store``, ``--suite pool`` or ``--suite obs``) and write the
  ``BENCH_*.json`` perf-trajectory report.
* ``obs`` — inspect recorded observability runs: ``obs list`` names the
  runs under the obs directory, ``obs report`` renders one run's spans,
  counters and exact percentiles (default: the latest run).

Fault injection: ``scenario run`` and ``fleet run`` accept ``--faults
PLAN.json`` (a serialised :class:`~repro.faults.FaultPlan`) to run the
scenario under injected faults; ``fleet run --supervised`` additionally
runs the crash-recovering supervisor (``--checkpoint-every`` frames
between spooled checkpoints) and ``--report PATH`` writes the degraded-
operation metrics as JSON.

Observability: ``run``, ``fleet`` and ``scenario run`` accept ``--obs``
(equivalently ``REPRO_OBS=1``) to collect spans, counters and histograms
while the command runs — traces stay byte-identical — then write the run
under the obs directory (``REPRO_OBS_DIR`` or ``<cache>/obs``) and print
its summary table.

``python -m repro --version`` prints the package version; an unknown
subcommand exits non-zero with a one-line message.  Every library error
derives from :class:`~repro.errors.ReproError` and is reported as a clean
one-line message with a non-zero exit code.

Examples::

    python -m repro run --method lotus --frames 500
    python -m repro sweep --detectors faster_rcnn,mask_rcnn \
        --datasets kitti,visdrone2019 --workers 4
    python -m repro fleet --method default --sessions 64 --frames 500
    python -m repro fleet run --shards 4 --sessions 64 --frames 500
    python -m repro fleet run cctv-burst --shards 2 --per-session
    python -m repro scenario list
    python -m repro scenario run mixed-edge-fleet --frames 300
    python -m repro policy train --scenario jetson-kitti-baseline --frames 400
    python -m repro policy eval-matrix --policies 3f2a,9c1d \
        --scenarios jetson-kitti-baseline,drone-climb --frames 300
    python -m repro run --method policy:3f2a --frames 300
    python -m repro report --detectors faster_rcnn,mask_rcnn \
        --datasets kitti,visdrone2019
    python -m repro devices
    python -m repro cache info
    python -m repro cache prune --keep-latest 200 --dry-run
    python -m repro bench --suite fleet --quick
    python -m repro scenario run cctv-burst --faults plan.json
    python -m repro fleet run cctv-burst --shards 2 --supervised \
        --faults plan.json --report resilience.json
    python -m repro bench --suite faults --quick
    python -m repro fleet run cctv-burst --shards 2 --obs
    python -m repro obs report
    python -m repro bench --suite obs --quick
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.errors import LotusError, ReproError
from repro.runtime.cache import ResultCache, default_cache_dir
from repro.runtime.engine import ExperimentRuntime, default_worker_count
from repro.runtime.job import ExperimentJob
from repro.runtime.sweep import SweepSpec, sweep_metrics_map


def _split(raw: str) -> tuple[str, ...]:
    return tuple(part.strip() for part in raw.split(",") if part.strip())


def _split_ints(raw: str) -> tuple[int, ...]:
    return tuple(int(part) for part in _split(raw))


def _cache_from(args: argparse.Namespace) -> Optional[ResultCache]:
    if getattr(args, "no_cache", False):
        return None
    return ResultCache(args.cache_dir)


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"result cache directory (default: {default_cache_dir()})",
    )


def _add_cell_arguments(parser: argparse.ArgumentParser, plural: bool) -> None:
    if plural:
        parser.add_argument(
            "--devices", type=_split, default=("jetson-orin-nano",),
            help="comma-separated device names",
        )
        parser.add_argument(
            "--detectors", type=_split, default=("faster_rcnn",),
            help="comma-separated detector names",
        )
        parser.add_argument(
            "--datasets", type=_split, default=("kitti",),
            help="comma-separated dataset names",
        )
        parser.add_argument(
            "--methods", type=_split, default=("default", "ztt", "lotus"),
            help="comma-separated method names",
        )
        parser.add_argument(
            "--seeds", type=_split_ints, default=(0,),
            help="comma-separated random seeds",
        )
    else:
        parser.add_argument("--device", default="jetson-orin-nano", help="device name")
        parser.add_argument("--detector", default="faster_rcnn", help="detector name")
        parser.add_argument("--dataset", default="kitti", help="dataset name")
        parser.add_argument("--method", default="lotus", help="method name")
        parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--frames", type=int, default=1000, help="evaluation frames")
    parser.add_argument(
        "--training-frames", type=int, default=0,
        help="online-training frames before evaluation (learning methods)",
    )
    parser.add_argument(
        "--constraint-ms", type=float, default=None,
        help="latency constraint in ms (default: derived from the cost model)",
    )
    parser.add_argument(
        "--ambient-c", type=float, default=25.0, help="ambient temperature in deg C"
    )


def _summary_line(label: str, metrics) -> str:
    return (
        f"{label:<24s} l={metrics.mean_latency_ms:8.1f} ms  "
        f"sigma={metrics.latency_std_ms:7.1f} ms  "
        f"R_L={metrics.satisfaction_rate * 100:5.1f} %  "
        f"T_mean={metrics.mean_temperature_c:5.1f} C  "
        f"T_max={metrics.max_temperature_c:5.1f} C  "
        f"throttled={metrics.throttled_fraction * 100:4.1f} %"
    )


def _sweep_spec(args: argparse.Namespace) -> SweepSpec:
    return SweepSpec(
        devices=args.devices,
        detectors=args.detectors,
        datasets=args.datasets,
        methods=args.methods,
        seeds=args.seeds,
        num_frames=args.frames,
        training_frames=args.training_frames,
        ambient_temperature_c=args.ambient_c,
        latency_constraint_ms=args.constraint_ms,
    )


def _print_sweep_tables(spec: SweepSpec, jobs, results, use_steady: bool) -> None:
    from repro.analysis.tables import comparison_table

    for device in spec.devices:
        table = sweep_metrics_map(jobs, results, device=device, use_steady=use_steady)
        if not table:
            continue
        print()
        print(
            comparison_table(
                table,
                datasets=list(spec.datasets),
                title=f"[{device}] frames={spec.num_frames} "
                f"training={spec.training_frames} seeds={list(spec.seeds)}",
            )
        )


def _obs_begin(args: argparse.Namespace) -> bool:
    """Start metric collection when ``--obs`` or ``REPRO_OBS=1`` asks for it.

    Returns whether collection is active (the caller pairs this with
    :func:`_obs_finish`).  A fresh registry is installed so one CLI
    invocation maps to exactly one obs run.
    """
    from repro.obs import bus

    if not getattr(args, "obs", False) and not bus.obs_enabled():
        return False
    bus.enable(fresh=True)
    return True


def _obs_finish(active: bool, label: str) -> None:
    """Persist the collected run, print its summary, and stop collecting."""
    if not active:
        return
    from repro.obs import bus
    from repro.obs.report import render_summary
    from repro.obs.sink import write_run

    run_dir, summary = write_run(bus.registry(), label=label)
    bus.disable()
    print()
    print(render_summary(summary))
    print(f"obs: wrote {run_dir}")


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import ExperimentSetting

    setting = ExperimentSetting(
        device=args.device,
        detector=args.detector,
        dataset=args.dataset,
        num_frames=args.frames,
        training_frames=args.training_frames,
        latency_constraint_ms=args.constraint_ms,
        ambient_temperature_c=args.ambient_c,
        seed=args.seed,
    )
    job = ExperimentJob(setting=setting, method=args.method)
    runtime = ExperimentRuntime(max_workers=1, cache=_cache_from(args))
    observing = _obs_begin(args)
    result = runtime.run(job)
    report = runtime.last_report
    source = "cache" if report.cache_hits else "fresh run"
    print(
        f"{args.method} on {args.dataset}/{args.detector} ({args.device}), "
        f"{args.frames} frames [{source}]"
    )
    print(_summary_line("whole episode", result.metrics))
    print(_summary_line("steady state", result.steady_metrics))
    _obs_finish(observing, label=f"run:{args.method}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = _sweep_spec(args)
    jobs = spec.expand()
    runtime = ExperimentRuntime(
        max_workers=args.workers, cache=_cache_from(args)
    )
    print(
        f"sweep: {spec.size} jobs "
        f"({len(spec.devices)} devices x {len(spec.detectors)} detectors x "
        f"{len(spec.datasets)} datasets x {len(spec.seeds)} seeds x "
        f"{len(spec.methods)} methods), workers={runtime.max_workers}"
    )

    def progress(done: int, total: int, job: ExperimentJob, hit: bool) -> None:
        status = "cached" if hit else "ran"
        print(
            f"  [{done}/{total}] {status:>6s}  {job.setting.device} "
            f"{job.setting.detector} {job.setting.dataset} "
            f"seed={job.setting.seed} {job.method}",
            flush=True,
        )

    results = runtime.run_jobs(jobs, progress=progress if not args.quiet else None)
    report = runtime.last_report
    print(
        f"done: {report.cache_hits} cache hits, {report.executed} executed"
        + (f", {report.uncacheable} uncacheable" if report.uncacheable else "")
    )
    _print_sweep_tables(spec, jobs, results, args.steady)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    spec = _sweep_spec(args)
    jobs = spec.expand()
    found_jobs, results, missing = [], [], []
    for job in jobs:
        key = job.cache_key()
        cached = cache.load(key) if key else None
        if cached is None:
            missing.append(job)
        else:
            found_jobs.append(job)
            results.append(cached)
    print(f"report: {len(results)}/{len(jobs)} cells cached under {cache.root}")
    _print_sweep_tables(spec, found_jobs, results, args.steady)
    if missing:
        print(f"\nmissing cells ({len(missing)}):")
        for job in missing:
            print(
                f"  {job.setting.device} {job.setting.detector} "
                f"{job.setting.dataset} seed={job.setting.seed} {job.method}"
            )
        print("run `python -m repro sweep` with the same arguments to fill them")
        return 1
    return 0


def _print_fleet_aggregate(result) -> None:
    latencies = result.fleet_trace.latencies_ms()
    met = result.fleet_trace.constraint_met()
    print(
        f"aggregate: l={latencies.mean():8.1f} ms  "
        f"R_L={met.mean() * 100:5.1f} %  "
        f"{result.fleet_trace.total_frames} frames in {result.elapsed_s:.2f} s "
        f"({result.aggregate_frames_per_second:,.0f} frames/s)"
    )


def _load_fault_plan(path: str | None):
    """Read a serialised fault plan, or ``None`` when no path was given."""
    if path is None:
        return None
    from pathlib import Path

    from repro.errors import FaultError
    from repro.faults.plan import fault_plan_from_json

    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise FaultError(f"cannot read fault plan {path!r}: {exc}") from exc
    return fault_plan_from_json(text)


def _print_resilience(result, report_path: str | None) -> None:
    """Print the degraded-operation summary; optionally write it as JSON."""
    import json

    from repro.analysis.resilience import resilience_report, resilience_table

    report = resilience_report(result)
    print()
    print(resilience_table(report))
    if report_path is not None:
        from pathlib import Path

        Path(report_path).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {report_path}")


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import ExperimentSetting
    from repro.runtime.fleet import run_fleet
    from repro.runtime.shards import run_sharded_fleet, run_sharded_scenario

    if args.training_frames:
        raise LotusError(
            "fleet mode has no pre-evaluation warm-up phase (learning methods "
            "train within the episode itself); drop --training-frames or use "
            "`python -m repro run`"
        )
    if args.scenario is not None:
        # `fleet run SCENARIO --shards N`: shard a registered scenario's
        # fleet across worker processes (trace byte-identical to the
        # single-process `scenario run`).  With --supervised the shards run
        # under the crash-recovering supervisor instead.
        from repro.runtime.shards import run_supervised_scenario

        scenario = args.scenario
        observing = _obs_begin(args)
        plan = _load_fault_plan(args.faults)
        if plan is not None:
            from repro.scenarios import build_scenario

            scenario = build_scenario(args.scenario).with_faults(plan)
        if args.supervised:
            result = run_supervised_scenario(
                scenario,
                args.shards,
                num_sessions=args.sessions,
                num_frames=args.frames,
                checkpoint_every=args.checkpoint_every,
            )
        else:
            result = run_sharded_scenario(
                scenario,
                args.shards,
                num_sessions=args.sessions,
                num_frames=args.frames,
            )
        print(
            f"fleet: scenario {args.scenario} — {result.num_sessions} sessions "
            f"x {result.scenario.num_frames} frames across "
            f"{result.num_shards} shard(s)"
        )
        if args.per_session:
            for assignment in result.assignments:
                session = result.sessions[assignment.index]
                label = (
                    f"{assignment.index}: {assignment.spec.name} "
                    f"(seed {assignment.seed})"
                )
                print(_summary_line(label, session.metrics))
        _print_fleet_aggregate(result)
        if args.supervised:
            recovery = result.recovery
            print(
                f"supervisor: {recovery.crashes_detected} crash(es) detected, "
                f"{recovery.restarts} restart(s), recovered shards "
                f"{list(recovery.recovered_shards)}, "
                f"recovery {recovery.recovery_s:.2f} s"
            )
        if args.supervised or plan is not None:
            _print_resilience(result, args.report)
        _obs_finish(observing, label=f"fleet:{args.scenario}")
        return 0

    sessions = args.sessions if args.sessions is not None else 64
    frames = args.frames if args.frames is not None else 1000
    observing = _obs_begin(args)
    setting = ExperimentSetting(
        device=args.device,
        detector=args.detector,
        dataset=args.dataset,
        num_frames=frames,
        latency_constraint_ms=args.constraint_ms,
        ambient_temperature_c=args.ambient_c,
        seed=args.seed,
    )
    if args.shards > 1:
        result = run_sharded_fleet(setting, args.method, sessions, args.shards)
    else:
        result = run_fleet(setting, args.method, sessions)
    shard_note = f" ({args.shards} shards)" if args.shards > 1 else ""
    print(
        f"fleet: {sessions} sessions x {frames} frames, "
        f"{result.policy_name} on {args.dataset}/{args.detector} "
        f"({args.device}){shard_note}"
    )
    if args.per_session:
        for i, session in enumerate(result.sessions):
            print(_summary_line(f"session {i} (seed {setting.seed + i})", session.metrics))
    _print_fleet_aggregate(result)
    _obs_finish(observing, label=f"fleet:{args.method}")
    return 0


def _cmd_scenario_list(args: argparse.Namespace) -> int:
    from repro.scenarios import FleetScenario, available_scenarios, build_scenario

    for name in available_scenarios():
        scenario = build_scenario(name)
        if isinstance(scenario, FleetScenario):
            devices = sorted({m.spec.device for m in scenario.members})
            summary = (
                f"fleet     {len(scenario.members)} members, "
                f"{scenario.total_sessions()} sessions x {scenario.num_frames} "
                f"frames, devices: {', '.join(devices)}"
            )
        else:
            summary = (
                f"scenario  {scenario.device}/{scenario.detector}/"
                f"{scenario.dataset}, {scenario.method}, "
                f"{scenario.num_sessions} sessions x {scenario.num_frames} frames"
            )
        print(f"{name:<26s} {summary}")
        description = getattr(scenario, "description", "")
        if description and args.verbose:
            print(f"{'':<26s} {description}")
    return 0


def _cmd_scenario_show(args: argparse.Namespace) -> int:
    from repro.scenarios import build_scenario

    print(build_scenario(args.name).to_json(indent=2))
    return 0


def _cmd_scenario_run(args: argparse.Namespace) -> int:
    from repro.analysis.tables import scenario_group_table
    from repro.runtime.fleet import run_scenario

    target = args.name
    observing = _obs_begin(args)
    plan = _load_fault_plan(args.faults)
    if plan is not None:
        from repro.scenarios import build_scenario

        target = build_scenario(args.name).with_faults(plan)
    result = run_scenario(
        target, num_sessions=args.sessions, num_frames=args.frames
    )
    scenario = result.scenario
    print(
        f"scenario: {args.name} — {result.num_sessions} sessions x "
        f"{scenario.num_frames} frames in {len(result.groups)} "
        f"group(s)"
    )
    if args.per_session:
        for assignment in result.assignments:
            session = result.sessions[assignment.index]
            label = f"{assignment.index}: {assignment.spec.name} (seed {assignment.seed})"
            print(_summary_line(label, session.metrics))
    print()
    print(scenario_group_table(result))
    latencies = result.fleet_trace.latencies_ms()
    met = result.fleet_trace.constraint_met()
    print(
        f"\naggregate: l={latencies.mean():8.1f} ms  "
        f"R_L={met.mean() * 100:5.1f} %  "
        f"{result.fleet_trace.total_frames} frames in {result.elapsed_s:.2f} s "
        f"({result.aggregate_frames_per_second:,.0f} frames/s)"
    )
    if plan is not None:
        _print_resilience(result, args.report)
    _obs_finish(observing, label=f"scenario:{args.name}")
    return 0


def _cmd_devices(args: argparse.Namespace) -> int:
    from repro.hardware.devices.registry import available_devices, build_device

    for name in available_devices():
        device = build_device(name)
        print(
            f"{name:<18s} cpu: {device.cpu.name} ({device.cpu.num_levels} levels, "
            f"max {device.cpu.frequency_table.max_frequency_khz / 1e3:.0f} MHz)  "
            f"gpu: {device.gpu.name} ({device.gpu.num_levels} levels, "
            f"max {device.gpu.frequency_table.max_frequency_khz / 1e3:.0f} MHz)  "
            f"trip {min(device.cpu_throttle.trip_temperature_c, device.gpu_throttle.trip_temperature_c):.0f} C"
        )
    return 0


def _cmd_detectors(args: argparse.Namespace) -> int:
    from repro.detection.registry import available_detectors, build_detector

    for name in available_detectors():
        detector = build_detector(name)
        kind = "two-stage" if detector.is_two_stage else "one-stage"
        cap = (
            f", <= {detector.proposal_model.max_proposals} proposals"
            if detector.is_two_stage
            else ""
        )
        print(
            f"{name:<14s} {kind}, stages: {', '.join(detector.stage_names)}{cap}"
        )
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs.report import render_summary
    from repro.obs.sink import default_obs_dir, latest_run, list_runs, load_summary

    obs_dir = Path(args.obs_dir).expanduser() if args.obs_dir else default_obs_dir()
    if args.action == "list":
        runs = list_runs(obs_dir)
        for run_id in runs:
            summary = load_summary(run_id, obs_dir)
            label = summary.get("label") or "-"
            print(
                f"{run_id:<22s} {label:<28s} "
                f"{summary.get('num_events', 0):5d} events  "
                f"{len(summary.get('histograms', {})):3d} histograms"
            )
        print(f"{len(runs)} run(s) under {obs_dir}")
        return 0
    run_id = args.run if args.run else latest_run(obs_dir)
    print(render_summary(load_summary(run_id, obs_dir)))
    print(f"\nrun directory: {obs_dir / run_id}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf import (
        DEFAULT_FAULTS_OUTPUT,
        DEFAULT_FLEET_OUTPUT,
        DEFAULT_OBS_OUTPUT,
        DEFAULT_OUTPUT,
        DEFAULT_POOL_OUTPUT,
        DEFAULT_SHARD_OUTPUT,
        DEFAULT_STORE_OUTPUT,
        FLEET_SPEEDUP_TARGETS,
        format_report,
        run_bench_suite,
        run_fault_bench_suite,
        run_fleet_bench_suite,
        run_obs_bench_suite,
        run_pool_bench_suite,
        run_shard_bench_suite,
        run_store_bench_suite,
        write_fault_report,
        write_fleet_report,
        write_obs_report,
        write_pool_report,
        write_report,
        write_shard_report,
        write_store_report,
    )

    if args.suite == "obs":
        report, extra = run_obs_bench_suite(quick=args.quick)
        print(format_report(report))
        print(
            f"\nobs-on overhead: {extra['overhead_pct']:.2f} % "
            f"({'within' if extra['within_target'] else 'OVER'} the "
            f"{extra['overhead_target_pct']:.0f} % target)"
        )
        path = write_obs_report(report, extra, args.output or DEFAULT_OBS_OUTPUT)
    elif args.suite == "faults":
        report, extra = run_fault_bench_suite(quick=args.quick)
        print(format_report(report))
        path = write_fault_report(report, extra, args.output or DEFAULT_FAULTS_OUTPUT)
    elif args.suite == "pool":
        report, extra = run_pool_bench_suite(quick=args.quick)
        print(format_report(report))
        path = write_pool_report(report, extra, args.output or DEFAULT_POOL_OUTPUT)
    elif args.suite == "store":
        report, extra = run_store_bench_suite(quick=args.quick)
        print(format_report(report))
        path = write_store_report(report, extra, args.output or DEFAULT_STORE_OUTPUT)
    elif args.suite == "shards":
        report = run_shard_bench_suite(quick=args.quick)
        print(format_report(report))
        path = write_shard_report(report, args.output or DEFAULT_SHARD_OUTPUT)
    elif args.suite == "fleet":
        report = run_fleet_bench_suite(quick=args.quick)
        print(format_report(report, targets=FLEET_SPEEDUP_TARGETS))
        path = write_fleet_report(report, args.output or DEFAULT_FLEET_OUTPUT)
    else:
        report = run_bench_suite(quick=args.quick)
        print(format_report(report))
        path = write_report(report, args.output or DEFAULT_OUTPUT)
    print(f"\nwrote {path}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    import time

    from repro.errors import ExperimentError

    cache = ResultCache(args.cache_dir)
    if args.action == "path":
        print(cache.root)
        return 0
    if args.action == "info":
        stats = cache.stats()
        print(f"cache directory : {cache.root}")
        print(f"entries         : {stats.entries}")
        print(f"size            : {stats.total_bytes / 1e6:.2f} MB")
        return 0
    if args.action == "list":
        entries = cache.entries()
        now = time.time()
        for entry in entries:
            age_days = max(0.0, now - entry.modified) / 86_400.0
            print(
                f"{entry.key[:16]}  {entry.size_bytes / 1e3:9.1f} kB  "
                f"{age_days:7.1f} d old"
            )
        total = sum(entry.size_bytes for entry in entries)
        print(f"{len(entries)} entries, {total / 1e6:.2f} MB under {cache.root}")
        return 0
    if args.action == "prune":
        if args.keep_latest is None and args.max_age_days is None:
            raise ExperimentError(
                "cache prune needs --keep-latest and/or --max-age-days"
            )
        before = cache.stats()
        removed = cache.prune(
            keep_latest=args.keep_latest,
            max_age_days=args.max_age_days,
            dry_run=args.dry_run,
        )
        if args.dry_run:
            print(
                f"dry run: would prune {removed} of {before.entries} cached "
                f"results from {cache.root}"
            )
            return 0
        after = cache.stats()
        freed = before.total_bytes - after.total_bytes
        print(
            f"pruned {removed} cached results ({freed / 1e6:.2f} MB) from "
            f"{cache.root}; {after.entries} entries remain"
        )
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached results from {cache.root}")
        return 0
    raise AssertionError(f"unhandled cache action {args.action!r}")


# ---------------------------------------------------------------------------
# Policy lifecycle subcommands
# ---------------------------------------------------------------------------


def _policy_store(args: argparse.Namespace):
    from repro.policies import PolicyStore

    return PolicyStore(args.policy_dir)


def _cmd_policy_train(args: argparse.Namespace) -> int:
    from repro.policies import train_policy

    store = _policy_store(args)
    policy_id, result = train_policy(
        args.scenario,
        store=store,
        num_frames=args.frames,
        seed=args.seed,
        method=args.method,
        resume=args.resume,
    )
    if args.quiet:
        print(policy_id)
        return 0
    print(
        f"trained {result.policy_name} on scenario {args.scenario!r}"
        + (f" (resumed from {store.resolve(args.resume)[:12]})" if args.resume else "")
    )
    print(_summary_line("training episode", result.metrics))
    print(f"policy id: {policy_id}")
    print(f"stored in: {store.root}")
    return 0


def _cmd_policy_list(args: argparse.Namespace) -> int:
    store = _policy_store(args)
    records = store.list()
    for record in records:
        lineage = f" <- {record.parent[:12]}" if record.parent else ""
        scenario = record.train_scenario or "-"
        print(
            f"{record.policy_id[:16]}  {record.method:<22s} "
            f"{scenario:<26s} {record.size_bytes / 1e3:8.1f} kB{lineage}"
        )
    print(f"{len(records)} policies under {store.root}")
    return 0


def _cmd_policy_show(args: argparse.Namespace) -> int:
    import json

    store = _policy_store(args)
    record = store.record(args.id)
    print(json.dumps(record.metadata, indent=2, sort_keys=True))
    lineage = store.lineage(record.policy_id)
    if len(lineage) > 1:
        print("lineage: " + " <- ".join(pid[:12] for pid in lineage))
    return 0


def _cmd_policy_export(args: argparse.Namespace) -> int:
    store = _policy_store(args)
    destination = store.export(args.id, args.path)
    print(f"exported {store.resolve(args.id)[:16]} to {destination}")
    return 0


def _cmd_policy_import(args: argparse.Namespace) -> int:
    store = _policy_store(args)
    policy_id = store.import_checkpoint(args.path)
    print(f"imported {args.path} as {policy_id}")
    return 0


def _cmd_policy_eval_matrix(args: argparse.Namespace) -> int:
    from repro.analysis.tables import generalization_matrix_table
    from repro.policies import run_generalization_matrix

    store = _policy_store(args)
    runtime = ExperimentRuntime(max_workers=args.workers, cache=_cache_from(args))

    def progress(done: int, total: int, job, hit: bool) -> None:
        status = "cached" if hit else "ran"
        print(
            f"  [{done}/{total}] {status:>6s}  {job.method[:22]} on "
            f"{job.setting.device}/{job.setting.dataset}",
            flush=True,
        )

    matrix = run_generalization_matrix(
        args.policies,
        scenarios=list(args.scenarios) if args.scenarios else None,
        num_frames=args.frames,
        runtime=runtime,
        store=store,
        progress=progress if not args.quiet else None,
    )
    print(
        f"eval-matrix: {len(matrix.policies)} policies x "
        f"{len(matrix.scenarios)} scenarios — "
        f"{matrix.cache_hits} cache hits, {matrix.executed} executed"
    )
    print()
    print(generalization_matrix_table(matrix))
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run Lotus reproduction experiments through the cached runtime.",
    )
    parser.add_argument(
        "--version", action="version", version=__version__,
        help="print the repro package version and exit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    # Recorded for main()'s unknown-command pre-scan (avoids poking at
    # argparse internals there).
    parser.repro_commands = subparsers.choices  # type: ignore[attr-defined]

    run = subparsers.add_parser(
        "run", help="run one experiment cell", description=_cmd_run.__doc__
    )
    _add_cell_arguments(run, plural=False)
    _add_cache_arguments(run)
    run.add_argument("--no-cache", action="store_true", help="bypass the result cache")
    run.add_argument(
        "--obs", action="store_true",
        help="collect obs metrics/spans for this run (same as REPRO_OBS=1) "
        "and print the summary",
    )
    run.set_defaults(func=_cmd_run)

    sweep = subparsers.add_parser(
        "sweep", help="run a grid of cells concurrently with caching"
    )
    _add_cell_arguments(sweep, plural=True)
    _add_cache_arguments(sweep)
    sweep.add_argument("--no-cache", action="store_true", help="bypass the result cache")
    sweep.add_argument(
        "--workers", type=int, default=None,
        help=f"worker processes (default: REPRO_WORKERS or {default_worker_count()})",
    )
    sweep.add_argument(
        "--steady", action="store_true",
        help="report steady-state (second-half) metrics instead of whole-episode",
    )
    sweep.add_argument("--quiet", action="store_true", help="suppress per-job progress")
    sweep.set_defaults(func=_cmd_sweep)

    fleet = subparsers.add_parser(
        "fleet",
        help="run one cell (or a scenario) as N vectorized lock-step "
        "sessions, optionally sharded over worker processes",
    )
    fleet.add_argument(
        "action", nargs="?", choices=("run",), default=None,
        help="optional action: `fleet run [SCENARIO] --shards N` (bare "
        "`fleet` with cell flags is equivalent to `fleet run`)",
    )
    fleet.add_argument(
        "scenario", nargs="?", default=None,
        help="registered scenario name to run sharded (cell flags other "
        "than --sessions/--frames/--shards are ignored)",
    )
    _add_cell_arguments(fleet, plural=False)
    fleet.add_argument(
        "--sessions", type=int, default=None,
        help="fleet size N (one session per seed, seeds seed..seed+N-1; "
        "default: 64 for cells, the scenario's own total for scenarios)",
    )
    fleet.add_argument(
        "--shards", type=int, default=1,
        help="split the fleet across this many worker processes; the "
        "re-interleaved trace is byte-identical to --shards 1",
    )
    fleet.add_argument(
        "--per-session", action="store_true",
        help="print one summary line per session in addition to the aggregate",
    )
    fleet.add_argument(
        "--faults", default=None, metavar="PLAN.json",
        help="scenario mode: inject the faults of this serialised FaultPlan",
    )
    fleet.add_argument(
        "--supervised", action="store_true",
        help="scenario mode: run shards under the crash-recovering "
        "supervisor (workers checkpoint periodically and restart from "
        "their latest checkpoint on death, bit-identically)",
    )
    fleet.add_argument(
        "--checkpoint-every", type=int, default=25, metavar="N",
        help="supervised mode: frames between spooled checkpoints (default 25)",
    )
    fleet.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the degraded-operation metrics as JSON (supervised or "
        "faulted scenario runs)",
    )
    fleet.add_argument(
        "--obs", action="store_true",
        help="collect obs metrics/spans for this run (same as REPRO_OBS=1) "
        "and print the summary",
    )
    fleet.set_defaults(func=_cmd_fleet, frames=None)

    scenario = subparsers.add_parser(
        "scenario",
        help="list, inspect and run declarative scenarios (incl. "
        "heterogeneous fleets)",
    )
    scenario_actions = scenario.add_subparsers(dest="action", required=True)
    scenario_list = scenario_actions.add_parser(
        "list", help="list the registered scenario library"
    )
    scenario_list.add_argument(
        "--verbose", action="store_true", help="include scenario descriptions"
    )
    scenario_list.set_defaults(func=_cmd_scenario_list)
    scenario_show = scenario_actions.add_parser(
        "show", help="print a scenario's JSON spec"
    )
    scenario_show.add_argument("name", help="registered scenario name")
    scenario_show.set_defaults(func=_cmd_scenario_show)
    scenario_run = scenario_actions.add_parser(
        "run", help="run a scenario on the grouped fleet engine"
    )
    scenario_run.add_argument("name", help="registered scenario name")
    scenario_run.add_argument(
        "--sessions", type=int, default=None,
        help="total session count (default: the scenario's own)",
    )
    scenario_run.add_argument(
        "--frames", type=int, default=None,
        help="episode length override applied to every member",
    )
    scenario_run.add_argument(
        "--per-session", action="store_true",
        help="print one summary line per session in addition to the groups",
    )
    scenario_run.add_argument(
        "--faults", default=None, metavar="PLAN.json",
        help="inject the faults of this serialised FaultPlan into the run",
    )
    scenario_run.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the degraded-operation metrics as JSON (faulted runs)",
    )
    scenario_run.add_argument(
        "--obs", action="store_true",
        help="collect obs metrics/spans for this run (same as REPRO_OBS=1) "
        "and print the summary",
    )
    scenario_run.set_defaults(func=_cmd_scenario_run)

    report = subparsers.add_parser(
        "report", help="render tables from cached results only (no execution)"
    )
    _add_cell_arguments(report, plural=True)
    _add_cache_arguments(report)
    report.add_argument(
        "--steady", action="store_true",
        help="report steady-state (second-half) metrics instead of whole-episode",
    )
    report.set_defaults(func=_cmd_report)

    devices = subparsers.add_parser(
        "devices", help="list the registered device models"
    )
    devices.set_defaults(func=_cmd_devices)

    detectors = subparsers.add_parser(
        "detectors", help="list the registered detector cost models"
    )
    detectors.set_defaults(func=_cmd_detectors)

    cache = subparsers.add_parser(
        "cache", help="inspect, list, prune or clear the result cache"
    )
    cache.add_argument(
        "action", choices=("info", "list", "prune", "clear", "path"),
        help="info: totals; list: per-entry sizes/ages; prune: delete old "
        "entries; clear: delete everything; path: print the directory",
    )
    cache.add_argument(
        "--keep-latest", type=int, default=None,
        help="prune: keep only the N most recently written entries",
    )
    cache.add_argument(
        "--max-age-days", type=float, default=None,
        help="prune: delete entries older than D days",
    )
    cache.add_argument(
        "--dry-run", action="store_true",
        help="prune: report what would be removed without deleting anything",
    )
    _add_cache_arguments(cache)
    cache.set_defaults(func=_cmd_cache)

    policy = subparsers.add_parser(
        "policy",
        help="policy lifecycle: train into the zoo, inspect it, deploy "
        "frozen checkpoints, run the generalization eval-matrix",
    )
    policy_actions = policy.add_subparsers(dest="action", required=True)

    def _add_policy_dir(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--policy-dir", default=None,
            help="policy store directory (default: REPRO_POLICY_DIR or "
            "~/.cache/repro-lotus/policies)",
        )

    policy_train = policy_actions.add_parser(
        "train", help="train a scenario's learning method and store the checkpoint"
    )
    policy_train.add_argument("--scenario", required=True, help="registered scenario name")
    policy_train.add_argument(
        "--frames", type=int, default=None,
        help="training episode length override (default: the scenario's)",
    )
    policy_train.add_argument(
        "--seed", type=int, default=None, help="base seed override"
    )
    policy_train.add_argument(
        "--method", default=None,
        help="method override (must be a learning method: lotus variants, "
        "ztt); cannot be combined with --resume",
    )
    policy_train.add_argument(
        "--resume", default=None, metavar="ID",
        help="continue training from a stored checkpoint (records lineage; "
        "the checkpoint fixes the method and device geometry)",
    )
    policy_train.add_argument(
        "--quiet", action="store_true",
        help="print only the resulting policy id (for scripting)",
    )
    _add_policy_dir(policy_train)
    policy_train.set_defaults(func=_cmd_policy_train)

    policy_list = policy_actions.add_parser("list", help="list the policy zoo")
    _add_policy_dir(policy_list)
    policy_list.set_defaults(func=_cmd_policy_list)

    policy_show = policy_actions.add_parser(
        "show", help="print a stored policy's metadata and lineage"
    )
    policy_show.add_argument("id", help="policy id (full or unique prefix)")
    _add_policy_dir(policy_show)
    policy_show.set_defaults(func=_cmd_policy_show)

    policy_export = policy_actions.add_parser(
        "export", help="copy a checkpoint file out of the store"
    )
    policy_export.add_argument("id", help="policy id (full or unique prefix)")
    policy_export.add_argument("path", help="destination file or directory")
    _add_policy_dir(policy_export)
    policy_export.set_defaults(func=_cmd_policy_export)

    policy_import = policy_actions.add_parser(
        "import", help="verify an external checkpoint file and add it to the store"
    )
    policy_import.add_argument("path", help="checkpoint file to import")
    _add_policy_dir(policy_import)
    policy_import.set_defaults(func=_cmd_policy_import)

    policy_matrix = policy_actions.add_parser(
        "eval-matrix",
        help="evaluate M frozen policies x N scenarios on the cached runtime",
    )
    policy_matrix.add_argument(
        "--policies", type=_split, required=True,
        help="comma-separated policy ids (full or unique prefixes)",
    )
    policy_matrix.add_argument(
        "--scenarios", type=_split, default=None,
        help="comma-separated scenario names (default: every scalar "
        "scenario in the registry)",
    )
    policy_matrix.add_argument(
        "--frames", type=int, default=None,
        help="evaluation episode length override applied to every cell",
    )
    policy_matrix.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for uncached cells (default: 1)",
    )
    policy_matrix.add_argument("--quiet", action="store_true", help="suppress per-cell progress")
    policy_matrix.add_argument("--no-cache", action="store_true", help="bypass the result cache")
    _add_cache_arguments(policy_matrix)
    _add_policy_dir(policy_matrix)
    policy_matrix.set_defaults(func=_cmd_policy_eval_matrix)

    obs = subparsers.add_parser(
        "obs",
        help="inspect recorded observability runs (written by --obs / "
        "REPRO_OBS=1)",
    )
    obs_actions = obs.add_subparsers(dest="action", required=True)
    obs_list = obs_actions.add_parser(
        "list", help="list recorded obs runs, oldest first"
    )
    obs_list.add_argument(
        "--obs-dir", default=None,
        help="obs run directory (default: REPRO_OBS_DIR or <cache>/obs)",
    )
    obs_list.set_defaults(func=_cmd_obs)
    obs_report = obs_actions.add_parser(
        "report", help="render one run's spans, counters and exact percentiles"
    )
    obs_report.add_argument(
        "--run", default=None, metavar="ID",
        help="run id to render (default: the latest run)",
    )
    obs_report.add_argument(
        "--obs-dir", default=None,
        help="obs run directory (default: REPRO_OBS_DIR or <cache>/obs)",
    )
    obs_report.set_defaults(func=_cmd_obs)

    bench = subparsers.add_parser(
        "bench",
        help="run a perf microbenchmark suite and write BENCH_*.json",
    )
    bench.add_argument(
        "--suite",
        choices=("rl", "fleet", "shards", "faults", "store", "pool", "obs"),
        default="rl",
        help="which suite to run: the RL hot path (BENCH_PR2.json), the "
        "fleet engine (BENCH_PR3.json), shard scaling (BENCH_PR6.json), "
        "fault tolerance (BENCH_PR7.json), the trace store "
        "(BENCH_PR8.json), the persistent worker pool (BENCH_PR9.json) "
        "or the obs overhead suite (BENCH_PR10.json)",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: fewer iterations, shorter sessions",
    )
    bench.add_argument(
        "--output", default=None,
        help="report path (default: the suite's BENCH_*.json in the current "
        "directory)",
    )
    bench.set_defaults(func=_cmd_bench)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Library errors (unknown device/method/dataset, invalid frame counts,
    ...) and unknown top-level subcommands are reported as a one-line
    message instead of a traceback or a bare argparse usage dump (nested
    actions, e.g. ``policy <action>``, keep argparse's usage output, which
    lists the valid choices).
    """
    arguments = list(argv) if argv is not None else sys.argv[1:]
    parser = build_parser()
    commands = tuple(getattr(parser, "repro_commands", ()))
    first = next((a for a in arguments if not a.startswith("-")), None)
    if first is not None and first not in commands:
        print(
            f"error: unknown command {first!r}; available commands: "
            f"{', '.join(commands)}",
            file=sys.stderr,
        )
        return 2
    args = parser.parse_args(arguments)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
