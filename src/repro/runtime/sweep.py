"""Sweep specification and expansion.

A :class:`SweepSpec` describes a grid of experiment cells — devices ×
detectors × datasets × methods × seeds — and expands it into the flat,
deterministic list of :class:`~repro.runtime.job.ExperimentJob` objects the
engine schedules.  The expansion order is row-major over (device, detector,
dataset, seed, method), matching the order the paper's tables are read in,
and is stable so that serial and parallel runs, progress displays and cache
walks all agree on job numbering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.training import SessionResult
from repro.errors import ExperimentError
from repro.runtime.job import ExperimentJob


@dataclass(frozen=True)
class SweepSpec:
    """A grid of experiment cells to evaluate.

    Attributes:
        devices: Device names (see :func:`repro.hardware.available_devices`).
        detectors: Detector names (see
            :func:`repro.detection.available_detectors`).
        datasets: Dataset names (see :func:`repro.workload.available_datasets`).
        methods: Method names understood by
            :func:`~repro.analysis.experiments.make_policy`.
        seeds: Random seeds; one job is emitted per seed.
        num_frames: Evaluation episode length per cell.
        training_frames: Online-training frames before each evaluation (used
            by the learning-based methods, skipped by governors).
        ambient_temperature_c: Constant ambient temperature of every cell.
        latency_constraint_ms: Explicit latency constraint; ``None`` derives
            the per-(device, detector, dataset) default.
    """

    devices: Tuple[str, ...] = ("jetson-orin-nano",)
    detectors: Tuple[str, ...] = ("faster_rcnn",)
    datasets: Tuple[str, ...] = ("kitti",)
    methods: Tuple[str, ...] = ("default", "ztt", "lotus")
    seeds: Tuple[int, ...] = (0,)
    num_frames: int = 1000
    training_frames: int = 0
    ambient_temperature_c: float = 25.0
    latency_constraint_ms: float | None = None

    def __post_init__(self) -> None:
        for name, values in (
            ("devices", self.devices),
            ("detectors", self.detectors),
            ("datasets", self.datasets),
            ("methods", self.methods),
            ("seeds", self.seeds),
        ):
            if not values:
                raise ExperimentError(f"sweep requires at least one entry in {name!r}")
        if self.num_frames <= 0:
            raise ExperimentError("num_frames must be positive")

    @property
    def size(self) -> int:
        """Number of jobs the sweep expands to."""
        return (
            len(self.devices)
            * len(self.detectors)
            * len(self.datasets)
            * len(self.seeds)
            * len(self.methods)
        )

    def expand(self) -> List[ExperimentJob]:
        """The sweep's jobs, in deterministic row-major order."""
        from repro.analysis.experiments import ExperimentSetting

        jobs: List[ExperimentJob] = []
        for device in self.devices:
            for detector in self.detectors:
                for dataset in self.datasets:
                    for seed in self.seeds:
                        setting = ExperimentSetting(
                            device=device,
                            detector=detector,
                            dataset=dataset,
                            num_frames=self.num_frames,
                            training_frames=self.training_frames,
                            latency_constraint_ms=self.latency_constraint_ms,
                            ambient_temperature_c=self.ambient_temperature_c,
                            seed=seed,
                        )
                        for method in self.methods:
                            jobs.append(ExperimentJob(setting=setting, method=method))
        return jobs


def sweep_metrics_map(
    jobs: Sequence[ExperimentJob],
    results: Sequence[SessionResult],
    device: str,
    use_steady: bool = False,
) -> Dict[str, Dict[str, Dict[str, object]]]:
    """Regroup flat sweep results into the table-renderer layout.

    Returns the nested ``detector -> method -> dataset -> metrics`` mapping
    consumed by :func:`repro.analysis.tables.comparison_table`, restricted
    to one device.  When a cell was run with several seeds the metrics of
    the *first* seed in job order are reported (the analysis layer's
    statistics helpers are the right tool for cross-seed aggregation).
    """
    if len(jobs) != len(results):
        raise ExperimentError("jobs and results must align one-to-one")
    table: Dict[str, Dict[str, Dict[str, object]]] = {}
    for job, result in zip(jobs, results):
        if job.setting.device != device:
            continue
        metrics = result.steady_metrics if use_steady else result.metrics
        per_method = table.setdefault(job.setting.detector, {}).setdefault(job.method, {})
        per_method.setdefault(job.setting.dataset, metrics)
    return table
