"""Sharded multi-core fleet execution: one fleet, many worker processes.

The fleet engine (:mod:`repro.runtime.fleet`) advances every session of a
scenario inside one NumPy program; this module splits that program across
the process-pool runtime.  A scenario's session assignments are partitioned
into contiguous *shards*, each shard runs as an independent grouped fleet
episode in its own worker process, and the per-shard columnar traces are
re-interleaved (via the grouped-partition machinery of
:mod:`repro.env.fleet`) into a single :class:`~repro.env.fleet.FleetTrace`
in global session order.

Because sessions never interact inside the engine — every session's
streams, proposal noise, device column and policy state are its own — the
re-interleaved trace is **byte-identical** to the unsharded run, for any
shard count (``tests/test_fleet_sharding.py`` enforces this against every
registered scenario).

The one coupling in the whole system is the fleet-trained
``lotus-fleet`` agent: one shared Q-network learns from *all* of its
member's sessions, so splitting such a member would change its batch
composition and replay contents.  The shard planner therefore treats each
maximal run of consecutive same-member ``lotus-fleet`` sessions as an
*atom* that is never divided: scenarios containing fleet-trained members
still shard bit-exactly (whole atoms move between workers), while a fleet
that is one big ``lotus-fleet`` member degrades to a single shard.  The
homogeneous cell entry point (:func:`run_sharded_fleet`) refuses
``lotus-fleet`` with more than one shard outright, with a typed
:class:`~repro.errors.ShardError`.
"""

from __future__ import annotations

import math
import os
import pickle
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import FaultError, ShardError
from repro.obs import bus as _obs
from repro.core.training import SessionResult, session_result_from_trace
from repro.env.fleet import (
    _FRAME_RESULT_ARRAY_FIELDS,
    FleetFrameResult,
    FleetSessionGroup,
    FleetTrace,
    _scatter_frame_results,
    run_fleet_episode,
    run_grouped_fleet_episode,
    validate_session_partition,
)
from repro.store import FleetTraceWriter, MappedFleetTrace
from repro.faults.plan import WorkerCrash
from repro.runtime.pool import (
    PoolTask,
    acquire_pool,
    fleet_shard_fingerprint,
    scenario_shard_fingerprint,
)
from repro.runtime.fleet import (
    FleetRunResult,
    _group_policy,
    _session_histories,
    _session_policy_names,
    collect_degraded,
    make_fleet_environment,
    make_fleet_policy,
    make_group_environment,
)

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.analysis.experiments import ExperimentSetting
    from repro.env.ambient import AmbientProfile
    from repro.scenarios import FleetScenario, ScenarioSpec, SessionAssignment


# ---------------------------------------------------------------------------
# Shard planning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardPlan:
    """One shard of a fleet run: a contiguous block of global sessions.

    Attributes:
        index: Shard number (``0..num_shards-1`` after empty shards are
            dropped).
        start: First global session index of the block (inclusive).
        stop: One past the last global session index (exclusive).
    """

    index: int
    start: int
    stop: int

    @property
    def num_sessions(self) -> int:
        """Sessions in this shard."""
        return self.stop - self.start

    @property
    def session_indices(self) -> np.ndarray:
        """Global session indices of the shard, in order."""
        return np.arange(self.start, self.stop, dtype=np.int64)


def _forbidden_cuts(assignments: Sequence["SessionAssignment"]) -> List[bool]:
    """Which inter-session boundaries must not be cut by a shard edge.

    ``result[i]`` forbids a cut between global sessions ``i`` and ``i+1``.
    A maximal run of consecutive same-member ``lotus-fleet`` assignments
    (consecutive in their device/detector group's local order, which is the
    global order filtered to the group) trains one shared agent over the
    whole run; every global boundary the run spans is pinned so the run
    lands in one shard intact.
    """
    n = len(assignments)
    forbidden = [False] * max(n - 1, 0)
    last_in_group: Dict[Tuple[str, str], Tuple[int, int, str]] = {}
    for i, assignment in enumerate(assignments):
        key = (assignment.spec.device, assignment.spec.detector)
        previous = last_in_group.get(key)
        if previous is not None:
            prev_index, prev_member, prev_method = previous
            if (
                prev_method == "lotus-fleet"
                and assignment.spec.method == "lotus-fleet"
                and prev_member == assignment.member_index
            ):
                for j in range(prev_index, i):
                    forbidden[j] = True
        last_in_group[key] = (i, assignment.member_index, assignment.spec.method)
    return forbidden


def plan_shards(
    assignments: Sequence["SessionAssignment"], num_shards: int
) -> List[ShardPlan]:
    """Split session assignments into at most ``num_shards`` contiguous shards.

    The split is deterministic and balanced by session count; indivisible
    ``lotus-fleet`` atoms (see :func:`_forbidden_cuts`) are never cut, and
    when there are fewer divisible segments (or sessions) than requested
    shards, fewer shards are returned instead of empty ones — asking for
    more shards than sessions is not an error.
    """
    if num_shards < 1:
        raise ShardError(f"num_shards must be >= 1, got {num_shards}")
    n = len(assignments)
    if n == 0:
        raise ShardError("cannot shard an empty fleet")
    forbidden = _forbidden_cuts(assignments)
    bounds = [0] + [i + 1 for i in range(n - 1) if not forbidden[i]] + [n]
    segments = list(zip(bounds[:-1], bounds[1:]))

    shards: List[ShardPlan] = []
    i = 0
    for k in range(num_shards):
        if i >= len(segments):
            break
        remaining_shards = num_shards - k
        remaining_sessions = n - segments[i][0]
        target = math.ceil(remaining_sessions / remaining_shards)
        start, stop = segments[i]
        i += 1
        while i < len(segments) and stop - start < target:
            stop = segments[i][1]
            i += 1
        shards.append(ShardPlan(index=k, start=start, stop=stop))
    if i < len(segments):
        # Rounding left a tail of segments; fold it into the last shard.
        last = shards[-1]
        shards[-1] = ShardPlan(index=last.index, start=last.start, stop=n)
    return shards


# ---------------------------------------------------------------------------
# Worker entry points (module-level so the process pool can pickle them)
# ---------------------------------------------------------------------------


def _shard_session_groups(
    shard_assignments: Sequence["SessionAssignment"],
    num_frames: int,
    base: int,
) -> Tuple[List[FleetSessionGroup], List[Tuple[Tuple[str, str], list]]]:
    """Build the grouped sub-fleets of one shard, with shard-local indices.

    Mirrors the grouping of :func:`repro.runtime.fleet.run_fleet_scenario`
    restricted to the shard's assignment slice: same (device, detector)
    keying in first-appearance order, same per-group environment and policy
    construction — so each session's behaviour is exactly its behaviour in
    the unsharded run (``base`` rebases global indices onto the shard).
    """
    grouped: Dict[Tuple[str, str], list] = {}
    for assignment in shard_assignments:
        key = (assignment.spec.device, assignment.spec.detector)
        grouped.setdefault(key, []).append(assignment)
    session_groups: List[FleetSessionGroup] = []
    for (device_name, detector_name), group_assignments in grouped.items():
        environment = make_group_environment(
            device_name, detector_name, group_assignments
        )
        policy = _group_policy(environment, group_assignments, num_frames)
        session_groups.append(
            FleetSessionGroup(
                environment=environment,
                policy=policy,
                session_indices=tuple(a.index - base for a in group_assignments),
            )
        )
    return session_groups, list(grouped.items())


def _spool_store_path(spool_dir: str, start: int, stop: int) -> Path:
    return Path(spool_dir) / f"shard-{start:06d}-{stop:06d}"


def _collect_shard_histories(
    session_groups: Sequence[FleetSessionGroup],
    grouped: Sequence[Tuple[Tuple[str, str], list]],
    start: int,
    count: int,
) -> Tuple[List[List[float]], List[List[float]], List[str]]:
    """Per-session loss/reward histories and policy names of one shard."""
    losses: List[List[float]] = [[] for _ in range(count)]
    rewards: List[List[float]] = [[] for _ in range(count)]
    names: List[str] = [""] * count
    for group, (_, group_assignments) in zip(session_groups, grouped):
        group_losses, group_rewards = _session_histories(
            group.policy, group.environment.num_sessions
        )
        group_names = _session_policy_names(
            group.policy, group.environment.num_sessions
        )
        for local, assignment in enumerate(group_assignments):
            losses[assignment.index - start] = group_losses[local]
            rewards[assignment.index - start] = group_rewards[local]
            names[assignment.index - start] = group_names[local]
    return losses, rewards, names


def _build_scenario_shard(
    scenario: "FleetScenario", num_sessions: int, start: int, stop: int
):
    """Construct one scenario shard's grouped sub-fleets (no episode run).

    The build half of :func:`_run_scenario_shard`, split out so the
    persistent pool (:mod:`repro.runtime.pool`) can pin the constructed
    groups and skip this step on a warm fingerprint hit.
    """
    with _obs.span("shard.build", kind="scenario", start=start, stop=stop):
        assignments = scenario.session_assignments(num_sessions)[start:stop]
        frames = scenario.num_frames
        session_groups, grouped = _shard_session_groups(assignments, frames, start)
    return session_groups, grouped, frames


def _execute_scenario_shard(
    session_groups,
    grouped,
    frames: int,
    start: int,
    stop: int,
    spool_dir: Optional[str],
):
    """Run one (pre-built) scenario shard's episode and collect histories.

    With ``spool_dir`` set (the pooled path) the shard sinks its frames
    incrementally into a columnar chunk store under that directory and
    returns only the manifest path, so traces cross the process boundary
    through ``mmap``-able files instead of pickled frame objects.  Without
    it (inline single-shard runs) the in-memory :class:`FleetTrace` is
    returned directly.
    """
    count = stop - start
    with _obs.span("shard.run", kind="scenario", start=start, stop=stop):
        if spool_dir is None:
            payload = run_grouped_fleet_episode(session_groups, frames)
        else:
            writer = FleetTraceWriter(_spool_store_path(spool_dir, start, stop), count)
            run_grouped_fleet_episode(session_groups, frames, sink=writer)
            payload = str(writer.close())
        losses, rewards, names = _collect_shard_histories(
            session_groups, grouped, start, count
        )
    return payload, losses, rewards, names


def _run_scenario_shard(
    scenario: "FleetScenario",
    num_sessions: int,
    start: int,
    stop: int,
    spool_dir: Optional[str] = None,
):
    """Run one scenario shard; returns its trace and per-session histories.

    Executed inside a worker process (or inline for single-shard runs).
    The scenario is re-resolved in the worker — assignment resolution is
    deterministic — and the shard runs the global sessions ``start..stop-1``
    as its own grouped fleet episode.
    """
    session_groups, grouped, frames = _build_scenario_shard(
        scenario, num_sessions, start, stop
    )
    return _execute_scenario_shard(
        session_groups, grouped, frames, start, stop, spool_dir
    )


def _build_fleet_shard(
    setting: "ExperimentSetting",
    method: str,
    offset: int,
    count: int,
    ambient: "AmbientProfile | None",
):
    """Construct one homogeneous-cell shard's environment and policy.

    The shard environment is the fleet environment of the base setting with
    its seed advanced by ``offset``: session ``i`` of the shard gets stream
    generator ``default_rng(seed + offset + i)`` and proposal generator
    ``default_rng(seed + offset + i + 1)`` — exactly sessions
    ``offset..offset+count-1`` of the full fleet (and of the scalar runs).
    """
    with _obs.span("shard.build", kind="fleet", offset=offset, count=count):
        shard_setting = setting.with_overrides(seed=setting.seed + offset)
        environment = make_fleet_environment(shard_setting, count, ambient=ambient)
        policy = make_fleet_policy(
            method, environment, setting.num_frames, seed=shard_setting.seed
        )
    return environment, policy


def _execute_fleet_shard(
    environment,
    policy,
    num_frames: int,
    offset: int,
    count: int,
    spool_dir: Optional[str],
):
    """Run one (pre-built) homogeneous-cell shard's episode.

    As with :func:`_execute_scenario_shard`, ``spool_dir`` switches the
    return payload from an in-memory trace to the manifest path of a
    spooled columnar chunk store.
    """
    with _obs.span("shard.run", kind="fleet", offset=offset, count=count):
        if spool_dir is None:
            payload = run_fleet_episode(environment, policy, num_frames)
        else:
            writer = FleetTraceWriter(
                _spool_store_path(spool_dir, offset, offset + count), count
            )
            run_fleet_episode(environment, policy, num_frames, sink=writer)
            payload = str(writer.close())
        losses, rewards = _session_histories(policy, count)
        names = _session_policy_names(policy, count)
    return payload, losses, rewards, names, policy.name


def _run_fleet_shard(
    setting: "ExperimentSetting",
    method: str,
    offset: int,
    count: int,
    ambient: "AmbientProfile | None",
    spool_dir: Optional[str] = None,
):
    """Run one homogeneous-cell shard: sessions ``offset..offset+count-1``."""
    environment, policy = _build_fleet_shard(setting, method, offset, count, ambient)
    return _execute_fleet_shard(
        environment, policy, setting.num_frames, offset, count, spool_dir
    )


# ---------------------------------------------------------------------------
# Re-interleave
# ---------------------------------------------------------------------------


def _as_shard_trace(entry):
    """Normalise one shard payload into a columnar trace-like.

    Accepts a manifest path (opened as a zero-copy
    :class:`~repro.store.MappedFleetTrace`), any object exposing the
    column-window protocol (``FleetTrace`` or an already-open mapped trace),
    or — for backwards compatibility — a plain list of
    :class:`~repro.env.fleet.FleetFrameResult` frames.
    """
    if isinstance(entry, (str, Path)):
        return MappedFleetTrace(entry), True
    if hasattr(entry, "column_window"):
        return entry, False
    if not entry:
        raise ShardError("shard returned an empty frame list")
    wrapped = FleetTrace(entry[0].num_sessions)
    for frame in entry:
        wrapped.append(frame)
    return wrapped, False


def _interleave_shard_traces(
    shard_traces: Sequence[object],
    shards: Sequence[ShardPlan],
    num_sessions: int,
    block_frames: int = 256,
) -> FleetTrace:
    """Merge per-shard traces into one trace in global session order.

    Shard payloads are columnar trace-likes — in practice the manifest
    paths of spooled chunk stores, opened here as memory-mapped column
    views (see :func:`_as_shard_trace`).  The shard partition is validated
    once, then the merge scatters ``block_frames``-frame column windows
    straight into combined per-frame arrays: no shard trace is ever
    unpickled or materialised frame-object by frame-object, and peak merge
    memory is one block per column rather than every shard's full trace.
    The scatter applies the same partition machinery the grouped episode
    loop uses, so a sharded trace is indistinguishable from (bitwise equal
    to) a single-process one.
    """
    merge_span = _obs.span("shard.merge", shards=len(shards))
    merge_span.__enter__()
    targets = validate_session_partition(
        [shard.session_indices for shard in shards], num_sessions
    )
    normalised = [_as_shard_trace(entry) for entry in shard_traces]
    traces = [trace for trace, _ in normalised]
    try:
        lengths = {len(trace) for trace in traces}
        if len(lengths) != 1:
            raise ShardError(
                f"shards returned unequal frame counts: {sorted(lengths)}"
            )
        num_frames = lengths.pop()
        starts = {trace.start_index for trace in traces}
        if len(starts) != 1:
            raise ShardError(
                f"shard frame indices diverged: starts {sorted(starts)}"
            )
        start_index = starts.pop()
        target_lists = [target.tolist() for target in targets]
        merged = FleetTrace(num_sessions)
        for lo in range(0, num_frames, block_frames):
            hi = min(lo + block_frames, num_frames)
            blocks: Dict[str, np.ndarray] = {}
            for field in _FRAME_RESULT_ARRAY_FIELDS:
                first = traces[0].column_window(field, lo, hi)
                out = np.empty((hi - lo, num_sessions), dtype=first.dtype)
                out[:, targets[0]] = first
                for trace, target in zip(traces[1:], targets[1:]):
                    window = trace.column_window(field, lo, hi)
                    if window.dtype != first.dtype:
                        raise ShardError(
                            f"shard column {field!r} dtypes diverged: "
                            f"{window.dtype} != {first.dtype}"
                        )
                    out[:, target] = window
                blocks[field] = out
            dataset_rows = [[""] * num_sessions for _ in range(hi - lo)]
            for trace, target in zip(traces, target_lists):
                for row, datasets in zip(dataset_rows, trace.datasets_window(lo, hi)):
                    for local, global_index in enumerate(target):
                        row[global_index] = datasets[local]
            for offset in range(hi - lo):
                merged.append(
                    FleetFrameResult(
                        index=start_index + lo + offset,
                        datasets=tuple(dataset_rows[offset]),
                        **{
                            field: blocks[field][offset]
                            for field in _FRAME_RESULT_ARRAY_FIELDS
                        },
                    )
                )
        return merged
    finally:
        for trace, opened in normalised:
            if opened:
                trace.close()
        merge_span.__exit__(None, None, None)


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardedScenarioResult:
    """Outcome of one sharded scenario run.

    Attributes:
        scenario: The (possibly overridden) fleet scenario that ran.
        assignments: Per-session resolution to specs and seeds, global order.
        shards: The contiguous session blocks the fleet was split into.
        sessions: Per-session :class:`SessionResult` records, global order.
        fleet_trace: The re-interleaved columnar trace — byte-identical to
            the unsharded :func:`repro.runtime.fleet.run_fleet_scenario`
            trace of the same scenario.
        elapsed_s: Wall-clock seconds spent running and merging the shards.
    """

    scenario: "FleetScenario"
    assignments: tuple
    shards: Tuple[ShardPlan, ...]
    sessions: Tuple[SessionResult, ...]
    fleet_trace: FleetTrace
    elapsed_s: float

    @property
    def num_shards(self) -> int:
        """Number of (non-empty) shards that actually ran."""
        return len(self.shards)

    @property
    def num_sessions(self) -> int:
        """Total fleet size."""
        return self.fleet_trace.num_sessions

    @property
    def aggregate_frames_per_second(self) -> float:
        """Total frames processed across the fleet per wall-clock second."""
        if self.elapsed_s <= 0:
            return float("inf")
        return self.fleet_trace.total_frames / self.elapsed_s


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def _resolve_scenario(
    scenario: Union["FleetScenario", "ScenarioSpec", str],
    num_frames: int | None = None,
) -> "FleetScenario":
    """Normalise a scenario argument into a (possibly overridden) fleet."""
    from repro.scenarios import FleetMember, FleetScenario, ScenarioSpec, build_scenario

    if isinstance(scenario, str):
        scenario = build_scenario(scenario)
    if isinstance(scenario, ScenarioSpec):
        scenario = FleetScenario(
            name=scenario.name,
            members=(FleetMember(scenario),),
            description=scenario.description,
        )
    if num_frames is not None and num_frames != scenario.num_frames:
        scenario = scenario.with_overrides(
            members=tuple(
                FleetMember(
                    member.spec.with_overrides(num_frames=num_frames), member.weight
                )
                for member in scenario.members
            )
        )
    return scenario


def run_sharded_scenario(
    scenario: Union["FleetScenario", "ScenarioSpec", str],
    num_shards: int,
    num_sessions: int | None = None,
    num_frames: int | None = None,
) -> ShardedScenarioResult:
    """Run a scenario's fleet split across ``num_shards`` worker processes.

    The sharded counterpart of :func:`repro.runtime.fleet.run_scenario`:
    sessions are planned into contiguous shards (:func:`plan_shards`), each
    shard executes the scenario's grouped fleet episode over its own block
    in a separate process, and the results re-interleave into one trace in
    global session order — byte-identical to the unsharded run.  A single
    (planned) shard runs inline with no pool.

    Args:
        scenario: A :class:`~repro.scenarios.FleetScenario`, a single
            :class:`~repro.scenarios.ScenarioSpec`, or a registered name.
        num_shards: Requested shard count (>= 1).  The planner may return
            fewer shards than requested (small fleets, indivisible
            ``lotus-fleet`` atoms); never more.
        num_sessions: Total population override (default: the scenario's).
        num_frames: Episode-length override applied to every member.
    """
    scenario = _resolve_scenario(scenario, num_frames)
    assignments = scenario.session_assignments(num_sessions)
    total = len(assignments)
    shards = tuple(plan_shards(assignments, num_shards))

    run_span = _obs.span(
        "runtime.run_sharded_scenario", shards=len(shards), sessions=total
    )
    run_span.__enter__()
    start_time = time.perf_counter()
    if len(shards) == 1:
        # A single planned shard runs inline and already covers every
        # session in global order: its trace is the fleet trace.
        shard_results = [
            _run_scenario_shard(scenario, total, shards[0].start, shards[0].stop)
        ]
        fleet_trace = shard_results[0][0]
    else:
        spool = tempfile.mkdtemp(prefix="repro-shards-")
        pool, owned = acquire_pool(len(shards))
        try:
            tasks = [
                PoolTask(
                    kind="scenario-shard",
                    args=(scenario, total, shard.start, shard.stop, spool),
                    fingerprint=scenario_shard_fingerprint(
                        scenario, total, shard.start, shard.stop
                    ),
                    shard_index=shard.index,
                )
                for shard in shards
            ]
            shard_results = pool.run_tasks(tasks).results
            fleet_trace = _interleave_shard_traces(
                [payload for payload, _, _, _ in shard_results], shards, total
            )
        finally:
            if owned:
                pool.shutdown()
            shutil.rmtree(spool, ignore_errors=True)
    elapsed_s = time.perf_counter() - start_time
    run_span.__exit__(None, None, None)

    sessions: List[SessionResult] = [None] * total  # type: ignore[list-item]
    for shard, (_, losses, rewards, names) in zip(shards, shard_results):
        for local in range(shard.num_sessions):
            index = shard.start + local
            sessions[index] = session_result_from_trace(
                names[local],
                fleet_trace.session_trace(index),
                losses=losses[local],
                rewards=rewards[local],
            )
    return ShardedScenarioResult(
        scenario=scenario,
        assignments=assignments,
        shards=shards,
        sessions=tuple(sessions),
        fleet_trace=fleet_trace,
        elapsed_s=elapsed_s,
    )


def run_sharded_fleet(
    setting: "ExperimentSetting",
    method: str,
    num_sessions: int,
    num_shards: int,
    ambient: "AmbientProfile | None" = None,
) -> FleetRunResult:
    """Run one homogeneous (setting, method) fleet cell across shards.

    The sharded counterpart of :func:`repro.runtime.fleet.run_fleet`,
    returning the same :class:`~repro.runtime.fleet.FleetRunResult` with a
    byte-identical ``fleet_trace``.  Shard ``k`` owns a contiguous block of
    sessions and rebuilds exactly their environments and policies from the
    block's seed offset; ``lotus-fleet`` (one shared network across the
    whole fleet) cannot be divided and is refused for ``num_shards > 1``.
    """
    if num_shards < 1:
        raise ShardError(f"num_shards must be >= 1, got {num_shards}")
    if num_sessions <= 0:
        raise ShardError("num_sessions must be positive")
    if method == "lotus-fleet" and num_shards > 1:
        raise ShardError(
            "lotus-fleet trains one shared network across the whole fleet and "
            "cannot be split across shards; run with --shards 1, or shard a "
            "scenario whose lotus-fleet members are smaller than the fleet"
        )
    blocks = [
        block
        for block in np.array_split(
            np.arange(num_sessions, dtype=np.int64), min(num_shards, num_sessions)
        )
        if block.size
    ]

    run_span = _obs.span(
        "runtime.run_sharded_fleet", shards=len(blocks), sessions=num_sessions
    )
    run_span.__enter__()
    start_time = time.perf_counter()
    shards = tuple(
        ShardPlan(index=k, start=int(block[0]), stop=int(block[-1]) + 1)
        for k, block in enumerate(blocks)
    )
    if len(blocks) == 1:
        shard_results = [
            _run_fleet_shard(setting, method, 0, num_sessions, ambient)
        ]
        fleet_trace = shard_results[0][0]
    else:
        spool = tempfile.mkdtemp(prefix="repro-shards-")
        pool, owned = acquire_pool(len(blocks))
        try:
            tasks = [
                PoolTask(
                    kind="fleet-shard",
                    args=(
                        setting,
                        method,
                        int(block[0]),
                        int(block.size),
                        ambient,
                        spool,
                    ),
                    fingerprint=fleet_shard_fingerprint(
                        setting, method, int(block[0]), int(block.size), ambient
                    ),
                    shard_index=k,
                )
                for k, block in enumerate(blocks)
            ]
            shard_results = pool.run_tasks(tasks).results
            fleet_trace = _interleave_shard_traces(
                [payload for payload, _, _, _, _ in shard_results],
                shards,
                num_sessions,
            )
        finally:
            if owned:
                pool.shutdown()
            shutil.rmtree(spool, ignore_errors=True)
    elapsed_s = time.perf_counter() - start_time
    run_span.__exit__(None, None, None)

    sessions: List[SessionResult] = []
    for shard, (_, losses, rewards, names, _) in zip(shards, shard_results):
        for local in range(shard.num_sessions):
            index = shard.start + local
            sessions.append(
                session_result_from_trace(
                    names[local],
                    fleet_trace.session_trace(index),
                    losses=losses[local],
                    rewards=rewards[local],
                )
            )
    return FleetRunResult(
        setting=setting,
        method=method,
        num_sessions=num_sessions,
        policy_name=shard_results[0][4],
        sessions=tuple(sessions),
        fleet_trace=fleet_trace,
        elapsed_s=elapsed_s,
    )


# ---------------------------------------------------------------------------
# Supervised execution: crash detection and checkpoint recovery
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RecoveryReport:
    """What the supervisor observed and did about worker deaths.

    Attributes:
        crashes_detected: Worker deaths the supervisor observed (injected
            crashes and real ones look identical: an EOF on the worker's
            pipe).
        restarts: Shard executions that were resubmitted after a death.
        recovered_shards: Indices of shards that completed only after at
            least one restart.
        checkpoint_every: The periodic checkpoint interval (frames) the
            workers spooled at.
        recovery_s: Wall-clock seconds spent re-running shards after the
            first detected death (zero for a clean run).
    """

    crashes_detected: int
    restarts: int
    recovered_shards: Tuple[int, ...]
    checkpoint_every: int
    recovery_s: float


@dataclass(frozen=True)
class SupervisedScenarioResult:
    """Outcome of one supervised (fault-tolerant) sharded scenario run.

    Carries everything :class:`ShardedScenarioResult` does, plus the
    supervisor's :class:`RecoveryReport` and the per-(frame, session)
    degraded mask recorded by fault-injection wrappers (``None`` when the
    scenario carries no fault plan).
    """

    scenario: "FleetScenario"
    assignments: tuple
    shards: Tuple[ShardPlan, ...]
    sessions: Tuple[SessionResult, ...]
    fleet_trace: FleetTrace
    elapsed_s: float
    recovery: RecoveryReport
    degraded: Optional[np.ndarray] = None

    @property
    def num_shards(self) -> int:
        """Number of (non-empty) shards that actually ran."""
        return len(self.shards)

    @property
    def num_sessions(self) -> int:
        """Total fleet size."""
        return self.fleet_trace.num_sessions

    @property
    def aggregate_frames_per_second(self) -> float:
        """Total frames processed across the fleet per wall-clock second."""
        if self.elapsed_s <= 0:
            return float("inf")
        return self.fleet_trace.total_frames / self.elapsed_s


def _checkpoint_write(path: Path, payload: dict) -> None:
    """Atomically pickle a shard checkpoint (write-then-rename)."""
    tmp = path.with_suffix(".tmp")
    with open(tmp, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)


def _run_supervised_shard(
    scenario: "FleetScenario",
    num_sessions: int,
    start: int,
    stop: int,
    shard_index: int,
    spool_dir: str,
    checkpoint_every: int,
    crash_frame: Optional[int],
):
    """Run one scenario shard with periodic checkpoints and crash injection.

    The frame loop mirrors :func:`repro.env.fleet.run_grouped_fleet_episode`
    exactly, but pauses at frame boundaries to spool a checkpoint (the
    environments' and policies' ``state_dict`` snapshots plus the frames
    recorded so far) every ``checkpoint_every`` frames.  When a checkpoint
    for this shard already exists in the spool, the worker resumes from it
    instead of frame 0 — because every state a frame reads is captured, the
    resumed run's remaining frames are bit-identical to an uninterrupted
    one.

    ``crash_frame`` injects a worker death: the process calls ``os._exit``
    at the start of that frame, once — a marker file in the spool keeps the
    restarted worker from crashing again.

    The completed trace is spooled as a columnar chunk store next to the
    checkpoints and only its manifest path is returned, so the supervisor
    merges memory-mapped columns instead of unpickling frame lists.
    """
    run_span = _obs.span("shard.run", kind="supervised", shard=shard_index)
    run_span.__enter__()
    with _obs.span("shard.build", kind="supervised", shard=shard_index):
        assignments = scenario.session_assignments(num_sessions)[start:stop]
        num_frames = scenario.num_frames
        session_groups, grouped = _shard_session_groups(assignments, num_frames, start)
    count = stop - start
    targets = validate_session_partition(
        [group.session_indices for group in session_groups], count
    )
    for group in session_groups:
        group.environment.reset()
        group.policy.reset()

    spool = Path(spool_dir)
    checkpoint_path = spool / f"shard-{shard_index}.ckpt"
    crash_marker = spool / f"shard-{shard_index}.crashed"
    frames: List[FleetFrameResult] = []
    first_frame = 0
    if checkpoint_path.exists():
        with open(checkpoint_path, "rb") as handle:
            payload = pickle.load(handle)
        for group, environment_state, policy_state in zip(
            session_groups, payload["environments"], payload["policies"]
        ):
            group.environment.load_state_dict(environment_state)
            if policy_state is not None:
                group.policy.load_state_dict(policy_state)
        frames = payload["frames"]
        first_frame = payload["frame"]
        _obs.event("checkpoint.restore", shard=shard_index, frame=first_frame)
        _obs.inc("checkpoint.restores")

    for frame in range(first_frame, num_frames):
        if (
            crash_frame is not None
            and frame == crash_frame
            and not crash_marker.exists()
        ):
            crash_marker.write_text(str(frame))
            os._exit(43)
        for group in session_groups:
            observation = group.environment.begin_frame()
            group.environment.apply_decision(group.policy.begin_frame(observation))
        for group in session_groups:
            observation = group.environment.run_first_stage()
            group.environment.apply_decision(group.policy.mid_frame(observation))
        results = []
        for group in session_groups:
            result = group.environment.run_second_stage()
            group.policy.end_frame(result)
            results.append(result)
        frames.append(_scatter_frame_results(results, targets, count))
        completed = frame + 1
        if (
            checkpoint_every > 0
            and completed % checkpoint_every == 0
            and completed < num_frames
        ):
            _checkpoint_write(
                checkpoint_path,
                {
                    "frame": completed,
                    "environments": [
                        group.environment.state_dict() for group in session_groups
                    ],
                    "policies": [
                        group.policy.state_dict()
                        if hasattr(group.policy, "state_dict")
                        else None
                        for group in session_groups
                    ],
                    "frames": frames,
                },
            )
            _obs.event("checkpoint.write", shard=shard_index, frame=completed)
            _obs.inc("checkpoint.writes")

    losses: List[List[float]] = [[] for _ in range(count)]
    rewards: List[List[float]] = [[] for _ in range(count)]
    names: List[str] = [""] * count
    for group, (_, group_assignments) in zip(session_groups, grouped):
        group_losses, group_rewards = _session_histories(
            group.policy, group.environment.num_sessions
        )
        group_names = _session_policy_names(
            group.policy, group.environment.num_sessions
        )
        for local, assignment in enumerate(group_assignments):
            losses[assignment.index - start] = group_losses[local]
            rewards[assignment.index - start] = group_rewards[local]
            names[assignment.index - start] = group_names[local]
    degraded = collect_degraded(session_groups, num_frames, count)

    # Spool the completed trace as a chunk store.  A stale store can exist
    # if this worker's previous incarnation finished but its result was
    # lost when another worker broke the pool; rebuild it from scratch.
    store_dir = spool / f"shard-{shard_index}-trace"
    if store_dir.exists():
        shutil.rmtree(store_dir)
    writer = FleetTraceWriter(store_dir, count)
    for frame_result in frames:
        writer.append(frame_result)
    manifest = writer.close()
    run_span.__exit__(None, None, None)
    return str(manifest), losses, rewards, names, degraded


def run_supervised_scenario(
    scenario: Union["FleetScenario", "ScenarioSpec", str],
    num_shards: int,
    num_sessions: int | None = None,
    num_frames: int | None = None,
    checkpoint_every: int = 25,
    spool_dir: "str | Path | None" = None,
    crashes: Sequence[WorkerCrash] = (),
    max_restarts: int = 3,
) -> SupervisedScenarioResult:
    """Run a sharded scenario under a crash-recovering supervisor.

    The fault-tolerant counterpart of :func:`run_sharded_scenario`: every
    shard always runs in a worker process and spools a checkpoint every
    ``checkpoint_every`` frames.  When a worker dies — injected through a
    :class:`~repro.faults.WorkerCrash` event (on the scenario's fault plans
    or passed via ``crashes``) or for real — the supervisor observes the
    dead pipe, respawns a fresh worker into the same pool slot, and
    resubmits the unfinished shard, which resumes from its latest
    checkpoint while the other shards keep running.  Because the
    checkpoints capture every bit of state the frame loop reads, the
    recovered trace is byte-identical to an uninterrupted run of the same
    scenario.

    Args:
        scenario: A fleet scenario, single spec, or registered name.
        num_shards: Requested shard count (the planner may return fewer).
        num_sessions: Total population override (default: the scenario's).
        num_frames: Episode-length override applied to every member.
        checkpoint_every: Frames between spooled checkpoints (``0``
            disables periodic checkpoints; a crashed shard then restarts
            from frame 0, still bit-identically).
        spool_dir: Directory for checkpoints and crash markers; a
            temporary directory (cleaned up on success) by default.
        crashes: Extra injected worker crashes, merged with the crash
            events of the scenario's fault plans.
        max_restarts: Restart budget per shard; exceeding it raises
            :class:`~repro.errors.ShardError`.
    """
    if checkpoint_every < 0:
        raise ShardError("checkpoint_every must be non-negative")
    scenario = _resolve_scenario(scenario, num_frames)
    assignments = scenario.session_assignments(num_sessions)
    total = len(assignments)
    shards = tuple(plan_shards(assignments, num_shards))

    all_crashes = list(crashes)
    for member in scenario.members:
        plan = getattr(member.spec, "faults", None)
        if plan is not None:
            all_crashes.extend(plan.crashes)
    crash_by_shard: Dict[int, int] = {}
    for crash in all_crashes:
        if crash.shard >= len(shards):
            raise FaultError(
                f"worker crash targets shard {crash.shard} but the plan "
                f"produced only {len(shards)} shard(s)"
            )
        frame = crash_by_shard.get(crash.shard)
        crash_by_shard[crash.shard] = (
            crash.frame if frame is None else min(frame, crash.frame)
        )

    own_spool = spool_dir is None
    spool = Path(tempfile.mkdtemp(prefix="repro-spool-")) if own_spool else Path(spool_dir)
    spool.mkdir(parents=True, exist_ok=True)

    run_span = _obs.span(
        "runtime.run_supervised_scenario", shards=len(shards), sessions=total
    )
    run_span.__enter__()
    start_time = time.perf_counter()
    tasks = [
        PoolTask(
            kind="supervised-shard",
            args=(
                scenario,
                total,
                shard.start,
                shard.stop,
                shard.index,
                str(spool),
                checkpoint_every,
                crash_by_shard.get(shard.index),
            ),
            shard_index=shard.index,
        )
        for shard in shards
    ]
    pool, owned = acquire_pool(len(shards))
    try:
        # A dying worker (injected ``os._exit`` or a real fault) shows up
        # as an EOF on its pipe; the pool respawns a fresh process into the
        # same slot and resubmits the shard, which resumes from its latest
        # spooled checkpoint.  Other shards keep running undisturbed.
        run_report = pool.run_tasks(tasks, max_restarts=max_restarts)
    finally:
        if owned:
            pool.shutdown()
    ordered = run_report.results
    fleet_trace = _interleave_shard_traces(
        [payload for payload, _, _, _, _ in ordered], shards, total
    )
    elapsed_s = time.perf_counter() - start_time
    run_span.__exit__(None, None, None)
    recovery_s = (
        0.0
        if run_report.first_death is None
        else time.perf_counter() - run_report.first_death
    )
    crashes_detected = run_report.crashes_detected
    restarts = run_report.restarts
    recovered = set(run_report.recovered)

    degraded: Optional[np.ndarray] = None
    if any(shard_degraded is not None for _, _, _, _, shard_degraded in ordered):
        degraded = np.zeros((scenario.num_frames, total), dtype=bool)
        for shard, (_, _, _, _, shard_degraded) in zip(shards, ordered):
            if shard_degraded is not None:
                degraded[:, shard.start : shard.stop] = shard_degraded

    sessions: List[SessionResult] = [None] * total  # type: ignore[list-item]
    for shard, (_, losses, rewards, names, _) in zip(shards, ordered):
        for local in range(shard.num_sessions):
            index = shard.start + local
            sessions[index] = session_result_from_trace(
                names[local],
                fleet_trace.session_trace(index),
                losses=losses[local],
                rewards=rewards[local],
            )

    if own_spool:
        # The spool now holds directories (spooled trace stores) alongside
        # checkpoint and marker files.
        shutil.rmtree(spool, ignore_errors=True)

    recovery = RecoveryReport(
        crashes_detected=crashes_detected,
        restarts=restarts,
        recovered_shards=tuple(sorted(recovered)),
        checkpoint_every=checkpoint_every,
        recovery_s=recovery_s,
    )
    _obs.record_report("recovery.report", recovery)
    return SupervisedScenarioResult(
        scenario=scenario,
        assignments=assignments,
        shards=shards,
        sessions=tuple(sessions),
        fleet_trace=fleet_trace,
        elapsed_s=elapsed_s,
        recovery=recovery,
        degraded=degraded,
    )
