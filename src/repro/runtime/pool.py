"""Persistent warm-worker pool: long-lived shard processes, reused per episode.

Every sharded entry point before this module paid the same tax on every
call: spawn a fresh ``ProcessPoolExecutor``, re-import the package in each
worker, rebuild every shard's environments and policies from scratch, run
one episode, and tear the whole thing down.  For the repeated-run workloads
the runtime actually serves — sweeps, the generalization matrix, bench
loops, supervised re-runs — that startup dominates wall-clock.

:class:`FleetWorkerPool` keeps a fixed set of worker processes alive across
calls and speaks a four-verb protocol with each of them over a pipe:

``RUN``
    Execute one :class:`PoolTask`.  A task carries an optional *shard
    fingerprint* — a SHA-256 over the canonical description of everything
    the shard's construction reads (scenario codec dict, session slice,
    resolved setting, ambient, method).  A worker pins the environments and
    policies it built, keyed by that fingerprint, in a small LRU; when a
    ``RUN`` arrives whose fingerprint matches a pinned entry the worker
    *restores the entry's pristine state snapshot* and runs the episode on
    the warm objects instead of rebuilding them.
``CHECKPOINT``
    Capture the current ``state_dict`` snapshots of a pinned shard and ship
    them back as a blob (the hook the session-server roadmap item builds
    on).
``RESET``
    Drop every pinned shard (used by tests and by callers that mutated
    global configuration).
``SHUTDOWN``
    Exit the worker loop.

Warm reuse is only sound if no state leaks between episodes.  The design
rule is the same one that makes supervised crash recovery byte-identical
(PR 7): everything a frame reads lives in ``state_dict``.  At build time the
worker captures a deep-copied *pristine* snapshot of every environment and
stateful policy; every warm ``RUN`` restores that snapshot before the
episode loop runs its usual ``reset()``.  RNG bit-generator states, stream
cursors, replay rings and learned weights therefore start bit-identical to
a freshly constructed shard, and the traces are byte-identical to cold-run
and unsharded references (``tests/test_pool.py`` enforces this over
randomized mixed sequences).  Shards whose objects cannot snapshot
(exotic streams without ``state_dict``) are simply rebuilt on every run —
correct first, warm second.

Results cross the process boundary the cheap way: episode traces travel as
``repro-store/v1`` manifest paths (memory-mapped by the merger, PR 8),
while small hot payloads — per-shard summaries, checkpoint blobs — ride in
:mod:`multiprocessing.shared_memory` blocks that the parent copies out and
unlinks immediately.  Only tiny control messages are pickled through the
pipe itself.

Worker death (injected ``os._exit`` crashes or real faults) is detected as
an EOF on the worker's pipe; the supervisor respawns a fresh process *into
the same pool slot* and resubmits the task, which — for supervised shards —
resumes from its spooled checkpoint exactly as PR 7's round-based
supervisor did.

``REPRO_POOL=0`` disables the shared pool: entry points fall back to a
private single-use pool per call (still clamped and wave-scheduled), which
is also how the bench suite measures the cold baseline.
"""

from __future__ import annotations

import atexit
import copy
import hashlib
import json
import os
import pickle
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from multiprocessing import connection, get_context
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ShardError
from repro.obs import bus as _obs

#: Environment variable: ``0`` disables the shared persistent pool.
POOL_ENV = "REPRO_POOL"

#: Pinned shards kept per worker before least-recently-used eviction.
PIN_CAPACITY = 4

#: Result payloads at least this large travel through shared memory.
SHM_THRESHOLD_BYTES = 4096


# ---------------------------------------------------------------------------
# Tasks and fingerprints
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PoolTask:
    """One unit of work for the pool.

    Attributes:
        kind: Dispatch key understood by the worker loop —
            ``"scenario-shard"``, ``"fleet-shard"``, ``"supervised-shard"``
            or ``"job"``.
        args: Positional payload for the worker-side executor (must be
            picklable; shards carry their scenario/setting plus the session
            slice and spool directory).
        fingerprint: Optional warm-reuse key.  ``None`` disables pinning
            for this task (supervised shards and experiment jobs run
            unpinned).
        shard_index: Optional stable identifier carried into recovery
            reports (the shard's plan index).
    """

    kind: str
    args: tuple
    fingerprint: Optional[str] = None
    shard_index: Optional[int] = None


def _canonical_fingerprint(payload: Any) -> Optional[str]:
    """SHA-256 over canonical JSON, or ``None`` if not serialisable."""
    try:
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError):
        return None
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def scenario_shard_fingerprint(
    scenario, num_sessions: int, start: int, stop: int
) -> Optional[str]:
    """Warm-reuse key of one scenario shard: codec dict plus session slice."""
    try:
        description = scenario.to_dict()
    except Exception:
        return None
    return _canonical_fingerprint(
        {
            "kind": "scenario-shard",
            "scenario": description,
            "num_sessions": int(num_sessions),
            "start": int(start),
            "stop": int(stop),
        }
    )


def fleet_shard_fingerprint(
    setting, method: str, offset: int, count: int, ambient
) -> Optional[str]:
    """Warm-reuse key of one homogeneous-cell shard."""
    from repro.runtime.job import ambient_fingerprint, resolved_setting_dict

    try:
        ambient_desc = ambient_fingerprint(ambient)
        setting_desc = resolved_setting_dict(setting)
    except Exception:
        return None
    return _canonical_fingerprint(
        {
            "kind": "fleet-shard",
            "setting": setting_desc,
            "method": method,
            "offset": int(offset),
            "count": int(count),
            "ambient": ambient_desc,
        }
    )


# ---------------------------------------------------------------------------
# Shared-memory payload exchange
# ---------------------------------------------------------------------------


def _export_payload(obj: Any) -> tuple:
    """Pickle ``obj``; large blobs go to a shared-memory block.

    Returns ``("inline", blob)`` or ``("shm", name, nbytes)``.  The creator
    unregisters the block from its own resource tracker — ownership (and
    the unlink duty) transfers to whichever process imports the payload.
    """
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(blob) < SHM_THRESHOLD_BYTES:
        return ("inline", blob)
    from multiprocessing import shared_memory

    block = shared_memory.SharedMemory(create=True, size=len(blob))
    block.buf[: len(blob)] = blob
    name = block.name
    try:  # hand the unlink duty to the importer (see docstring)
        from multiprocessing import resource_tracker

        resource_tracker.unregister(block._name, "shared_memory")
    except Exception:
        pass
    block.close()
    return ("shm", name, len(blob))


def _import_payload(descriptor: tuple) -> Tuple[Any, int, int]:
    """Load a payload descriptor; returns ``(object, shm_blocks, shm_bytes)``."""
    if descriptor[0] == "inline":
        return pickle.loads(descriptor[1]), 0, 0
    from multiprocessing import shared_memory

    _, name, size = descriptor
    block = shared_memory.SharedMemory(name=name)
    try:
        blob = bytes(block.buf[:size])
    finally:
        block.close()
        try:
            block.unlink()
        except FileNotFoundError:
            pass
    return pickle.loads(blob), 1, size


def _pickle_error(exc: BaseException) -> bytes:
    try:
        return pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return pickle.dumps(
            ShardError(f"{type(exc).__name__}: {exc}"),
            protocol=pickle.HIGHEST_PROTOCOL,
        )


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _capture_pristine(pairs: Sequence[tuple]) -> Optional[tuple]:
    """Deep-copied construction-time snapshots of ``(environment, policy)``.

    Returns ``None`` when any object cannot snapshot — the shard then runs
    rebuild-only (correct, never warm).  Policies without ``state_dict``
    are stateless by contract (the same contract supervised checkpoints
    rely on) and snapshot as ``None``.
    """
    try:
        environment_states = [
            copy.deepcopy(environment.state_dict()) for environment, _ in pairs
        ]
        policy_states = [
            copy.deepcopy(policy.state_dict())
            if hasattr(policy, "state_dict")
            else None
            for _, policy in pairs
        ]
    except Exception:
        return None
    return (environment_states, policy_states)


def _restore_pristine(pairs: Sequence[tuple], pristine: tuple) -> bool:
    """Load the pristine snapshots back into live objects (deep-copied)."""
    environment_states, policy_states = pristine
    try:
        for (environment, policy), environment_state, policy_state in zip(
            pairs, environment_states, policy_states
        ):
            environment.load_state_dict(copy.deepcopy(environment_state))
            if policy_state is not None:
                policy.load_state_dict(copy.deepcopy(policy_state))
    except Exception:
        return False
    return True


def _current_state(pairs: Sequence[tuple]) -> tuple:
    """Live (post-episode) snapshots of a pinned shard, for CHECKPOINT."""
    environment_states = [environment.state_dict() for environment, _ in pairs]
    policy_states = [
        policy.state_dict() if hasattr(policy, "state_dict") else None
        for _, policy in pairs
    ]
    return (environment_states, policy_states)


def _execute_task(
    kind: str, fingerprint: Optional[str], args: tuple, pinned: "OrderedDict"
) -> Tuple[Any, Dict[str, Any]]:
    """Run one task inside the worker, with warm pin reuse where keyed."""
    from repro.runtime import shards as shard_mod

    meta: Dict[str, Any] = {"warm": False, "built": False}
    if kind == "scenario-shard":
        scenario, num_sessions, start, stop, spool_dir = args
        entry = pinned.get(fingerprint) if fingerprint else None
        if entry is not None:
            pinned.move_to_end(fingerprint)
            if _restore_pristine(entry["pairs"], entry["pristine"]):
                meta["warm"] = True
            else:
                pinned.pop(fingerprint, None)
                entry = None
        if entry is None:
            session_groups, grouped, frames = shard_mod._build_scenario_shard(
                scenario, num_sessions, start, stop
            )
            pairs = [(group.environment, group.policy) for group in session_groups]
            pristine = _capture_pristine(pairs)
            entry = {
                "groups": session_groups,
                "grouped": grouped,
                "frames": frames,
                "pairs": pairs,
                "pristine": pristine,
            }
            meta["built"] = True
            if fingerprint and pristine is not None:
                pinned[fingerprint] = entry
                while len(pinned) > PIN_CAPACITY:
                    pinned.popitem(last=False)
        result = shard_mod._execute_scenario_shard(
            entry["groups"], entry["grouped"], entry["frames"], start, stop, spool_dir
        )
        return result, meta
    if kind == "fleet-shard":
        setting, method, offset, count, ambient, spool_dir = args
        entry = pinned.get(fingerprint) if fingerprint else None
        if entry is not None:
            pinned.move_to_end(fingerprint)
            if _restore_pristine(entry["pairs"], entry["pristine"]):
                meta["warm"] = True
            else:
                pinned.pop(fingerprint, None)
                entry = None
        if entry is None:
            environment, policy = shard_mod._build_fleet_shard(
                setting, method, offset, count, ambient
            )
            pairs = [(environment, policy)]
            pristine = _capture_pristine(pairs)
            entry = {"pairs": pairs, "pristine": pristine}
            meta["built"] = True
            if fingerprint and pristine is not None:
                pinned[fingerprint] = entry
                while len(pinned) > PIN_CAPACITY:
                    pinned.popitem(last=False)
        environment, policy = entry["pairs"][0]
        result = shard_mod._execute_fleet_shard(
            environment, policy, setting.num_frames, offset, count, spool_dir
        )
        return result, meta
    if kind == "supervised-shard":
        # Supervised shards own their lifecycle (checkpoint spool, crash
        # markers, resume-from-checkpoint); they always rebuild so that a
        # respawned worker replays exactly the PR 7 recovery path.
        return shard_mod._run_supervised_shard(*args), meta
    if kind == "job":
        from repro.runtime.engine import execute_job

        return execute_job(args[0]), meta
    raise ShardError(f"unknown pool task kind {kind!r}")


def _worker_main(conn) -> None:
    """Worker process loop: serve RUN/CHECKPOINT/RESET until SHUTDOWN."""
    pinned: "OrderedDict[str, dict]" = OrderedDict()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        command = message[0]
        if command == "SHUTDOWN":
            break
        if command == "RESET":
            pinned.clear()
            conn.send(("ACK",))
            continue
        if command == "CHECKPOINT":
            fingerprint = message[1]
            entry = pinned.get(fingerprint)
            try:
                if entry is None:
                    raise ShardError(
                        f"no shard pinned under fingerprint {fingerprint!r}"
                    )
                conn.send(("CKPT", _export_payload(_current_state(entry["pairs"]))))
            except Exception as exc:  # noqa: BLE001 - forwarded to the parent
                conn.send(("ERR", None, _pickle_error(exc)))
            continue
        if command == "RUN":
            # The observe flag rides in the message (not the environment):
            # long-lived workers forked before REPRO_OBS was set must still
            # collect, and stale registries must not leak between tasks.
            _, index, kind, fingerprint, args, collect = message
            if collect:
                _obs.enable(fresh=True)
            else:
                _obs.disable()
            try:
                result, meta = _execute_task(kind, fingerprint, args, pinned)
            except Exception as exc:  # noqa: BLE001 - forwarded to the parent
                conn.send(("ERR", index, _pickle_error(exc)))
                continue
            meta["pins"] = tuple(pinned.keys())
            if collect:
                meta["obs"] = _obs.registry().snapshot()
                _obs.disable()
            conn.send(("DONE", index, meta, _export_payload(result)))
            continue
        conn.send(("ERR", None, _pickle_error(ShardError(f"bad command {command!r}"))))
    conn.close()


# ---------------------------------------------------------------------------
# Supervisor side
# ---------------------------------------------------------------------------


class _WorkerHandle:
    """Parent-side record of one pool slot."""

    __slots__ = ("slot", "process", "conn", "pins", "busy_task", "spawned")

    def __init__(self, slot: int) -> None:
        self.slot = slot
        self.process = None
        self.conn = None
        self.pins: Tuple[str, ...] = ()
        self.busy_task: Optional[int] = None
        self.spawned = 0

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


@dataclass
class PoolRunReport:
    """Outcome of one :meth:`FleetWorkerPool.run_tasks` call.

    Attributes:
        results: Per-task results, input order.
        warm_hits: Tasks served from a pinned warm shard.
        rebuilds: Tasks that (re)built their shard objects.
        crashes_detected: Worker deaths observed during the run.
        restarts: Task executions resubmitted after a death.
        recovered: ``shard_index`` values (or task positions) that completed
            only after at least one restart.
        first_death: ``perf_counter`` timestamp of the first observed death
            (``None`` for a clean run).
        shm_blocks: Shared-memory payload blocks received.
        shm_bytes: Total bytes received through shared memory.
    """

    results: List[Any] = field(default_factory=list)
    warm_hits: int = 0
    rebuilds: int = 0
    crashes_detected: int = 0
    restarts: int = 0
    recovered: Tuple[int, ...] = ()
    first_death: Optional[float] = None
    shm_blocks: int = 0
    shm_bytes: int = 0


class FleetWorkerPool:
    """A persistent pool of long-lived shard workers.

    Workers are spawned lazily, capped at ``min(max_workers, os.cpu_count())``
    (never oversubscribed — excess tasks queue and run in waves), and stay
    alive between calls so repeated runs of the same shards reuse warm
    pinned environments instead of rebuilding them.

    Args:
        max_workers: Upper bound on live workers.  ``None`` uses
            :func:`repro.runtime.engine.default_worker_count` (the
            ``REPRO_WORKERS`` override or the CPU count), always clamped to
            the host CPU count.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        from repro.runtime.engine import default_worker_count

        cpu_count = os.cpu_count() or 1
        if max_workers is None:
            max_workers = default_worker_count()
        if max_workers < 1:
            raise ShardError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max(1, min(max_workers, cpu_count))
        self._context = get_context()
        self._workers: List[_WorkerHandle] = []
        self._closed = False
        self.lifetime_warm_hits = 0
        self.lifetime_rebuilds = 0
        self.lifetime_respawns = 0
        self.lifetime_tasks = 0
        self.lifetime_shm_blocks = 0
        self.lifetime_shm_bytes = 0

    # -- lifecycle -----------------------------------------------------------

    def _spawn(self, handle: _WorkerHandle) -> None:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(child_conn,),
            name=f"repro-pool-{handle.slot}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.pins = ()
        handle.busy_task = None
        handle.spawned += 1

    def ensure_workers(self, wanted: int) -> None:
        """Grow the pool up to ``min(wanted, max_workers)`` live workers."""
        if self._closed:
            raise ShardError("pool is shut down")
        wanted = max(1, min(wanted, self.max_workers))
        while len(self._workers) < wanted:
            handle = _WorkerHandle(len(self._workers))
            self._spawn(handle)
            self._workers.append(handle)

    def _respawn(self, handle: _WorkerHandle) -> None:
        """Replace a dead worker with a fresh process in the same slot."""
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:
                pass
        if handle.process is not None:
            handle.process.join(timeout=1.0)
        self._spawn(handle)
        self.lifetime_respawns += 1
        _obs.event("pool.respawn", slot=handle.slot, spawned=handle.spawned)
        _obs.inc("pool.respawns")

    @property
    def num_workers(self) -> int:
        """Live workers currently in the pool."""
        return len(self._workers)

    def shutdown(self) -> None:
        """Terminate every worker and close the pool."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers:
            if handle.conn is not None and handle.alive():
                try:
                    handle.conn.send(("SHUTDOWN",))
                except (OSError, BrokenPipeError):
                    pass
        for handle in self._workers:
            if handle.process is not None:
                handle.process.join(timeout=2.0)
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=1.0)
            if handle.conn is not None:
                try:
                    handle.conn.close()
                except OSError:
                    pass
        self._workers = []

    # -- control verbs -------------------------------------------------------

    def reset(self) -> None:
        """Drop every pinned shard in every (idle) worker."""
        for handle in self._workers:
            if handle.busy_task is not None:
                raise ShardError("cannot RESET while tasks are in flight")
            if not handle.alive():
                continue
            handle.conn.send(("RESET",))
            message = handle.conn.recv()
            if message[0] != "ACK":
                raise ShardError(f"unexpected RESET reply {message[0]!r}")
            handle.pins = ()

    def checkpoint(self, fingerprint: str) -> Any:
        """Capture the live state snapshots of a pinned shard.

        Returns the ``(environment_states, policy_states)`` tuple the
        worker captured, shipped back as a shared-memory checkpoint blob.
        Raises :class:`~repro.errors.ShardError` when no worker has the
        fingerprint pinned.
        """
        for handle in self._workers:
            if fingerprint not in handle.pins or not handle.alive():
                continue
            if handle.busy_task is not None:
                raise ShardError("cannot CHECKPOINT while the worker is busy")
            handle.conn.send(("CHECKPOINT", fingerprint))
            message = handle.conn.recv()
            if message[0] == "CKPT":
                payload, _, _ = _import_payload(message[1])
                return payload
            if message[0] == "ERR":
                raise pickle.loads(message[2])
            raise ShardError(f"unexpected CHECKPOINT reply {message[0]!r}")
        raise ShardError(f"no worker pins fingerprint {fingerprint!r}")

    # -- execution -----------------------------------------------------------

    def run_tasks(
        self,
        tasks: Sequence[PoolTask],
        max_restarts: int = 3,
        on_result=None,
    ) -> PoolRunReport:
        """Run every task, in waves, with warm affinity and crash recovery.

        Tasks whose fingerprint is pinned on an idle worker are routed to
        that worker; the rest fill free slots in order.  A worker death
        respawns the slot and resubmits the task (up to ``max_restarts``
        times per task) — supervised shards then resume from their spooled
        checkpoints.  ``on_result(position, result)`` fires as each task
        completes (completion order).
        """
        report = PoolRunReport(results=[None] * len(tasks))
        if not tasks:
            return report
        with _obs.span("pool.run_tasks", tasks=len(tasks)):
            self.ensure_workers(len(tasks))
            _obs.gauge("pool.workers", self.num_workers)
            if len(tasks) > self.num_workers:
                # Wave scheduling: more tasks than slots queue and run in
                # waves as workers free up.
                _obs.inc("pool.waves", -(-len(tasks) // self.num_workers))
                _obs.inc("pool.queued_tasks", len(tasks) - self.num_workers)
            else:
                _obs.inc("pool.waves")
            pending: List[int] = list(range(len(tasks)))
            attempts = [0] * len(tasks)
            recovered: set = set()
            done = 0
            try:
                while done < len(tasks):
                    self._dispatch(tasks, pending, attempts, report)
                    done += self._collect(
                        tasks, pending, attempts, max_restarts, recovered,
                        report, on_result,
                    )
            except Exception:
                self._drain(report)
                raise
            report.recovered = tuple(sorted(recovered))
            self.lifetime_warm_hits += report.warm_hits
            self.lifetime_rebuilds += report.rebuilds
            self.lifetime_tasks += len(tasks)
            _obs.record_report("pool.report", report)
        return report

    def _dispatch(
        self,
        tasks: Sequence[PoolTask],
        pending: List[int],
        attempts: List[int],
        report: PoolRunReport,
    ) -> None:
        for handle in self._workers:
            if not pending:
                return
            if handle.busy_task is not None:
                continue
            if not handle.alive():
                self._respawn(handle)
            position = self._pick_task(handle, tasks, pending)
            task = tasks[position]
            collect = _obs.active()
            try:
                handle.conn.send(
                    ("RUN", position, task.kind, task.fingerprint, task.args, collect)
                )
            except (OSError, BrokenPipeError):
                # The worker died while idle; respawn and retry the send.
                report.crashes_detected += 1
                if report.first_death is None:
                    report.first_death = time.perf_counter()
                _obs.event("pool.crash", slot=handle.slot, state="idle")
                _obs.inc("pool.crashes_detected")
                self._respawn(handle)
                handle.conn.send(
                    ("RUN", position, task.kind, task.fingerprint, task.args, collect)
                )
            pending.remove(position)
            handle.busy_task = position
            attempts[position] += 1

    def _pick_task(
        self, handle: _WorkerHandle, tasks: Sequence[PoolTask], pending: List[int]
    ) -> int:
        # First choice: a pending task already pinned warm on this worker.
        for position in pending:
            fingerprint = tasks[position].fingerprint
            if fingerprint is not None and fingerprint in handle.pins:
                return position
        # Otherwise take the first task not pinned on some other idle
        # worker (so affinity survives arbitrary completion order).
        for position in pending:
            fingerprint = tasks[position].fingerprint
            if fingerprint is None:
                return position
            reserved = any(
                other is not handle
                and other.busy_task is None
                and fingerprint in other.pins
                for other in self._workers
            )
            if not reserved:
                return position
        return pending[0]

    def _collect(
        self,
        tasks: Sequence[PoolTask],
        pending: List[int],
        attempts: List[int],
        max_restarts: int,
        recovered: set,
        report: PoolRunReport,
        on_result,
    ) -> int:
        busy = [handle for handle in self._workers if handle.busy_task is not None]
        if not busy:
            return 0
        ready = connection.wait([handle.conn for handle in busy], timeout=60.0)
        by_conn = {handle.conn: handle for handle in busy}
        completed = 0
        if not ready:
            # Nothing readable within the timeout: check for silent deaths.
            ready = [handle.conn for handle in busy if not handle.alive()]
        for conn in ready:
            handle = by_conn[conn]
            try:
                message = conn.recv()
            except (EOFError, OSError):
                message = None
            if message is None:
                self._handle_death(
                    handle, tasks, pending, attempts, max_restarts, report
                )
                continue
            tag = message[0]
            if tag == "DONE":
                _, position, meta, descriptor = message
                result, blocks, nbytes = _import_payload(descriptor)
                report.shm_blocks += blocks
                report.shm_bytes += nbytes
                self.lifetime_shm_blocks += blocks
                self.lifetime_shm_bytes += nbytes
                report.results[position] = result
                fingerprint = tasks[position].fingerprint
                if meta.get("warm"):
                    report.warm_hits += 1
                    if fingerprint is not None:
                        _obs.inc("pool.warm_hits", fingerprint=fingerprint[:12])
                if meta.get("built"):
                    report.rebuilds += 1
                    if fingerprint is not None:
                        _obs.inc("pool.rebuilds", fingerprint=fingerprint[:12])
                if nbytes:
                    _obs.inc("pool.shm_bytes", nbytes)
                    _obs.inc("pool.shm_blocks", blocks)
                worker_obs = meta.get("obs")
                if worker_obs is not None and _obs.active():
                    _obs.registry().merge(
                        worker_obs, origin=f"worker-{handle.slot}"
                    )
                handle.pins = tuple(meta.get("pins", ()))
                if attempts[position] > 1:
                    task = tasks[position]
                    recovered.add(
                        task.shard_index if task.shard_index is not None else position
                    )
                handle.busy_task = None
                completed += 1
                if on_result is not None:
                    on_result(position, result)
            elif tag == "ERR":
                _, _, blob = message
                handle.busy_task = None
                raise pickle.loads(blob)
            else:  # pragma: no cover - protocol violation
                handle.busy_task = None
                raise ShardError(f"unexpected worker reply {tag!r}")
        return completed

    def _handle_death(
        self,
        handle: _WorkerHandle,
        tasks: Sequence[PoolTask],
        pending: List[int],
        attempts: List[int],
        max_restarts: int,
        report: PoolRunReport,
    ) -> None:
        report.crashes_detected += 1
        if report.first_death is None:
            report.first_death = time.perf_counter()
        _obs.event("pool.crash", slot=handle.slot, task=handle.busy_task)
        _obs.inc("pool.crashes_detected")
        position = handle.busy_task
        self._respawn(handle)
        if position is None:
            return
        if attempts[position] > max_restarts:
            raise ShardError(
                f"pool task {position} (shard "
                f"{tasks[position].shard_index}) kept dying after "
                f"{attempts[position] - 1} restart(s); giving up"
            )
        report.restarts += 1
        _obs.inc("pool.restarts")
        pending.insert(0, position)

    def _drain(self, report: Optional[PoolRunReport] = None) -> None:
        """Absorb in-flight replies after an error so the pool stays usable."""
        for handle in self._workers:
            if handle.busy_task is None:
                continue
            try:
                while True:
                    message = handle.conn.recv()
                    if message[0] in ("DONE", "ERR"):
                        if message[0] == "DONE":
                            # Discard the payload (and free its shm block),
                            # still accounting for the transport it used.
                            _, blocks, nbytes = _import_payload(message[3])
                            self.lifetime_shm_blocks += blocks
                            self.lifetime_shm_bytes += nbytes
                            if report is not None:
                                report.shm_blocks += blocks
                                report.shm_bytes += nbytes
                            handle.pins = tuple(message[2].get("pins", ()))
                        break
            except (EOFError, OSError):
                self._respawn(handle)
            handle.busy_task = None

    # -- stats ---------------------------------------------------------------

    @property
    def stats(self) -> Dict[str, int]:
        """Lifetime counters: tasks, warm hits, rebuilds, respawns, workers, shm."""
        return {
            "tasks": self.lifetime_tasks,
            "warm_hits": self.lifetime_warm_hits,
            "rebuilds": self.lifetime_rebuilds,
            "respawns": self.lifetime_respawns,
            "workers": self.num_workers,
            "max_workers": self.max_workers,
            "shm_blocks": self.lifetime_shm_blocks,
            "shm_bytes": self.lifetime_shm_bytes,
        }


# ---------------------------------------------------------------------------
# The process-wide shared pool
# ---------------------------------------------------------------------------

_shared_pool: Optional[FleetWorkerPool] = None


def pool_enabled() -> bool:
    """Whether the shared persistent pool is enabled (``REPRO_POOL`` != 0)."""
    return os.environ.get(POOL_ENV, "1").strip() != "0"


def shared_pool() -> FleetWorkerPool:
    """The process-wide persistent pool, created on first use."""
    global _shared_pool
    if _shared_pool is None or _shared_pool._closed:
        _shared_pool = FleetWorkerPool()
        atexit.register(shutdown_shared_pool)
    return _shared_pool


def shutdown_shared_pool() -> None:
    """Tear down the shared pool (registered atexit; safe to call twice)."""
    global _shared_pool
    if _shared_pool is not None:
        _shared_pool.shutdown()
        _shared_pool = None


def acquire_pool(wanted_workers: int) -> Tuple[FleetWorkerPool, bool]:
    """The pool a sharded entry point should run on.

    Returns ``(pool, owned)``: the shared persistent pool (``owned=False``)
    when enabled, else a private single-use pool the caller must shut down
    (``owned=True``).  Either way the pool is clamped to the CPU count and
    wave-schedules excess tasks.
    """
    if pool_enabled():
        pool = shared_pool()
        pool.ensure_workers(wanted_workers)
        return pool, False
    return FleetWorkerPool(max_workers=max(1, wanted_workers)), True
