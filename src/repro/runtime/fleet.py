"""Fleet execution mode: many sessions, one vectorized process.

The process-pool runtime (:mod:`repro.runtime.engine`) scales experiment
*cells* across workers; the fleet mode scales *sessions within one cell*
across a single NumPy program.  A fleet run is defined exactly like N
scalar runs: session ``i`` uses base seed ``setting.seed + i``, the same
device/detector/dataset/constraint, and (for per-session policies) the
same policy construction — so its traces are interchangeable with, and for
supported methods bit-identical to, the scalar path's.

Methods map onto fleet policies as follows:

* ``default`` / ``performance`` / ``powersave`` / ``fixed`` — vectorized
  batch policies (:mod:`repro.governors.fleet`), trace-equivalent to their
  scalar counterparts.
* ``lotus-fleet`` — the fleet-trained agent
  (:class:`repro.core.fleet.FleetLotusAgent`): one shared Q-network fed by
  every session's experience (a new capability, not a scalar-equivalent
  mode).
* anything else (``lotus``, ``ztt``, the ablations) — per-session scalar
  policies adapted through
  :class:`repro.env.fleet.PerSessionPolicies`, preserving exact scalar
  behaviour while still running on the vectorized environment.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.core.fleet import FleetLotusAgent
from repro.core.training import SessionResult, session_result_from_trace
from repro.detection.registry import build_detector
from repro.env.ambient import AmbientProfile, ConstantAmbient
from repro.env.fleet import (
    BatchedInferenceEnvironment,
    FleetPolicy,
    FleetTrace,
    PerSessionPolicies,
    run_fleet_episode,
)
from repro.governors.fleet import (
    BatchedPerformancePolicy,
    BatchedPowersavePolicy,
    BatchedUserspacePolicy,
    build_batched_default_governor,
)
from repro.hardware.devices.registry import build_device
from repro.workload.dataset import build_dataset
from repro.workload.fleet import FleetFrameStream

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.analysis.experiments import ExperimentSetting

# The analysis layer itself imports the runtime (its runners execute through
# the engine), so its symbols are imported lazily inside the functions below
# to keep ``repro.runtime`` importable on its own.


@dataclass(frozen=True)
class FleetRunResult:
    """Outcome of one fleet run.

    Attributes:
        setting: The base experiment setting (session ``i`` ran with seed
            ``setting.seed + i``).
        method: Method name.
        num_sessions: Fleet size N.
        policy_name: Name of the fleet policy that produced the traces.
        sessions: Per-session :class:`SessionResult` records (same shape the
            scalar runtime produces).
        fleet_trace: The raw columnar trace.
        elapsed_s: Wall-clock seconds spent in the episode loop.
    """

    setting: ExperimentSetting
    method: str
    num_sessions: int
    policy_name: str
    sessions: Tuple[SessionResult, ...]
    fleet_trace: FleetTrace
    elapsed_s: float

    @property
    def aggregate_frames_per_second(self) -> float:
        """Total frames processed across the fleet per wall-clock second."""
        if self.elapsed_s <= 0:
            return float("inf")
        return self.fleet_trace.total_frames / self.elapsed_s


def make_fleet_environment(
    setting: ExperimentSetting,
    num_sessions: int,
    ambient: AmbientProfile | None = None,
) -> BatchedInferenceEnvironment:
    """Build the fleet environment for ``num_sessions`` sessions of ``setting``.

    Session ``i`` gets the stream generator ``default_rng(setting.seed + i)``
    and the proposal generator ``default_rng(setting.seed + i + 1)`` —
    exactly the generators :func:`repro.analysis.experiments.make_environment`
    gives a scalar run with seed ``setting.seed + i``.
    """
    if num_sessions <= 0:
        raise ExperimentError("num_sessions must be positive")
    from repro.analysis.experiments import (
        _control_margin_c,
        default_latency_constraint,
    )

    device = build_device(setting.device, setting.ambient_temperature_c)
    detector = build_detector(setting.detector)
    dataset = build_dataset(setting.dataset)
    streams = FleetFrameStream(
        dataset,
        [np.random.default_rng(setting.seed + i) for i in range(num_sessions)],
    )
    rngs = [
        np.random.default_rng(setting.seed + i + 1) for i in range(num_sessions)
    ]
    constraint = (
        setting.latency_constraint_ms
        if setting.latency_constraint_ms is not None
        else default_latency_constraint(
            setting.device, setting.detector, setting.dataset
        )
    )
    trip = min(
        device.cpu_throttle.trip_temperature_c, device.gpu_throttle.trip_temperature_c
    )
    return BatchedInferenceEnvironment(
        device=device,
        detector=detector,
        streams=streams,
        latency_constraint_ms=constraint,
        ambient=(
            ambient
            if ambient is not None
            else ConstantAmbient(setting.ambient_temperature_c)
        ),
        rngs=rngs,
        throttle_threshold_c=trip - _control_margin_c(trip),
    )


def make_fleet_policy(
    method: str,
    environment: BatchedInferenceEnvironment,
    num_frames: int,
    seed: int = 0,
) -> FleetPolicy:
    """Build a fleet policy by method name, sized for the environment."""
    from repro.analysis.experiments import make_policy

    device = environment.device
    if method == "default":
        return build_batched_default_governor(device.name)
    if method == "performance":
        return BatchedPerformancePolicy()
    if method == "powersave":
        return BatchedPowersavePolicy()
    if method == "fixed":
        return BatchedUserspacePolicy(
            cpu_level=device.cpu.max_level,
            gpu_level=max(0, device.gpu.max_level - 1),
        )
    if method == "lotus-fleet":
        detector = environment.detector
        proposal_scale = float(
            detector.proposal_model.max_proposals if detector.is_two_stage else 100
        )
        from repro.core.config import LotusConfig

        return FleetLotusAgent(
            cpu_levels=device.cpu.num_levels,
            gpu_levels=device.gpu.num_levels,
            temperature_threshold_c=environment.throttle_threshold_c,
            proposal_scale=proposal_scale,
            num_sessions=environment.num_sessions,
            config=LotusConfig(seed=seed + 100).for_episode_length(num_frames),
            rng=np.random.default_rng(seed + 100),
        )
    # Fall back to exact per-session scalar policies (lotus, ztt, ablations,
    # and any future registered method): make_policy only inspects the
    # device, detector and throttle threshold, which the fleet environment
    # exposes with the same attribute names.
    policies = [
        make_policy(method, environment, num_frames, seed=seed + i)
        for i in range(environment.num_sessions)
    ]
    return PerSessionPolicies(policies)


def run_fleet(
    setting: ExperimentSetting,
    method: str,
    num_sessions: int,
    ambient: AmbientProfile | None = None,
) -> FleetRunResult:
    """Run one (setting, method) cell as a vectorized fleet of sessions.

    The fleet analogue of
    :func:`repro.analysis.experiments.execute_setting`, minus the
    online-training warm-up (fleet learning methods train within the
    episode itself).
    """
    environment = make_fleet_environment(setting, num_sessions, ambient=ambient)
    policy = make_fleet_policy(method, environment, setting.num_frames, seed=setting.seed)
    start = time.perf_counter()
    fleet_trace = run_fleet_episode(environment, policy, setting.num_frames)
    elapsed_s = time.perf_counter() - start
    sessions = _session_results(policy, fleet_trace)
    return FleetRunResult(
        setting=setting,
        method=method,
        num_sessions=num_sessions,
        policy_name=policy.name,
        sessions=tuple(sessions),
        fleet_trace=fleet_trace,
        elapsed_s=elapsed_s,
    )


def _session_results(policy: FleetPolicy, fleet_trace: FleetTrace) -> List[SessionResult]:
    """Package each session's trace the way the scalar runtime would."""
    if isinstance(policy, PerSessionPolicies):
        losses = policy.loss_histories()
        rewards = policy.reward_histories()
    else:
        losses = [list(getattr(policy, "loss_history", []))] * fleet_trace.num_sessions
        rewards = [
            list(getattr(policy, "reward_history", []))
        ] * fleet_trace.num_sessions
    return [
        session_result_from_trace(
            policy.name,
            fleet_trace.session_trace(i),
            losses=losses[i],
            rewards=rewards[i],
        )
        for i in range(fleet_trace.num_sessions)
    ]


def scalar_reference_sessions(
    setting: ExperimentSetting, method: str, num_sessions: int
) -> List[SessionResult]:
    """Run the N equivalent scalar sessions (the fleet's reference path).

    Used by the equivalence tests and the fleet benchmarks: session ``i``
    is ``execute_setting`` at seed ``setting.seed + i`` without warm-up.
    """
    from repro.analysis.experiments import make_environment, make_policy
    from repro.core.training import OnlineSession

    results = []
    for i in range(num_sessions):
        session_setting = setting.with_overrides(seed=setting.seed + i)
        environment = make_environment(session_setting)
        policy = make_policy(
            method, environment, setting.num_frames, seed=session_setting.seed
        )
        results.append(OnlineSession(environment, policy).run(setting.num_frames))
    return results
