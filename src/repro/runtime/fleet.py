"""Fleet execution mode: many sessions, one vectorized process.

The process-pool runtime (:mod:`repro.runtime.engine`) scales experiment
*cells* across workers; the fleet mode scales *sessions within one cell*
across a single NumPy program.  A fleet run is defined exactly like N
scalar runs: session ``i`` uses base seed ``setting.seed + i``, the same
device/detector/dataset/constraint, and (for per-session policies) the
same policy construction — so its traces are interchangeable with, and for
supported methods bit-identical to, the scalar path's.

Methods map onto fleet policies as follows:

* ``default`` / ``performance`` / ``powersave`` / ``fixed`` — vectorized
  batch policies (:mod:`repro.governors.fleet`), trace-equivalent to their
  scalar counterparts.
* ``lotus-fleet`` — the fleet-trained agent
  (:class:`repro.core.fleet.FleetLotusAgent`): one shared Q-network fed by
  every session's experience (a new capability, not a scalar-equivalent
  mode).
* ``policy:<id>`` — frozen deployment of one stored checkpoint from the
  policy zoo (:mod:`repro.policies`): the artifact is loaded and verified
  once, rebuilt as one inference-only instance per session, and adapted
  through :class:`repro.env.fleet.PerSessionPolicies` — bit-identical to
  the scalar frozen run of each session's seed.
* anything else (``lotus``, ``ztt``, the ablations) — per-session scalar
  policies adapted through
  :class:`repro.env.fleet.PerSessionPolicies`, preserving exact scalar
  behaviour while still running on the vectorized environment.

Heterogeneous fleets run through the *scenario* entry points
(:func:`run_scenario` / :func:`run_fleet_scenario`): a
:class:`~repro.scenarios.FleetScenario` is resolved into per-session
assignments, sessions are partitioned into grouped sub-fleets sharing one
device model and detector (the quantities the batched kernels require to be
uniform), each group advances as one batched kernel with per-session
datasets, ambient schedules, constraints and seeds, and the per-group
results re-interleave into a single columnar :class:`FleetTrace` — with
every session still bit-identical to the scalar run of its own spec and
seed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.errors import ExperimentError, ScenarioError
from repro.core.fleet import FleetLotusAgent
from repro.core.training import SessionResult, session_result_from_trace
from repro.detection.fleet import proposal_scale
from repro.detection.registry import build_detector
from repro.env.ambient import AmbientProfile, ConstantAmbient
from repro.env.fleet import (
    BatchedInferenceEnvironment,
    FleetPolicy,
    FleetSessionGroup,
    FleetTrace,
    PerSessionPolicies,
    run_fleet_episode,
    run_grouped_fleet_episode,
)
from repro.governors.fleet import (
    BatchedPerformancePolicy,
    BatchedPowersavePolicy,
    BatchedUserspacePolicy,
    SubFleetPolicies,
    build_batched_default_governor,
)
from repro.faults.inject import FaultedFleetPolicy
from repro.faults.plan import FaultSchedule, compile_fault_plan
from repro.hardware.devices.registry import build_device
from repro.workload.dataset import build_dataset
from repro.workload.fleet import FleetFrameStream

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.analysis.experiments import ExperimentSetting
    from repro.scenarios import (
        FleetScenario,
        ScenarioSpec,
        SessionAssignment,
    )

# The analysis layer itself imports the runtime (its runners execute through
# the engine), so its symbols are imported lazily inside the functions below
# to keep ``repro.runtime`` importable on its own.


@dataclass(frozen=True)
class FleetRunResult:
    """Outcome of one fleet run.

    Attributes:
        setting: The base experiment setting (session ``i`` ran with seed
            ``setting.seed + i``).
        method: Method name.
        num_sessions: Fleet size N.
        policy_name: Name of the fleet policy that produced the traces.
        sessions: Per-session :class:`SessionResult` records (same shape the
            scalar runtime produces).
        fleet_trace: The raw columnar trace.
        elapsed_s: Wall-clock seconds spent in the episode loop.
    """

    setting: ExperimentSetting
    method: str
    num_sessions: int
    policy_name: str
    sessions: Tuple[SessionResult, ...]
    fleet_trace: FleetTrace
    elapsed_s: float

    @property
    def aggregate_frames_per_second(self) -> float:
        """Total frames processed across the fleet per wall-clock second."""
        if self.elapsed_s <= 0:
            return float("inf")
        return self.fleet_trace.total_frames / self.elapsed_s


def make_fleet_environment(
    setting: ExperimentSetting,
    num_sessions: int,
    ambient: AmbientProfile | None = None,
) -> BatchedInferenceEnvironment:
    """Build the fleet environment for ``num_sessions`` sessions of ``setting``.

    Session ``i`` gets the stream generator ``default_rng(setting.seed + i)``
    and the proposal generator ``default_rng(setting.seed + i + 1)`` —
    exactly the generators :func:`repro.analysis.experiments.make_environment`
    gives a scalar run with seed ``setting.seed + i``.
    """
    if num_sessions <= 0:
        raise ExperimentError("num_sessions must be positive")
    from repro.analysis.experiments import (
        _control_margin_c,
        default_latency_constraint,
    )

    device = build_device(setting.device, setting.ambient_temperature_c)
    detector = build_detector(setting.detector)
    dataset = build_dataset(setting.dataset)
    streams = FleetFrameStream(
        dataset,
        [np.random.default_rng(setting.seed + i) for i in range(num_sessions)],
    )
    rngs = [
        np.random.default_rng(setting.seed + i + 1) for i in range(num_sessions)
    ]
    constraint = (
        setting.latency_constraint_ms
        if setting.latency_constraint_ms is not None
        else default_latency_constraint(
            setting.device, setting.detector, setting.dataset
        )
    )
    trip = min(
        device.cpu_throttle.trip_temperature_c, device.gpu_throttle.trip_temperature_c
    )
    return BatchedInferenceEnvironment(
        device=device,
        detector=detector,
        streams=streams,
        latency_constraint_ms=constraint,
        ambient=(
            ambient
            if ambient is not None
            else ConstantAmbient(setting.ambient_temperature_c)
        ),
        rngs=rngs,
        throttle_threshold_c=trip - _control_margin_c(trip),
    )


def make_member_policy(
    method: str,
    environment: BatchedInferenceEnvironment,
    num_frames: int,
    seeds: Sequence[int],
) -> FleetPolicy:
    """Build a fleet policy for ``len(seeds)`` sessions of one method.

    The policy-factory primitive shared by the homogeneous fleet path
    (:func:`make_fleet_policy`, where the sessions span the whole
    environment) and the scenario runner (where each member of a
    heterogeneous group gets its own policy over its own session slice).
    ``environment`` only contributes the device, detector and throttle
    threshold; ``seeds`` gives session ``i`` its base seed (matching the
    scalar run it must reproduce).
    """
    from repro.analysis.experiments import make_policy

    if not seeds:
        raise ExperimentError("need at least one session seed")
    device = environment.device
    if method == "default":
        return build_batched_default_governor(device.name)
    if method == "performance":
        return BatchedPerformancePolicy()
    if method == "powersave":
        return BatchedPowersavePolicy()
    if method == "fixed":
        return BatchedUserspacePolicy(
            cpu_level=device.cpu.max_level,
            gpu_level=max(0, device.gpu.max_level - 1),
        )
    if method == "lotus-fleet":
        from repro.core.config import LotusConfig

        seed = seeds[0]
        return FleetLotusAgent(
            cpu_levels=device.cpu.num_levels,
            gpu_levels=device.gpu.num_levels,
            temperature_threshold_c=environment.throttle_threshold_c,
            proposal_scale=proposal_scale(environment.detector),
            num_sessions=len(seeds),
            config=LotusConfig(seed=seed + 100).for_episode_length(num_frames),
            rng=np.random.default_rng(seed + 100),
        )
    from repro.policies import is_policy_method

    if is_policy_method(method):
        # Frozen deployment of one stored artifact across the member's
        # sessions: resolve and verify the checkpoint once, then rebuild one
        # inference-only instance per session (each session needs its own
        # transient frame bookkeeping) — not one store read per session.
        from repro.policies import (
            PolicyStore,
            frozen_policy_from_checkpoint,
            policy_method_id,
        )

        store = PolicyStore()
        policy_id = store.resolve(policy_method_id(method))
        checkpoint = store.load_checkpoint(policy_id)
        frozen = []
        for _ in seeds:
            instance = frozen_policy_from_checkpoint(checkpoint, policy_id=policy_id)
            instance.validate_environment(environment)
            frozen.append(instance)
        return PerSessionPolicies(frozen)
    # Fall back to exact per-session scalar policies (lotus, ztt, ablations,
    # and any future registered method): make_policy only inspects the
    # device, detector and throttle threshold, which the fleet environment
    # exposes with the same attribute names.
    policies = [
        make_policy(method, environment, num_frames, seed=seed) for seed in seeds
    ]
    return PerSessionPolicies(policies)


def make_fleet_policy(
    method: str,
    environment: BatchedInferenceEnvironment,
    num_frames: int,
    seed: int = 0,
) -> FleetPolicy:
    """Build a fleet policy by method name, sized for the environment."""
    return make_member_policy(
        method,
        environment,
        num_frames,
        seeds=[seed + i for i in range(environment.num_sessions)],
    )


def run_fleet(
    setting: ExperimentSetting,
    method: str,
    num_sessions: int,
    ambient: AmbientProfile | None = None,
) -> FleetRunResult:
    """Run one (setting, method) cell as a vectorized fleet of sessions.

    The fleet analogue of
    :func:`repro.analysis.experiments.execute_setting`, minus the
    online-training warm-up (fleet learning methods train within the
    episode itself).
    """
    environment = make_fleet_environment(setting, num_sessions, ambient=ambient)
    policy = make_fleet_policy(method, environment, setting.num_frames, seed=setting.seed)
    start = time.perf_counter()
    fleet_trace = run_fleet_episode(environment, policy, setting.num_frames)
    elapsed_s = time.perf_counter() - start
    sessions = _session_results(policy, fleet_trace)
    return FleetRunResult(
        setting=setting,
        method=method,
        num_sessions=num_sessions,
        policy_name=policy.name,
        sessions=tuple(sessions),
        fleet_trace=fleet_trace,
        elapsed_s=elapsed_s,
    )


def _session_histories(
    policy: FleetPolicy, num_sessions: int
) -> Tuple[List[List[float]], List[List[float]]]:
    """Per-session (losses, rewards) histories for any fleet policy shape.

    Per-session adapters report each session's own histories; sub-fleet
    combinators recurse into their partitions; shared policies (one network
    across the sessions, e.g. the fleet-trained agent) replicate their
    single history to every session.
    """
    if isinstance(policy, FaultedFleetPolicy):
        return _session_histories(policy.inner, num_sessions)
    if isinstance(policy, PerSessionPolicies):
        return policy.loss_histories(), policy.reward_histories()
    if isinstance(policy, SubFleetPolicies):
        losses: List[List[float]] = [[] for _ in range(num_sessions)]
        rewards: List[List[float]] = [[] for _ in range(num_sessions)]
        for sub_policy, indices in zip(policy.policies, policy.indices):
            sub_losses, sub_rewards = _session_histories(sub_policy, len(indices))
            for local, index in enumerate(indices.tolist()):
                losses[index] = sub_losses[local]
                rewards[index] = sub_rewards[local]
        return losses, rewards
    shared_losses = list(getattr(policy, "loss_history", []))
    shared_rewards = list(getattr(policy, "reward_history", []))
    return (
        [list(shared_losses) for _ in range(num_sessions)],
        [list(shared_rewards) for _ in range(num_sessions)],
    )


def _session_policy_names(policy: FleetPolicy, num_sessions: int) -> List[str]:
    """Per-session policy names (sub-fleet combinators resolve per slice)."""
    if isinstance(policy, FaultedFleetPolicy):
        return _session_policy_names(policy.inner, num_sessions)
    if isinstance(policy, SubFleetPolicies):
        return policy.session_policy_names()
    return [policy.name] * num_sessions


def _session_results(policy: FleetPolicy, fleet_trace: FleetTrace) -> List[SessionResult]:
    """Package each session's trace the way the scalar runtime would."""
    losses, rewards = _session_histories(policy, fleet_trace.num_sessions)
    names = _session_policy_names(policy, fleet_trace.num_sessions)
    return [
        session_result_from_trace(
            names[i],
            fleet_trace.session_trace(i),
            losses=losses[i],
            rewards=rewards[i],
        )
        for i in range(fleet_trace.num_sessions)
    ]


def scalar_reference_sessions(
    setting: ExperimentSetting, method: str, num_sessions: int
) -> List[SessionResult]:
    """Run the N equivalent scalar sessions (the fleet's reference path).

    Used by the equivalence tests and the fleet benchmarks: session ``i``
    is ``execute_setting`` at seed ``setting.seed + i`` without warm-up.
    """
    from repro.analysis.experiments import make_environment, make_policy
    from repro.core.training import OnlineSession

    results = []
    for i in range(num_sessions):
        session_setting = setting.with_overrides(seed=setting.seed + i)
        environment = make_environment(session_setting)
        policy = make_policy(
            method, environment, setting.num_frames, seed=session_setting.seed
        )
        results.append(OnlineSession(environment, policy).run(setting.num_frames))
    return results


# ---------------------------------------------------------------------------
# Scenario execution (heterogeneous fleets)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioGroup:
    """One grouped sub-fleet of a scenario run, for reporting.

    Attributes:
        device: Device model shared by the group.
        detector: Detector shared by the group.
        session_indices: Global session index of each of the group's
            sessions, in the group's local order.
        spec_names: Scenario-spec name of each session (same order).
        policy_name: Name of the fleet policy that drove the group.
    """

    device: str
    detector: str
    session_indices: Tuple[int, ...]
    spec_names: Tuple[str, ...]
    policy_name: str


@dataclass(frozen=True)
class FleetScenarioResult:
    """Outcome of one heterogeneous scenario run.

    Attributes:
        scenario: The (possibly overridden) fleet scenario that ran.
        assignments: Per-session resolution to specs and seeds, in global
            session order.
        groups: The grouped sub-fleets the sessions were partitioned into.
        sessions: Per-session :class:`SessionResult` records, global order.
        fleet_trace: The combined columnar trace (global session order).
        elapsed_s: Wall-clock seconds spent in the episode loop.
        degraded: ``(num_frames, num_sessions)`` bool mask of fault-degraded
            cells, or ``None`` when the scenario carries no fault plan.
    """

    scenario: FleetScenario
    assignments: Tuple[SessionAssignment, ...]
    groups: Tuple[ScenarioGroup, ...]
    sessions: Tuple[SessionResult, ...]
    fleet_trace: FleetTrace
    elapsed_s: float
    degraded: np.ndarray | None = None

    @property
    def num_sessions(self) -> int:
        """Total fleet size."""
        return self.fleet_trace.num_sessions

    @property
    def aggregate_frames_per_second(self) -> float:
        """Total frames processed across the fleet per wall-clock second."""
        if self.elapsed_s <= 0:
            return float("inf")
        return self.fleet_trace.total_frames / self.elapsed_s

    def group_sessions(self, group: ScenarioGroup) -> List[SessionResult]:
        """The session results belonging to ``group``, in its local order."""
        return [self.sessions[i] for i in group.session_indices]


def make_group_environment(
    device_name: str,
    detector_name: str,
    assignments: Sequence[SessionAssignment],
) -> BatchedInferenceEnvironment:
    """Build the batched environment of one grouped sub-fleet.

    All assignments must share ``device_name``/``detector_name``; each
    session gets its own dataset profile (per-session AR(1) workload
    parameters), ambient schedule, resolved latency constraint, stream
    generator (``default_rng(seed)``) and proposal generator
    (``default_rng(seed + 1)``) — exactly the components the scalar
    environment of that session's spec and seed would use.
    """
    from repro.analysis.experiments import (
        _control_margin_c,
        default_latency_constraint,
    )

    if not assignments:
        raise ExperimentError("a session group needs at least one assignment")
    for assignment in assignments:
        if (
            assignment.spec.device != device_name
            or assignment.spec.detector != detector_name
        ):
            raise ExperimentError(
                f"assignment {assignment.spec.name!r} does not belong to group "
                f"({device_name}, {detector_name})"
            )
    device = build_device(device_name)
    detector = build_detector(detector_name)
    constraint_cache: Dict[str, float] = {}
    constraints: List[float] = []
    for assignment in assignments:
        spec = assignment.spec
        if spec.latency_constraint_ms is not None:
            constraints.append(float(spec.latency_constraint_ms))
            continue
        if spec.dataset not in constraint_cache:
            constraint_cache[spec.dataset] = default_latency_constraint(
                device_name, detector_name, spec.dataset
            )
        constraints.append(constraint_cache[spec.dataset])
    streams = FleetFrameStream(
        [build_dataset(assignment.spec.dataset) for assignment in assignments],
        [np.random.default_rng(assignment.seed) for assignment in assignments],
        latency_constraint_ms=constraints,
    )
    rngs = [np.random.default_rng(assignment.seed + 1) for assignment in assignments]
    trip = min(
        device.cpu_throttle.trip_temperature_c, device.gpu_throttle.trip_temperature_c
    )
    return BatchedInferenceEnvironment(
        device=device,
        detector=detector,
        streams=streams,
        # Every session's constraint is fully resolved into the stream's
        # per-session override array above (no NaN entries), so the
        # environment-wide default is never consulted; any positive value
        # satisfies the constructor.
        latency_constraint_ms=constraints[0],
        ambient=[assignment.spec.ambient for assignment in assignments],
        rngs=rngs,
        throttle_threshold_c=trip - _control_margin_c(trip),
    )


def _group_fault_schedule(
    assignments: Sequence[SessionAssignment], num_frames: int
) -> FaultSchedule | None:
    """Compile the merged fault schedule of one session group, if any.

    Each assignment's spec may carry its own :class:`~repro.faults.FaultPlan`;
    every column is compiled from that plan at the session's *global* index,
    so the schedule is invariant under grouping and sharding.  Returns
    ``None`` when no session of the group is ever faulted.
    """
    plans = [getattr(a.spec, "faults", None) for a in assignments]
    if not any(plan is not None for plan in plans):
        return None
    shape = (num_frames, len(assignments))
    dropout = np.zeros(shape, dtype=bool)
    spike_c = np.zeros(shape, dtype=float)
    storm = np.zeros(shape, dtype=bool)
    for local, (assignment, plan) in enumerate(zip(assignments, plans)):
        if plan is None:
            continue
        column = compile_fault_plan(plan, num_frames, [assignment.index])
        dropout[:, local] = column.dropout[:, 0]
        spike_c[:, local] = column.spike_c[:, 0]
        storm[:, local] = column.storm[:, 0]
    schedule = FaultSchedule(
        sessions=tuple(a.index for a in assignments),
        dropout=dropout,
        spike_c=spike_c,
        storm=storm,
    )
    return schedule if schedule.any_faults else None


def _group_policy(
    environment: BatchedInferenceEnvironment,
    assignments: Sequence[SessionAssignment],
    num_frames: int,
) -> FleetPolicy:
    """Build the (possibly partitioned) policy driving one session group.

    When any of the group's specs carries a fault plan with sensor or storm
    events, the group policy is wrapped in a
    :class:`~repro.faults.FaultedFleetPolicy` compiled for the group's
    global session indices.
    """
    runs: List[Tuple[int, List[int], List[int]]] = []
    for local, assignment in enumerate(assignments):
        if runs and runs[-1][0] == assignment.member_index:
            runs[-1][1].append(local)
            runs[-1][2].append(assignment.seed)
        else:
            runs.append((assignment.member_index, [local], [assignment.seed]))
    policies = [
        make_member_policy(
            assignments[locals_[0]].spec.method, environment, num_frames, seeds
        )
        for _, locals_, seeds in runs
    ]
    if len(policies) == 1:
        policy: FleetPolicy = policies[0]
    else:
        policy = SubFleetPolicies(policies, [locals_ for _, locals_, _ in runs])
    schedule = _group_fault_schedule(assignments, num_frames)
    if schedule is not None:
        policy = FaultedFleetPolicy(policy, schedule)
    return policy


def collect_degraded(
    session_groups: Sequence[FleetSessionGroup],
    num_frames: int,
    num_sessions: int,
) -> np.ndarray | None:
    """Assemble the fleet-wide degraded mask from fault-injection wrappers.

    Scatters each :class:`~repro.faults.FaultedFleetPolicy`'s per-group
    ``degraded`` matrix into a ``(num_frames, num_sessions)`` array using the
    groups' session indices.  Returns ``None`` when no group was faulted.
    """
    if not any(
        isinstance(group.policy, FaultedFleetPolicy) for group in session_groups
    ):
        return None
    degraded = np.zeros((num_frames, num_sessions), dtype=bool)
    for group in session_groups:
        if isinstance(group.policy, FaultedFleetPolicy):
            columns = np.asarray(group.session_indices, dtype=int)
            degraded[:, columns] = group.policy.degraded[:num_frames]
    return degraded


def run_fleet_scenario(
    scenario: Union[FleetScenario, ScenarioSpec],
    num_sessions: int | None = None,
    num_frames: int | None = None,
) -> FleetScenarioResult:
    """Run a (possibly heterogeneous) scenario on the grouped fleet engine.

    Sessions are resolved via
    :meth:`~repro.scenarios.FleetScenario.session_assignments`, partitioned
    into sub-fleets by (device, detector), advanced lock-step as one batched
    kernel per group, and re-interleaved into one columnar trace in global
    session order.  Session ``i`` is bit-for-bit the scalar run of
    ``assignments[i].spec`` at seed ``assignments[i].seed``
    (``tests/test_fleet_equivalence.py`` enforces this).

    Args:
        scenario: A :class:`~repro.scenarios.FleetScenario`, or a single
            :class:`~repro.scenarios.ScenarioSpec` (treated as a
            one-member fleet).
        num_sessions: Total population override (default: the scenario's).
        num_frames: Episode-length override applied to every member.
    """
    from repro.scenarios import FleetMember, FleetScenario, ScenarioSpec

    if isinstance(scenario, ScenarioSpec):
        scenario = FleetScenario(
            name=scenario.name,
            members=(FleetMember(scenario),),
            description=scenario.description,
        )
    if not isinstance(scenario, FleetScenario):
        raise ScenarioError(
            f"expected a ScenarioSpec or FleetScenario, got {type(scenario).__name__}"
        )
    if num_frames is not None and num_frames != scenario.num_frames:
        scenario = scenario.with_overrides(
            members=tuple(
                FleetMember(
                    member.spec.with_overrides(num_frames=num_frames), member.weight
                )
                for member in scenario.members
            )
        )
    frames = scenario.num_frames
    assignments = scenario.session_assignments(num_sessions)

    grouped: Dict[Tuple[str, str], List[SessionAssignment]] = {}
    for assignment in assignments:
        key = (assignment.spec.device, assignment.spec.detector)
        grouped.setdefault(key, []).append(assignment)

    session_groups: List[FleetSessionGroup] = []
    for (device_name, detector_name), group_assignments in grouped.items():
        environment = make_group_environment(
            device_name, detector_name, group_assignments
        )
        policy = _group_policy(environment, group_assignments, frames)
        session_groups.append(
            FleetSessionGroup(
                environment=environment,
                policy=policy,
                session_indices=tuple(a.index for a in group_assignments),
            )
        )

    start = time.perf_counter()
    fleet_trace = run_grouped_fleet_episode(session_groups, frames)
    elapsed_s = time.perf_counter() - start

    sessions: List[SessionResult | None] = [None] * len(assignments)
    group_infos: List[ScenarioGroup] = []
    for group, ((device_name, detector_name), group_assignments) in zip(
        session_groups, grouped.items()
    ):
        losses, rewards = _session_histories(
            group.policy, group.environment.num_sessions
        )
        names = _session_policy_names(group.policy, group.environment.num_sessions)
        for local, assignment in enumerate(group_assignments):
            sessions[assignment.index] = session_result_from_trace(
                names[local],
                fleet_trace.session_trace(assignment.index),
                losses=losses[local],
                rewards=rewards[local],
            )
        group_infos.append(
            ScenarioGroup(
                device=device_name,
                detector=detector_name,
                session_indices=group.session_indices,
                spec_names=tuple(a.spec.name for a in group_assignments),
                policy_name=group.policy.name,
            )
        )
    return FleetScenarioResult(
        scenario=scenario,
        assignments=assignments,
        groups=tuple(group_infos),
        sessions=tuple(sessions),
        fleet_trace=fleet_trace,
        elapsed_s=elapsed_s,
        degraded=collect_degraded(session_groups, frames, len(assignments)),
    )


def run_scenario(
    scenario: Union[FleetScenario, ScenarioSpec, str],
    num_sessions: int | None = None,
    num_frames: int | None = None,
) -> FleetScenarioResult:
    """Run a scenario by object or registered name.

    The front door the CLI (``python -m repro scenario run``) and the
    examples use: names resolve through the scenario registry, and both
    scenario flavours execute on the grouped fleet engine.
    """
    if isinstance(scenario, str):
        from repro.scenarios import build_scenario

        scenario = build_scenario(scenario)
    return run_fleet_scenario(scenario, num_sessions=num_sessions, num_frames=num_frames)


def scalar_reference_session(
    spec: ScenarioSpec,
    seed: int | None = None,
    num_frames: int | None = None,
) -> SessionResult:
    """Run the scalar reference of one scenario session (no warm-up).

    The equivalence oracle of the scenario runner: the scalar environment
    and policy are built exactly as :func:`run_fleet_scenario` builds the
    session's slice of its group, so the returned trace must match that
    session's column of the fleet trace bit for bit.
    """
    from repro.analysis.experiments import make_environment, make_policy
    from repro.core.training import OnlineSession

    if spec.method == "lotus-fleet":
        raise ScenarioError(
            "lotus-fleet trains one shared network across the fleet and has "
            "no scalar reference session"
        )
    frames = spec.num_frames if num_frames is None else num_frames
    setting = spec.setting().with_overrides(
        seed=spec.seed if seed is None else seed, num_frames=frames
    )
    environment = make_environment(setting, ambient=spec.ambient)
    policy = make_policy(spec.method, environment, frames, seed=setting.seed)
    return OnlineSession(environment, policy).run(frames)
