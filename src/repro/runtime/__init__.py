"""Experiment execution runtime: jobs, caching, worker pool, sweeps, CLI.

This layer sits between :mod:`repro.core` (which can run a single online
session) and :mod:`repro.analysis` (which decides *what* to run for each
paper table and figure).  It contributes the *how*: a sweep is expanded into
independent, fully-described jobs; jobs are answered from a content-
addressed disk cache when their inputs are unchanged; the remainder fans
out over a process pool (or runs serially for ``max_workers=1``) and is
stored back for next time.  See :mod:`repro.runtime.cli` for the
``python -m repro`` command-line front end.
"""

from repro.runtime.cache import CacheEntry, CacheStats, ResultCache, default_cache_dir
from repro.runtime.engine import (
    ExperimentRuntime,
    RuntimeReport,
    default_worker_count,
    execute_job,
    scenario_jobs,
)
from repro.runtime.fleet import (
    FleetRunResult,
    FleetScenarioResult,
    ScenarioGroup,
    collect_degraded,
    make_fleet_environment,
    make_fleet_policy,
    make_group_environment,
    make_member_policy,
    run_fleet,
    run_fleet_scenario,
    run_scenario,
    scalar_reference_session,
)
from repro.runtime.job import ExperimentJob, config_fingerprint, job_key
from repro.runtime.pool import (
    FleetWorkerPool,
    PoolRunReport,
    PoolTask,
    acquire_pool,
    pool_enabled,
    shared_pool,
    shutdown_shared_pool,
)
from repro.runtime.shards import (
    RecoveryReport,
    ShardPlan,
    ShardedScenarioResult,
    SupervisedScenarioResult,
    plan_shards,
    run_sharded_fleet,
    run_sharded_scenario,
    run_supervised_scenario,
)
from repro.runtime.sweep import SweepSpec, sweep_metrics_map

__all__ = [
    "CacheEntry",
    "CacheStats",
    "ExperimentJob",
    "ExperimentRuntime",
    "FleetRunResult",
    "FleetScenarioResult",
    "FleetWorkerPool",
    "PoolRunReport",
    "PoolTask",
    "RecoveryReport",
    "ResultCache",
    "RuntimeReport",
    "ScenarioGroup",
    "ShardPlan",
    "ShardedScenarioResult",
    "SupervisedScenarioResult",
    "SweepSpec",
    "acquire_pool",
    "collect_degraded",
    "config_fingerprint",
    "default_cache_dir",
    "default_worker_count",
    "execute_job",
    "job_key",
    "make_fleet_environment",
    "make_fleet_policy",
    "make_group_environment",
    "make_member_policy",
    "plan_shards",
    "pool_enabled",
    "run_fleet",
    "run_fleet_scenario",
    "run_scenario",
    "run_sharded_fleet",
    "run_sharded_scenario",
    "run_supervised_scenario",
    "scalar_reference_session",
    "scenario_jobs",
    "shared_pool",
    "shutdown_shared_pool",
    "sweep_metrics_map",
]
