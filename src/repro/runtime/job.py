"""Experiment jobs and their stable cache keys.

A job is the unit of work the runtime schedules: one fully-described
experiment cell — a single (setting, method) pair, optionally with an
ambient-temperature schedule or a domain-switch workload attached.  Jobs are
frozen, picklable and order-independent, which is what lets a sweep fan out
over a process pool and lets completed results be cached on disk.

The cache key of a job is a SHA-256 digest over the *fully resolved*
experiment description: every :class:`~repro.analysis.experiments.ExperimentSetting`
field (with a ``None`` latency constraint replaced by the derived default,
so that an explicit constraint equal to the derived one hashes identically),
the method name, the ambient/domain specification, and a fingerprint of the
code-relevant configuration (agent hyper-parameter defaults, reward
defaults, margin-derivation constants and the package version).  Changing
any configuration default therefore invalidates the cache automatically,
while re-rendering a table with unchanged code is a pure cache hit.

Frozen-policy jobs (method ``policy:<id>``, see :mod:`repro.policies`) get
checkpoint-exact keys for free: the id *is* the SHA-256 of the checkpoint
payload, so the trained network's content hash rides into the job key
through the method name — retraining a policy yields a new id and therefore
new cells, while re-evaluating an unchanged artifact is a pure cache hit.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

#: Bumped whenever the serialised payload layout or the key derivation
#: changes incompatibly; keys embed it so stale entries are never read.
CACHE_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class ExperimentJob:
    """One independent unit of experiment work.

    Attributes:
        setting: The :class:`~repro.analysis.experiments.ExperimentSetting`
            describing the cell (device, detector, dataset, frames, seed...).
        method: Policy/method name understood by
            :func:`~repro.analysis.experiments.make_policy` (e.g.
            ``"default"``, ``"ztt"``, ``"lotus"``, ``"fixed"`` or an
            ablation variant).
        ambient: Optional ambient-temperature profile overriding the
            setting's constant ambient (an
            :class:`~repro.env.ambient.AmbientProfile`).  Constant and
            stepped profiles are cacheable; exotic custom profiles still run
            but bypass the cache.
        domain_datasets: Optional dataset names for a mid-run domain switch
            (Fig. 7b).  When set, the executor splits ``setting.num_frames``
            evenly across the datasets and rebuilds the paper's
            ``DomainSwitchStream``.
        faults: Optional :class:`~repro.faults.FaultPlan` injected into the
            run (sensor dropouts/spikes and throttling storms at the policy
            boundary).  The plan's canonical fingerprint is folded into the
            cache key, so faulted cells cache exactly like clean ones
            without ever colliding with them.
    """

    setting: Any
    method: str
    ambient: Any = None
    domain_datasets: Optional[Tuple[str, ...]] = None
    faults: Any = None

    def cache_key(self) -> Optional[str]:
        """Stable hex digest identifying this job, or ``None`` if uncacheable."""
        return job_key(self)


def ambient_fingerprint(ambient: Any) -> Optional[Dict[str, Any]]:
    """Serialisable description of an ambient profile, for hashing.

    Returns ``None`` for "no override" and raises :class:`TypeError` for
    profile types the runtime cannot describe (the engine treats such jobs
    as uncacheable rather than failing them).
    """
    # Imported lazily: the runtime layer sits below repro.analysis but the
    # ambient classes live in repro.env, which is safe; keep the import local
    # anyway so unpickling jobs in worker processes stays cheap.
    from repro.env.ambient import ConstantAmbient, StepAmbient

    if ambient is None:
        return None
    # The constant/steps shapes predate the scenario codec and are kept
    # verbatim so existing cache keys stay stable.
    if isinstance(ambient, ConstantAmbient):
        return {"kind": "constant", "temperature_c": float(ambient.temperature_c)}
    if isinstance(ambient, StepAmbient):
        return {
            "kind": "steps",
            "segments": [
                [int(s.num_frames), float(s.temperature_c)] for s in ambient.segments
            ],
        }
    # Every other library profile fingerprints through the scenario codec,
    # so new serialisable profiles are cacheable without a second codec.
    from repro.errors import ScenarioError
    from repro.scenarios.spec import ambient_to_dict

    try:
        return ambient_to_dict(ambient)
    except ScenarioError as exc:
        raise TypeError(
            f"cannot fingerprint ambient profile of type {type(ambient).__name__}"
        ) from exc


def config_fingerprint() -> Dict[str, Any]:
    """Code-relevant configuration snapshot folded into every job key.

    Captures the default hyper-parameters of the learning agents and the
    reward, the experiment-derivation constants, and the package version.
    Any change to these defaults produces different job keys, so cached
    results can never silently survive a configuration change.
    """
    from repro import __version__
    from repro.analysis import experiments
    from repro.baselines.ztt import ZttConfig
    from repro.core.config import LotusConfig
    from repro.core.reward import RewardConfig

    return {
        "repro_version": __version__,
        "lotus_config": dataclasses.asdict(LotusConfig()),
        "ztt_config": dataclasses.asdict(ZttConfig()),
        "reward_config": dataclasses.asdict(RewardConfig()),
        "control_margin_fraction": experiments.CONTROL_MARGIN_FRACTION,
        "control_margin_range_c": list(experiments.CONTROL_MARGIN_RANGE_C),
        "soft_margin_fraction": experiments.SOFT_MARGIN_FRACTION,
        "soft_margin_range_c": list(experiments.SOFT_MARGIN_RANGE_C),
        "reference_ambient_c": experiments.REFERENCE_AMBIENT_C,
        "constraint_headroom": experiments.CONSTRAINT_HEADROOM,
    }


@functools.lru_cache(maxsize=256)
def _derived_constraint_ms(device: str, detector: str, dataset: str) -> float:
    """Memoised :func:`~repro.analysis.experiments.default_latency_constraint`.

    Deriving the constraint rebuilds the device/detector/dataset models; a
    large sweep keys hundreds of jobs over a handful of distinct triples,
    so the derivation is cached per process.  (The headroom constant the
    derivation uses is part of :func:`config_fingerprint`, which is *not*
    cached, so a configuration change still produces new keys.)
    """
    from repro.analysis.experiments import default_latency_constraint

    return default_latency_constraint(device, detector, dataset)


def resolved_setting_dict(setting: Any) -> Dict[str, Any]:
    """The setting as a plain dict with the latency constraint resolved.

    A ``None`` constraint is replaced by the value
    :func:`~repro.analysis.experiments.default_latency_constraint` derives,
    so a job that spells the derived constraint out explicitly maps to the
    same cache entry as one that leaves it implicit.
    """
    payload = dataclasses.asdict(setting)
    if payload.get("latency_constraint_ms") is None:
        payload["latency_constraint_ms"] = _derived_constraint_ms(
            setting.device, setting.detector, setting.dataset
        )
    return payload


def job_key(job: ExperimentJob) -> Optional[str]:
    """SHA-256 key of a job, or ``None`` when the job cannot be cached."""
    try:
        ambient = ambient_fingerprint(job.ambient)
    except TypeError:
        return None
    from repro.faults.plan import fault_fingerprint

    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "setting": resolved_setting_dict(job.setting),
        "method": job.method,
        "ambient": ambient,
        "domain_datasets": list(job.domain_datasets) if job.domain_datasets else None,
        "faults": fault_fingerprint(job.faults),
        "config": config_fingerprint(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
