"""Disk cache for completed experiment sessions.

Completed :class:`~repro.core.training.SessionResult` objects are persisted
as gzip-compressed JSON under a directory keyed by the job hash (see
:mod:`repro.runtime.job`).  The payload stores the raw per-frame trace plus
the policy's loss/reward histories; the summary metrics are *recomputed* on
load through the same :func:`~repro.core.training.session_result_from_trace`
path a fresh run uses, so a cache hit is guaranteed to yield bit-identical
metrics to the run that produced it.

The default cache location is ``~/.cache/repro-lotus`` and can be overridden
with the ``REPRO_CACHE_DIR`` environment variable or per-instance.
"""

from __future__ import annotations

import contextlib
import dataclasses
import gzip
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional

from repro.core.training import SessionResult, session_result_from_trace
from repro.env.trace import FrameRecord, Trace
from repro.errors import ExperimentError
from repro.runtime.job import CACHE_SCHEMA_VERSION

#: Environment variable that overrides the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Column order used by the serialised trace payload.
_TRACE_FIELDS = tuple(f.name for f in dataclasses.fields(FrameRecord))


def default_cache_dir() -> Path:
    """The cache directory used when none is given explicitly."""
    override = os.environ.get(CACHE_DIR_ENV, "").strip()
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro-lotus"


@dataclass(frozen=True)
class CacheStats:
    """Summary of a cache directory's contents.

    Attributes:
        entries: Number of stored session results.
        total_bytes: Total size of the stored payloads on disk.
    """

    entries: int
    total_bytes: int


@dataclass(frozen=True)
class CacheEntry:
    """One stored result's on-disk footprint.

    Attributes:
        key: The job hash the entry is stored under.
        path: Payload path on disk.
        size_bytes: Compressed payload size.
        modified: Last-modified time (epoch seconds) — entries are written
            once, so this is effectively the completion time of the job.
    """

    key: str
    path: Path
    size_bytes: int
    modified: float


class ResultCache:
    """Content-addressed store of completed session results.

    Entries are sharded into two-character subdirectories (like Git objects)
    so that very large sweeps do not pile tens of thousands of files into a
    single directory.
    """

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    # -- paths ---------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """Payload path of a cache key."""
        if not key:
            raise ExperimentError("cache key must be a non-empty string")
        return self.root / key[:2] / f"{key}.json.gz"

    def contains(self, key: str) -> bool:
        """Whether a result is stored under ``key``."""
        return self.path_for(key).exists()

    def _iter_entries(self) -> Iterator[Path]:
        if not self.root.exists():
            return
        yield from self.root.glob("*/*.json.gz")

    # -- round trip ----------------------------------------------------------

    def store(self, key: str, result: SessionResult) -> Path:
        """Persist ``result`` under ``key`` and return the payload path.

        The write goes through a temporary file and an atomic rename so a
        crashed or interrupted run never leaves a truncated payload behind.
        """
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "policy_name": result.policy_name,
            "fields": list(_TRACE_FIELDS),
            "records": [
                [getattr(record, name) for name in _TRACE_FIELDS]
                for record in result.trace
            ],
            "losses": [float(v) for v in result.losses],
            "rewards": [float(v) for v in result.rewards],
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Unique temp name per writer: two processes storing the same key
        # concurrently (shared cache directory) must not clobber each
        # other's half-written payload before the atomic rename.
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as raw:
                with gzip.open(raw, "wt", encoding="utf-8") as handle:
                    json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        return path

    def load(self, key: str) -> Optional[SessionResult]:
        """Load the result stored under ``key``; ``None`` on miss.

        Entries written by an incompatible schema version, or corrupted on
        disk, are treated as misses (and are overwritten by the next store)
        rather than raised, so a stale cache can never break a sweep.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            with gzip.open(path, "rt", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, EOFError, json.JSONDecodeError):
            return None
        if payload.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        if payload.get("fields") != list(_TRACE_FIELDS):
            return None
        trace = Trace(
            [FrameRecord(**dict(zip(_TRACE_FIELDS, row))) for row in payload["records"]]
        )
        return session_result_from_trace(
            payload["policy_name"],
            trace,
            losses=payload.get("losses", []),
            rewards=payload.get("rewards", []),
        )

    # -- maintenance ---------------------------------------------------------

    def stats(self) -> CacheStats:
        """Entry count and total payload size of the cache."""
        entries = 0
        total = 0
        for path in self._iter_entries():
            entries += 1
            total += path.stat().st_size
        return CacheStats(entries=entries, total_bytes=total)

    def entries(self) -> List[CacheEntry]:
        """Every stored entry with its on-disk size, newest first.

        Entries deleted between the directory scan and the stat (another
        process pruning concurrently) are skipped, not raised.
        """
        items: List[CacheEntry] = []
        for path in self._iter_entries():
            try:
                stat = path.stat()
            except FileNotFoundError:
                continue
            items.append(
                CacheEntry(
                    key=path.name[: -len(".json.gz")],
                    path=path,
                    size_bytes=stat.st_size,
                    modified=stat.st_mtime,
                )
            )
        items.sort(key=lambda entry: (-entry.modified, entry.key))
        return items

    def _remove_empty_shards(self) -> None:
        if self.root.exists():
            for shard in self.root.iterdir():
                if shard.is_dir() and not any(shard.iterdir()):
                    shard.rmdir()

    def prune(
        self,
        keep_latest: int | None = None,
        max_age_days: float | None = None,
        now: float | None = None,
        dry_run: bool = False,
    ) -> int:
        """Delete old entries; returns the number removed.

        Args:
            keep_latest: Keep only the N most recently written entries.
            max_age_days: Delete entries older than this many days.
            now: Reference time (epoch seconds; defaults to the current
                time) — injectable for tests.
            dry_run: Report how many entries *would* be removed without
                deleting anything.

        At least one criterion must be given; when both are, an entry is
        removed if *either* applies.  Long eval-matrix campaigns use this to
        keep the result cache bounded.
        """
        if keep_latest is None and max_age_days is None:
            raise ExperimentError("prune needs keep_latest and/or max_age_days")
        if keep_latest is not None and keep_latest < 0:
            raise ExperimentError("keep_latest must be non-negative")
        if max_age_days is not None and max_age_days < 0:
            raise ExperimentError("max_age_days must be non-negative")
        reference = time.time() if now is None else now
        entries = self.entries()  # newest first
        doomed = {}
        if keep_latest is not None:
            for entry in entries[keep_latest:]:
                doomed[entry.path] = entry
        if max_age_days is not None:
            cutoff = reference - max_age_days * 86_400.0
            for entry in entries:
                if entry.modified < cutoff:
                    doomed[entry.path] = entry
        if dry_run:
            return len(doomed)
        for path in doomed:
            with contextlib.suppress(FileNotFoundError):
                path.unlink()
        self._remove_empty_shards()
        return len(doomed)

    def clear(self) -> int:
        """Delete every stored entry; returns the number removed."""
        removed = 0
        for path in list(self._iter_entries()):
            path.unlink()
            removed += 1
        self._remove_empty_shards()
        return removed
