"""Disk cache for completed experiment sessions.

Completed :class:`~repro.core.training.SessionResult` objects are persisted
as gzip-compressed JSON under a directory keyed by the job hash (see
:mod:`repro.runtime.job`).  The payload stores the policy's loss/reward
histories plus the per-frame trace; the summary metrics are *recomputed* on
load through the same :func:`~repro.core.training.session_result_from_trace`
path a fresh run uses, so a cache hit is guaranteed to yield bit-identical
metrics to the run that produced it.

Long traces do not live inside the JSON: past a frame threshold the trace
is stored as a *sidecar blob* — a one-session columnar chunk store (see
:mod:`repro.store`) in a ``<key>.blob/`` directory next to the payload —
and the JSON carries only a reference.  Loads memory-map the blob, short
traces stay inline, and every maintenance operation (``stats``, ``list``,
``prune`` including ``--dry-run``, ``clear``) accounts for and removes
blobs together with their payloads.

The default cache location is ``~/.cache/repro-lotus`` and can be overridden
with the ``REPRO_CACHE_DIR`` environment variable or per-instance.
"""

from __future__ import annotations

import contextlib
import dataclasses
import gzip
import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional

from repro.core.training import SessionResult, session_result_from_trace
from repro.env.trace import FrameRecord, Trace
from repro.errors import ExperimentError, StoreError
from repro.obs import bus as _obs
from repro.runtime.job import CACHE_SCHEMA_VERSION
from repro.store import read_scalar_trace, write_scalar_trace

#: Environment variable that overrides the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable that overrides the sidecar-blob frame threshold.
CACHE_BLOB_ENV = "REPRO_CACHE_BLOB_FRAMES"

#: Traces at least this many frames long are stored as columnar sidecar
#: blobs instead of inline JSON rows.
DEFAULT_BLOB_THRESHOLD_FRAMES = 512

#: Column order used by the serialised trace payload.
_TRACE_FIELDS = tuple(f.name for f in dataclasses.fields(FrameRecord))

_BLOB_SUFFIX = ".blob"
_PAYLOAD_SUFFIX = ".json.gz"


def default_cache_dir() -> Path:
    """The cache directory used when none is given explicitly."""
    override = os.environ.get(CACHE_DIR_ENV, "").strip()
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro-lotus"


def _default_blob_threshold() -> int:
    override = os.environ.get(CACHE_BLOB_ENV, "").strip()
    if override:
        try:
            return max(int(override), 1)
        except ValueError:
            pass
    return DEFAULT_BLOB_THRESHOLD_FRAMES


def _tree_bytes(path: Path) -> int:
    total = 0
    for item in path.rglob("*"):
        with contextlib.suppress(OSError):
            if item.is_file():
                total += item.stat().st_size
    return total


@dataclass(frozen=True)
class CacheStats:
    """Summary of a cache directory's contents.

    Attributes:
        entries: Number of stored session results.
        total_bytes: Total size of the stored payloads on disk, sidecar
            blobs included.
        blob_bytes: Portion of ``total_bytes`` held in sidecar blobs.
    """

    entries: int
    total_bytes: int
    blob_bytes: int = 0


@dataclass(frozen=True)
class CacheEntry:
    """One stored result's on-disk footprint.

    Attributes:
        key: The job hash the entry is stored under.
        path: Payload path on disk.
        size_bytes: Compressed payload size plus the entry's sidecar blob,
            if it has one.
        modified: Last-modified time (epoch seconds) — entries are written
            once, so this is effectively the completion time of the job.
        blob_bytes: Size of the entry's columnar sidecar blob (0 when the
            trace is inline JSON).
    """

    key: str
    path: Path
    size_bytes: int
    modified: float
    blob_bytes: int = 0


class ResultCache:
    """Content-addressed store of completed session results.

    Entries are sharded into two-character subdirectories (like Git objects)
    so that very large sweeps do not pile tens of thousands of files into a
    single directory.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        blob_threshold_frames: int | None = None,
    ):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.blob_threshold_frames = (
            _default_blob_threshold()
            if blob_threshold_frames is None
            else max(int(blob_threshold_frames), 1)
        )

    # -- paths ---------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """Payload path of a cache key."""
        if not key:
            raise ExperimentError("cache key must be a non-empty string")
        return self.root / key[:2] / f"{key}{_PAYLOAD_SUFFIX}"

    def blob_dir_for(self, key: str) -> Path:
        """Sidecar-blob directory of a cache key (may not exist)."""
        return self.path_for(key).parent / f"{key}{_BLOB_SUFFIX}"

    def contains(self, key: str) -> bool:
        """Whether a result is stored under ``key``."""
        return self.path_for(key).exists()

    def _iter_entries(self) -> Iterator[Path]:
        if not self.root.exists():
            return
        yield from self.root.glob(f"*/*{_PAYLOAD_SUFFIX}")

    # -- round trip ----------------------------------------------------------

    def _trace_is_contiguous(self, trace: Trace) -> bool:
        records = trace.records
        base = records[0].index if records else 0
        return all(record.index == base + i for i, record in enumerate(records))

    def store(self, key: str, result: SessionResult) -> Path:
        """Persist ``result`` under ``key`` and return the payload path.

        Writes go through temporary files and atomic renames so a crashed
        or interrupted run never leaves a truncated payload behind.  Traces
        of at least ``blob_threshold_frames`` frames (with contiguous frame
        indices) are written as a columnar sidecar blob *before* the JSON
        payload that references it — the payload is the commit point, so a
        crash in between leaves only an orphaned blob, never a payload
        pointing at a missing or partial blob.
        """
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "policy_name": result.policy_name,
            "fields": list(_TRACE_FIELDS),
            "losses": [float(v) for v in result.losses],
            "rewards": [float(v) for v in result.rewards],
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        use_blob = len(
            result.trace
        ) >= self.blob_threshold_frames and self._trace_is_contiguous(result.trace)
        if use_blob:
            blob_dir = self.blob_dir_for(key)
            tmp_dir = Path(
                tempfile.mkdtemp(dir=path.parent, prefix=f".{key}{_BLOB_SUFFIX}-")
            )
            try:
                write_scalar_trace(result.trace, tmp_dir)
                if blob_dir.exists():
                    shutil.rmtree(blob_dir)
                os.replace(tmp_dir, blob_dir)
            except BaseException:
                shutil.rmtree(tmp_dir, ignore_errors=True)
                raise
            payload["trace_blob"] = blob_dir.name
            payload["num_frames"] = len(result.trace)
            if _obs.active():
                _obs.inc("cache.blob_bytes_written", _tree_bytes(blob_dir))
        else:
            payload["records"] = [
                [getattr(record, name) for name in _TRACE_FIELDS]
                for record in result.trace
            ]
        # Unique temp name per writer: two processes storing the same key
        # concurrently (shared cache directory) must not clobber each
        # other's half-written payload before the atomic rename.
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as raw:
                with gzip.open(raw, "wt", encoding="utf-8") as handle:
                    json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        _obs.inc("cache.stores")
        if not use_blob:
            # A smaller re-store under the same key supersedes any stale
            # sidecar blob from a previous schema or threshold.
            stale = self.blob_dir_for(key)
            if stale.exists():
                shutil.rmtree(stale, ignore_errors=True)
        return path

    def load(self, key: str) -> Optional[SessionResult]:
        """Load the result stored under ``key``; ``None`` on miss.

        Entries written by an incompatible schema version, or corrupted on
        disk — including missing, truncated or tampered sidecar blobs — are
        treated as misses (and are overwritten by the next store) rather
        than raised, so a stale cache can never break a sweep.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            with gzip.open(path, "rt", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, EOFError, json.JSONDecodeError):
            return None
        if payload.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        if payload.get("fields") != list(_TRACE_FIELDS):
            return None
        blob_name = payload.get("trace_blob")
        if blob_name is not None:
            # The reference is a bare directory name inside the entry's
            # shard; reject anything path-like outright.
            if Path(blob_name).name != blob_name:
                return None
            try:
                trace = read_scalar_trace(path.parent / blob_name)
            except StoreError:
                return None
            if _obs.active():
                _obs.inc("cache.blob_bytes_read", _tree_bytes(path.parent / blob_name))
            if len(trace) != payload.get("num_frames", len(trace)):
                return None
        else:
            trace = Trace(
                [
                    FrameRecord(**dict(zip(_TRACE_FIELDS, row)))
                    for row in payload["records"]
                ]
            )
        return session_result_from_trace(
            payload["policy_name"],
            trace,
            losses=payload.get("losses", []),
            rewards=payload.get("rewards", []),
        )

    # -- maintenance ---------------------------------------------------------

    def stats(self) -> CacheStats:
        """Entry count and total size (payloads plus blobs) of the cache."""
        entries = 0
        total = 0
        blobs = 0
        for entry in self.entries():
            entries += 1
            total += entry.size_bytes
            blobs += entry.blob_bytes
        return CacheStats(entries=entries, total_bytes=total, blob_bytes=blobs)

    def entries(self) -> List[CacheEntry]:
        """Every stored entry with its on-disk size, newest first.

        ``size_bytes`` covers the payload *and* its sidecar blob, so
        ``cache list`` and prune decisions see the true footprint.  Entries
        deleted between the directory scan and the stat (another process
        pruning concurrently) are skipped, not raised.
        """
        items: List[CacheEntry] = []
        for path in self._iter_entries():
            try:
                stat = path.stat()
            except FileNotFoundError:
                continue
            key = path.name[: -len(_PAYLOAD_SUFFIX)]
            blob = path.parent / f"{key}{_BLOB_SUFFIX}"
            blob_bytes = _tree_bytes(blob) if blob.is_dir() else 0
            items.append(
                CacheEntry(
                    key=key,
                    path=path,
                    size_bytes=stat.st_size + blob_bytes,
                    modified=stat.st_mtime,
                    blob_bytes=blob_bytes,
                )
            )
        items.sort(key=lambda entry: (-entry.modified, entry.key))
        return items

    def _remove_entry(self, entry: CacheEntry) -> None:
        with contextlib.suppress(FileNotFoundError):
            entry.path.unlink()
        blob = entry.path.parent / f"{entry.key}{_BLOB_SUFFIX}"
        if blob.is_dir():
            shutil.rmtree(blob, ignore_errors=True)

    def _remove_orphan_blobs(self) -> None:
        """Drop blob directories whose payload no longer exists (a crash
        between blob write and payload commit, or an interrupted prune)."""
        if not self.root.exists():
            return
        for blob in self.root.glob(f"*/*{_BLOB_SUFFIX}"):
            if not blob.is_dir():
                continue
            key = blob.name[: -len(_BLOB_SUFFIX)]
            if not (blob.parent / f"{key}{_PAYLOAD_SUFFIX}").exists():
                shutil.rmtree(blob, ignore_errors=True)

    def _remove_empty_shards(self) -> None:
        if self.root.exists():
            for shard in self.root.iterdir():
                if shard.is_dir() and not any(shard.iterdir()):
                    shard.rmdir()

    def prune(
        self,
        keep_latest: int | None = None,
        max_age_days: float | None = None,
        now: float | None = None,
        dry_run: bool = False,
    ) -> int:
        """Delete old entries (payloads and blobs); returns the number removed.

        Args:
            keep_latest: Keep only the N most recently written entries.
            max_age_days: Delete entries older than this many days.
            now: Reference time (epoch seconds; defaults to the current
                time) — injectable for tests.
            dry_run: Report how many entries *would* be removed without
                deleting anything.

        At least one criterion must be given; when both are, an entry is
        removed if *either* applies.  Long eval-matrix campaigns use this to
        keep the result cache bounded.
        """
        if keep_latest is None and max_age_days is None:
            raise ExperimentError("prune needs keep_latest and/or max_age_days")
        if keep_latest is not None and keep_latest < 0:
            raise ExperimentError("keep_latest must be non-negative")
        if max_age_days is not None and max_age_days < 0:
            raise ExperimentError("max_age_days must be non-negative")
        reference = time.time() if now is None else now
        entries = self.entries()  # newest first
        doomed = {}
        if keep_latest is not None:
            for entry in entries[keep_latest:]:
                doomed[entry.path] = entry
        if max_age_days is not None:
            cutoff = reference - max_age_days * 86_400.0
            for entry in entries:
                if entry.modified < cutoff:
                    doomed[entry.path] = entry
        if dry_run:
            return len(doomed)
        for entry in doomed.values():
            self._remove_entry(entry)
        self._remove_orphan_blobs()
        self._remove_empty_shards()
        return len(doomed)

    def clear(self) -> int:
        """Delete every stored entry (and blob); returns the number removed."""
        removed = 0
        for entry in self.entries():
            self._remove_entry(entry)
            removed += 1
        self._remove_orphan_blobs()
        self._remove_empty_shards()
        return removed
