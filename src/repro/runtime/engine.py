"""The experiment execution engine.

:class:`ExperimentRuntime` turns a list of :class:`~repro.runtime.job.ExperimentJob`
objects into :class:`~repro.core.training.SessionResult` objects, using:

* an optional :class:`~repro.runtime.cache.ResultCache` consulted before any
  work is scheduled (and updated after every completed job), and
* the shared persistent worker pool (:mod:`repro.runtime.pool`) for
  ``max_workers > 1`` — workers are spawned once per process and reused
  across ``run()`` calls instead of rebuilt per call — with a deterministic
  in-process serial path for ``max_workers = 1`` and a per-call
  ``ProcessPoolExecutor`` fallback when ``REPRO_POOL=0``.

Every job is fully self-describing and freshly seeded, so the parallel and
serial paths produce identical results; the engine preserves the input
order of the jobs in its output regardless of completion order.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.training import SessionResult
from repro.errors import ExperimentError
from repro.runtime.cache import ResultCache
from repro.runtime.job import ExperimentJob
from repro.obs import bus as _obs
from repro.runtime.pool import PoolTask, pool_enabled, shared_pool

#: Environment variable consulted by :func:`default_worker_count`.
WORKERS_ENV = "REPRO_WORKERS"

ProgressCallback = Callable[[int, int, ExperimentJob, bool], None]


def default_worker_count() -> int:
    """Worker count used when none is given: ``REPRO_WORKERS`` or the CPU count."""
    override = os.environ.get(WORKERS_ENV, "").strip()
    if override:
        return max(1, int(override))
    return max(1, os.cpu_count() or 1)


def execute_job(job: ExperimentJob) -> SessionResult:
    """Run one job to completion in the current process.

    This is the module-level entry point the process pool pickles and calls
    in worker processes; it delegates to the experiment layer's single-cell
    primitive (imported lazily to keep the runtime importable below
    :mod:`repro.analysis` in the layer stack).
    """
    from repro.analysis.experiments import execute_setting

    return execute_setting(
        job.setting,
        job.method,
        ambient=job.ambient,
        domain_datasets=job.domain_datasets,
        faults=job.faults,
    )


def _execute_job_observed(job: ExperimentJob):
    """Pool-executor wrapper: run a job and return its obs snapshot too.

    Used by the :class:`ProcessPoolExecutor` fallback when the parent is
    observing — executor workers have no pipe protocol to ride the obs
    flag on, so it travels in the submitted callable instead.
    """
    _obs.enable(fresh=True)
    try:
        result = execute_job(job)
        return result, _obs.registry().snapshot()
    finally:
        _obs.disable()


def scenario_jobs(scenario, num_sessions: int | None = None) -> List[ExperimentJob]:
    """Expand a scenario into one cacheable scalar job per session.

    The process-pool counterpart of the vectorized scenario runner: session
    ``i`` of a :class:`~repro.scenarios.ScenarioSpec` becomes the job
    ``(spec.setting() at seed spec.seed + i, spec.method, spec.ambient)``,
    and a :class:`~repro.scenarios.FleetScenario` expands every member the
    same way — so a scenario can run either as one in-process batched fleet
    (:func:`repro.runtime.fleet.run_scenario`) or as independent cached
    cells across worker processes, with identical per-session results.
    Fleet-only methods (``lotus-fleet``) have no scalar cell and are
    rejected.
    """
    from repro.scenarios import FleetScenario, ScenarioSpec

    if isinstance(scenario, ScenarioSpec):
        scenario = FleetScenario(
            name=scenario.name, members=(scenario,), description=scenario.description
        )
    if not isinstance(scenario, FleetScenario):
        raise ExperimentError(
            f"expected a ScenarioSpec or FleetScenario, got {type(scenario).__name__}"
        )
    jobs: List[ExperimentJob] = []
    for assignment in scenario.session_assignments(num_sessions):
        spec = assignment.spec
        if spec.method == "lotus-fleet":
            raise ExperimentError(
                "lotus-fleet trains one shared network across a fleet; run it "
                "through repro.runtime.fleet.run_scenario instead"
            )
        jobs.append(
            ExperimentJob(
                setting=spec.setting().with_overrides(seed=assignment.seed),
                method=spec.method,
                ambient=spec.ambient,
                faults=spec.faults,
            )
        )
    return jobs


@dataclass
class RuntimeReport:
    """Bookkeeping of one :meth:`ExperimentRuntime.run_jobs` call.

    Attributes:
        total: Number of jobs requested.
        cache_hits: Jobs answered from the cache without executing.
        executed: Jobs actually run (serially or on the pool).
        uncacheable: Jobs that could not be keyed (always executed).
    """

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    uncacheable: int = 0


class ExperimentRuntime:
    """Concurrent, cached executor for experiment jobs.

    Args:
        max_workers: Size of the worker pool.  ``1`` (the default) runs
            every job serially in-process — useful for debugging, for exact
            step-through determinism, and as the fallback on constrained
            machines.  ``None`` uses :func:`default_worker_count`.
        cache: Optional result cache.  ``None`` disables caching entirely.

    The report of the most recent :meth:`run_jobs` call is available as
    :attr:`last_report`.
    """

    def __init__(
        self,
        max_workers: int | None = 1,
        cache: ResultCache | None = None,
    ):
        if max_workers is None:
            max_workers = default_worker_count()
        if max_workers < 1:
            raise ExperimentError("max_workers must be at least 1")
        self.max_workers = max_workers
        self.cache = cache
        self.last_report = RuntimeReport()

    # -- single job ----------------------------------------------------------

    def run(self, job: ExperimentJob) -> SessionResult:
        """Run one job (through the cache, in-process)."""
        return self.run_jobs([job])[0]

    # -- scenarios -----------------------------------------------------------

    def run_scenario(
        self,
        scenario,
        num_sessions: int | None = None,
        progress: ProgressCallback | None = None,
    ) -> List[SessionResult]:
        """Run every session of a scenario as independent cached cells.

        Accepts a :class:`~repro.scenarios.ScenarioSpec`, a
        :class:`~repro.scenarios.FleetScenario`, or a registered scenario
        name; see :func:`scenario_jobs` for the expansion.  Results come
        back in global session order.
        """
        if isinstance(scenario, str):
            from repro.scenarios import build_scenario

            scenario = build_scenario(scenario)
        return self.run_jobs(
            scenario_jobs(scenario, num_sessions=num_sessions), progress=progress
        )

    # -- sweeps --------------------------------------------------------------

    def run_jobs(
        self,
        jobs: Sequence[ExperimentJob],
        progress: ProgressCallback | None = None,
    ) -> List[SessionResult]:
        """Run ``jobs``, returning results in the same order as the input.

        Cached jobs are answered immediately; the remainder is executed on
        the worker pool (or serially for ``max_workers=1``) and stored back
        into the cache.  ``progress`` is invoked once per completed job with
        ``(done_count, total, job, was_cache_hit)``.
        """
        report = RuntimeReport(total=len(jobs))
        self.last_report = report
        results: List[Optional[SessionResult]] = [None] * len(jobs)
        keys: List[Optional[str]] = [None] * len(jobs)
        pending: List[int] = []
        done = 0

        with _obs.span("runtime.run_jobs", jobs=len(jobs)):
            for index, job in enumerate(jobs):
                key = job.cache_key() if self.cache is not None else None
                if self.cache is not None and key is None:
                    report.uncacheable += 1
                    _obs.inc("cache.uncacheable")
                keys[index] = key
                cached = (
                    self.cache.load(key) if (self.cache is not None and key) else None
                )
                if cached is not None:
                    results[index] = cached
                    report.cache_hits += 1
                    _obs.inc("cache.hits")
                    done += 1
                    if progress is not None:
                        progress(done, len(jobs), job, True)
                else:
                    if self.cache is not None and key:
                        _obs.inc("cache.misses")
                    pending.append(index)

            def finish(index: int, result: SessionResult) -> None:
                nonlocal done
                results[index] = result
                if self.cache is not None and keys[index]:
                    self.cache.store(keys[index], result)
                report.executed += 1
                done += 1
                if progress is not None:
                    progress(done, len(jobs), jobs[index], False)

            if self.max_workers == 1 or len(pending) <= 1:
                for index in pending:
                    finish(index, execute_job(jobs[index]))
            elif pool_enabled():
                # The shared persistent pool: spawned once per process, reused
                # across run() calls, clamped to the CPU count and scheduled
                # in waves when pending jobs exceed workers.
                pool = shared_pool()
                pool.ensure_workers(min(self.max_workers, len(pending)))
                tasks = [
                    PoolTask(kind="job", args=(jobs[index],)) for index in pending
                ]
                pool.run_tasks(
                    tasks,
                    on_result=lambda position, result: finish(
                        pending[position], result
                    ),
                )
            else:
                workers = min(
                    self.max_workers, len(pending), max(1, os.cpu_count() or 1)
                )
                observing = _obs.active()
                target = _execute_job_observed if observing else execute_job
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = {
                        index: pool.submit(target, jobs[index]) for index in pending
                    }
                    for index in pending:
                        outcome = futures[index].result()
                        if observing:
                            result, snapshot = outcome
                            _obs.registry().merge(snapshot, origin="executor")
                        else:
                            result = outcome
                        finish(index, result)

        if any(result is None for result in results):
            raise ExperimentError("internal error: not every job produced a result")
        return list(results)  # type: ignore[arg-type]
