"""``python -m repro`` — the experiment runtime's command-line entry point."""

from __future__ import annotations

import sys

from repro.runtime.cli import main

if __name__ == "__main__":
    sys.exit(main())
