"""Chunked on-disk columnar trace store with zero-copy memory-mapped reads.

A trace store is a directory holding fixed-dtype column blocks of ``N``
frames each plus a JSON manifest:

``manifest.json``
    Format tag and version, fleet geometry, column schema (names and numpy
    dtype strings), the dataset string table, and the chunk index with one
    per-chunk SHA-256 digest.

``chunk-000000.bin``, ``chunk-000001.bin``, ...
    One binary blob per chunk of up to ``chunk_frames`` frames.  Inside a
    chunk every column is a contiguous C-order ``(frames, num_sessions)``
    block; columns are laid out in descending itemsize order (8-byte
    numerics, then the ``int32`` dataset codes, then booleans) so every
    block starts naturally aligned for its dtype.

Both files are written via atomic spool-rename (temp file + ``os.replace``)
and the manifest is written *last*, so a crashed writer never leaves a
readable-but-wrong store: either the manifest exists and every chunk it
indexes is complete, or the directory is not a store at all.

:class:`MappedFleetTrace` serves frames, per-session scalar traces and
column windows from ``numpy.memmap`` views without loading chunk files into
memory, and round-trips byte-identical to the in-memory
:class:`~repro.env.fleet.FleetTrace` it was written from.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.env.fleet import _FRAME_RESULT_ARRAY_FIELDS, FleetFrameResult, FleetTrace
from repro.env.trace import FrameRecord, Trace
from repro.errors import StoreError

STORE_FORMAT = "repro-store/v1"
STORE_FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"
DEFAULT_CHUNK_FRAMES = 256

#: Synthetic int32 column recording each session's dataset as an index into
#: the manifest's dataset string table.
DATASET_CODE_COLUMN = "dataset_code"

_CHUNK_NAME = "chunk-{:06d}.bin"

# Dtypes the on-disk format accepts.  Everything the simulator emits is
# float64 / int64 / bool; the dataset dictionary codes are int32.
_ALLOWED_DTYPES = frozenset({"<f8", "<i8", "|b1", "<i4"})


def _column_order(dtypes: Dict[str, np.dtype]) -> List[str]:
    """Schema column order: descending itemsize, stable in field order.

    With the chunk laid out largest-itemsize first, every column block's
    byte offset is a multiple of its own itemsize (chunk files start
    page-aligned under ``mmap``), so memmap views never straddle alignment.
    """
    names = list(_FRAME_RESULT_ARRAY_FIELDS) + [DATASET_CODE_COLUMN]
    return sorted(names, key=lambda name: -dtypes[name].itemsize)


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


class FleetTraceWriter:
    """Incremental chunked writer for fleet traces.

    Frames are appended one at a time (the episode loops use the writer
    directly as a trace *sink*), buffered by reference, and flushed to disk
    every ``chunk_frames`` frames, so peak writer memory is one chunk
    regardless of episode length.  ``close()`` flushes the tail chunk and
    writes the manifest; until then the directory is not a readable store.
    """

    def __init__(
        self,
        path: Union[str, Path],
        num_sessions: int,
        chunk_frames: int = DEFAULT_CHUNK_FRAMES,
        start_index: Optional[int] = None,
    ):
        if num_sessions <= 0:
            raise StoreError("num_sessions must be positive")
        if chunk_frames <= 0:
            raise StoreError("chunk_frames must be positive")
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        if (self.path / MANIFEST_NAME).exists():
            raise StoreError(f"{self.path} already contains a trace store")
        self.num_sessions = num_sessions
        self.chunk_frames = chunk_frames
        self._start_index = start_index
        self._frames_written = 0
        self._dtypes: Dict[str, np.dtype] = {}
        self._order: List[str] = []
        self._buffers: Dict[str, List[np.ndarray]] = {}
        self._chunks: List[dict] = []
        self._dataset_table: List[str] = []
        self._dataset_codes: Dict[str, int] = {}
        self._last_datasets: Optional[tuple] = None
        self._last_codes: Optional[np.ndarray] = None
        self._closed = False

    # -- schema ------------------------------------------------------------

    def _init_schema(self, frame: FleetFrameResult) -> None:
        dtypes: Dict[str, np.dtype] = {}
        for name in _FRAME_RESULT_ARRAY_FIELDS:
            dtype = np.asarray(getattr(frame, name)).dtype
            if dtype.str not in _ALLOWED_DTYPES:
                raise StoreError(
                    f"column {name!r} has unsupported dtype {dtype.str!r}"
                )
            dtypes[name] = dtype
        dtypes[DATASET_CODE_COLUMN] = np.dtype(np.int32)
        self._dtypes = dtypes
        self._order = _column_order(dtypes)
        self._buffers = {name: [] for name in self._order}

    def _encode_datasets(self, datasets: tuple) -> np.ndarray:
        if datasets == self._last_datasets and self._last_codes is not None:
            return self._last_codes
        codes = np.empty(self.num_sessions, dtype=np.int32)
        for i, name in enumerate(datasets):
            code = self._dataset_codes.get(name)
            if code is None:
                code = len(self._dataset_table)
                self._dataset_codes[name] = code
                self._dataset_table.append(str(name))
            codes[i] = code
        self._last_datasets = datasets
        self._last_codes = codes
        return codes

    # -- appending ---------------------------------------------------------

    @property
    def frames_buffered(self) -> int:
        return len(self._buffers[self._order[0]]) if self._order else 0

    @property
    def frames_written(self) -> int:
        """Frames accepted so far (buffered plus flushed)."""
        return self._frames_written

    @property
    def start_index(self) -> int:
        return 0 if self._start_index is None else self._start_index

    def append(self, frame: FleetFrameResult) -> None:
        """Append one completed fleet frame; flush a chunk when full."""
        if self._closed:
            raise StoreError("writer is closed")
        if frame.num_sessions != self.num_sessions:
            raise StoreError(
                f"frame has {frame.num_sessions} sessions, store expects "
                f"{self.num_sessions}"
            )
        if self._start_index is None:
            self._start_index = int(frame.index)
        expected = self._start_index + self._frames_written
        if int(frame.index) != expected:
            raise StoreError(
                f"non-contiguous frame index {frame.index} (expected {expected})"
            )
        if not self._order:
            self._init_schema(frame)
        for name in _FRAME_RESULT_ARRAY_FIELDS:
            array = np.asarray(getattr(frame, name))
            if array.dtype != self._dtypes[name]:
                raise StoreError(
                    f"column {name!r} changed dtype mid-trace: "
                    f"{array.dtype.str!r} != {self._dtypes[name].str!r}"
                )
            if array.shape != (self.num_sessions,):
                raise StoreError(
                    f"column {name!r} has shape {array.shape}, expected "
                    f"({self.num_sessions},)"
                )
            self._buffers[name].append(array)
        self._buffers[DATASET_CODE_COLUMN].append(self._encode_datasets(frame.datasets))
        self._frames_written += 1
        if self.frames_buffered >= self.chunk_frames:
            self._flush_chunk()

    def _flush_chunk(self) -> None:
        frames = self.frames_buffered
        if frames == 0:
            return
        digest = hashlib.sha256()
        parts: List[bytes] = []
        for name in self._order:
            block = np.stack(self._buffers[name])
            raw = block.tobytes()
            digest.update(raw)
            parts.append(raw)
            self._buffers[name].clear()
        payload = b"".join(parts)
        start = self.start_index + self._frames_written - frames
        filename = _CHUNK_NAME.format(len(self._chunks))
        _atomic_write_bytes(self.path / filename, payload)
        self._chunks.append(
            {
                "file": filename,
                "start": start,
                "frames": frames,
                "bytes": len(payload),
                "sha256": digest.hexdigest(),
            }
        )

    # -- finalising --------------------------------------------------------

    def close(self) -> Path:
        """Flush the tail chunk, write the manifest, and seal the store."""
        if self._closed:
            return self.path / MANIFEST_NAME
        if self._frames_written == 0:
            raise StoreError("cannot seal an empty trace store (no frames appended)")
        self._flush_chunk()
        manifest = {
            "format": STORE_FORMAT,
            "version": STORE_FORMAT_VERSION,
            "num_sessions": self.num_sessions,
            "num_frames": self._frames_written,
            "chunk_frames": self.chunk_frames,
            "start_index": self.start_index,
            "columns": [
                {"name": name, "dtype": self._dtypes[name].str} for name in self._order
            ],
            "datasets": self._dataset_table,
            "chunks": self._chunks,
        }
        _atomic_write_bytes(
            self.path / MANIFEST_NAME,
            json.dumps(manifest, indent=1).encode("utf-8"),
        )
        self._closed = True
        return self.path / MANIFEST_NAME

    def __enter__(self) -> "FleetTraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        # On error, deliberately leave the store unsealed (no manifest):
        # readers reject it instead of serving a partial trace.


class MappedFleetTrace:
    """Zero-copy reader over a sealed trace store.

    Chunk files are memory-mapped lazily and served as dtype views; frames,
    session slices and column windows are all constructed from those views
    without reading whole files.  Construction validates the manifest and
    every chunk's size eagerly (truncation is a :class:`StoreError` at open
    time); content hashes are checked on :meth:`verify` (or ``verify=True``).

    At most ``map_cache_chunks`` chunk maps are held at once (LRU): once a
    streaming pass moves past a chunk its mapping is dropped, so the
    reader's resident set stays bounded by a few chunks regardless of store
    size.  Views handed out earlier stay valid — they keep their backing
    map alive through numpy's base-reference chain.
    """

    def __init__(
        self,
        path: Union[str, Path],
        verify: bool = False,
        map_cache_chunks: int = 8,
    ):
        if map_cache_chunks < 1:
            raise StoreError("map_cache_chunks must be at least 1")
        self._map_cache_chunks = int(map_cache_chunks)
        path = Path(path)
        self.path = path.parent if path.name == MANIFEST_NAME else path
        manifest_path = self.path / MANIFEST_NAME
        if not manifest_path.is_file():
            raise StoreError(f"{self.path} is not a trace store: no {MANIFEST_NAME}")
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise StoreError(f"corrupt store manifest {manifest_path}: {exc}") from exc
        self._manifest = self._validate_manifest(manifest)
        self.num_sessions: int = manifest["num_sessions"]
        self.num_frames: int = manifest["num_frames"]
        self.chunk_frames: int = manifest["chunk_frames"]
        self._start_index: int = manifest["start_index"]
        self._datasets: Tuple[str, ...] = tuple(manifest["datasets"])
        self._dtypes: Dict[str, np.dtype] = {
            column["name"]: np.dtype(column["dtype"]) for column in manifest["columns"]
        }
        self._order: List[str] = [column["name"] for column in manifest["columns"]]
        self._chunks: List[dict] = manifest["chunks"]
        self._offsets: List[Dict[str, int]] = []
        self._validate_chunks()
        self._maps: "OrderedDict[int, np.memmap]" = OrderedDict()
        if verify:
            self.verify()

    # -- validation --------------------------------------------------------

    def _validate_manifest(self, manifest: object) -> dict:
        if not isinstance(manifest, dict):
            raise StoreError(f"{self.path}: manifest is not a JSON object")
        fmt = manifest.get("format")
        if fmt != STORE_FORMAT:
            raise StoreError(
                f"{self.path}: unknown store format {fmt!r} "
                f"(expected {STORE_FORMAT!r})"
            )
        version = manifest.get("version")
        if version != STORE_FORMAT_VERSION:
            raise StoreError(
                f"{self.path}: store version {version!r} is not supported "
                f"(expected {STORE_FORMAT_VERSION})"
            )
        required = (
            "num_sessions",
            "num_frames",
            "chunk_frames",
            "start_index",
            "columns",
            "datasets",
            "chunks",
        )
        for key in required:
            if key not in manifest:
                raise StoreError(f"{self.path}: manifest is missing {key!r}")
        names = [column.get("name") for column in manifest["columns"]]
        expected = set(_FRAME_RESULT_ARRAY_FIELDS) | {DATASET_CODE_COLUMN}
        if set(names) != expected or len(names) != len(expected):
            raise StoreError(
                f"{self.path}: manifest column schema does not match "
                f"{len(expected)} expected trace columns"
            )
        for column in manifest["columns"]:
            if column.get("dtype") not in _ALLOWED_DTYPES:
                raise StoreError(
                    f"{self.path}: column {column.get('name')!r} has "
                    f"unsupported dtype {column.get('dtype')!r}"
                )
        return manifest

    def _validate_chunks(self) -> None:
        frame_bytes = sum(
            self._dtypes[name].itemsize * self.num_sessions for name in self._order
        )
        expected_start = self._start_index
        total = 0
        for entry in self._chunks:
            frames = int(entry["frames"])
            if frames <= 0:
                raise StoreError(f"{self.path}: chunk {entry['file']} has no frames")
            if int(entry["start"]) != expected_start:
                raise StoreError(
                    f"{self.path}: chunk {entry['file']} starts at frame "
                    f"{entry['start']}, expected {expected_start}"
                )
            expected_bytes = frames * frame_bytes
            if int(entry["bytes"]) != expected_bytes:
                raise StoreError(
                    f"{self.path}: chunk {entry['file']} declares "
                    f"{entry['bytes']} bytes, layout requires {expected_bytes}"
                )
            chunk_path = self.path / entry["file"]
            try:
                actual = chunk_path.stat().st_size
            except OSError as exc:
                raise StoreError(
                    f"{self.path}: chunk {entry['file']} is missing"
                ) from exc
            if actual != expected_bytes:
                raise StoreError(
                    f"{self.path}: chunk {entry['file']} is truncated "
                    f"({actual} bytes on disk, {expected_bytes} expected)"
                )
            offsets: Dict[str, int] = {}
            cursor = 0
            for name in self._order:
                offsets[name] = cursor
                cursor += self._dtypes[name].itemsize * self.num_sessions * frames
            self._offsets.append(offsets)
            expected_start += frames
            total += frames
        if total != self.num_frames:
            raise StoreError(
                f"{self.path}: chunk index covers {total} frames, manifest "
                f"declares {self.num_frames}"
            )

    def verify(self) -> None:
        """Re-hash every chunk and raise :class:`StoreError` on tampering."""
        for entry in self._chunks:
            digest = hashlib.sha256()
            with open(self.path / entry["file"], "rb") as handle:
                for block in iter(lambda: handle.read(1 << 20), b""):
                    digest.update(block)
            if digest.hexdigest() != entry["sha256"]:
                raise StoreError(
                    f"{self.path}: chunk {entry['file']} failed its SHA-256 "
                    f"integrity check"
                )

    # -- low-level views ---------------------------------------------------

    def _chunk_map(self, chunk: int) -> np.memmap:
        mapped = self._maps.get(chunk)
        if mapped is None:
            mapped = np.memmap(
                self.path / self._chunks[chunk]["file"], dtype=np.uint8, mode="r"
            )
            self._maps[chunk] = mapped
            while len(self._maps) > self._map_cache_chunks:
                self._maps.popitem(last=False)
        else:
            self._maps.move_to_end(chunk)
        return mapped

    def _column_block(self, chunk: int, name: str) -> np.ndarray:
        """Column ``name`` of chunk ``chunk`` as a ``(frames, N)`` view."""
        frames = self._chunks[chunk]["frames"]
        dtype = self._dtypes[name]
        offset = self._offsets[chunk][name]
        nbytes = dtype.itemsize * self.num_sessions * frames
        raw = self._chunk_map(chunk)[offset : offset + nbytes]
        return raw.view(dtype).reshape(frames, self.num_sessions)

    def _locate(self, frame: int) -> Tuple[int, int]:
        """Map a 0-based frame offset to ``(chunk, row)``."""
        cursor = 0
        for chunk, entry in enumerate(self._chunks):
            if frame < cursor + entry["frames"]:
                return chunk, frame - cursor
            cursor += entry["frames"]
        raise StoreError(f"frame offset {frame} out of range [0, {self.num_frames})")

    # -- public read API ---------------------------------------------------

    @property
    def start_index(self) -> int:
        """Global index of the first stored frame."""
        return self._start_index

    @property
    def total_frames(self) -> int:
        """Aggregate frames processed across the fleet (frames x sessions)."""
        return self.num_frames * self.num_sessions

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(self._order)

    def __len__(self) -> int:
        return self.num_frames

    def iter_column_chunks(
        self, name: str, start: int = 0, stop: Optional[int] = None
    ) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(frame_offset, block)`` zero-copy views of one column.

        Blocks are at most one chunk long; iterating a column touches one
        chunk's pages at a time, which is what keeps streaming reports in
        bounded memory.
        """
        if name not in self._dtypes:
            raise StoreError(f"unknown column {name!r}")
        stop = self.num_frames if stop is None else min(stop, self.num_frames)
        cursor = 0
        for chunk, entry in enumerate(self._chunks):
            frames = entry["frames"]
            lo = max(start, cursor)
            hi = min(stop, cursor + frames)
            if lo < hi:
                block = self._column_block(chunk, name)[lo - cursor : hi - cursor]
                yield lo, block
            cursor += frames
            if cursor >= stop:
                break

    def column_window(
        self, name: str, start: int = 0, stop: Optional[int] = None
    ) -> np.ndarray:
        """Frames ``[start, stop)`` of one column as a ``(frames, N)`` array.

        A window inside a single chunk is a zero-copy memmap view; a window
        spanning chunks is assembled into one freshly allocated array.
        """
        stop = self.num_frames if stop is None else min(stop, self.num_frames)
        blocks = list(self.iter_column_chunks(name, start, stop))
        if len(blocks) == 1 and blocks[0][1].shape[0] == stop - start:
            return blocks[0][1]
        out = np.empty((max(stop - start, 0), self.num_sessions), dtype=self._dtypes[name])
        for offset, block in blocks:
            out[offset - start : offset - start + block.shape[0]] = block
        return out

    def datasets_window(
        self, start: int = 0, stop: Optional[int] = None
    ) -> List[tuple]:
        """Per-frame dataset-name tuples for frames ``[start, stop)``."""
        table = self._datasets
        rows: List[tuple] = []
        last_codes: Optional[bytes] = None
        last_row: Optional[tuple] = None
        for _, block in self.iter_column_chunks(DATASET_CODE_COLUMN, start, stop):
            for codes in block:
                key = codes.tobytes()
                if key != last_codes:
                    last_row = tuple(table[code] for code in codes)
                    last_codes = key
                rows.append(last_row)
        return rows

    def __getitem__(self, frame: int) -> FleetFrameResult:
        """Frame ``frame`` (0-based offset) as memmap-backed views."""
        if frame < 0:
            frame += self.num_frames
        if not 0 <= frame < self.num_frames:
            raise StoreError(f"frame offset {frame} out of range [0, {self.num_frames})")
        chunk, row = self._locate(frame)
        codes = self._column_block(chunk, DATASET_CODE_COLUMN)[row]
        arrays = {
            name: self._column_block(chunk, name)[row]
            for name in _FRAME_RESULT_ARRAY_FIELDS
        }
        return FleetFrameResult(
            index=self._start_index + frame,
            datasets=tuple(self._datasets[code] for code in codes),
            **arrays,
        )

    def __iter__(self) -> Iterator[FleetFrameResult]:
        for frame in range(self.num_frames):
            yield self[frame]

    def session_columns(self, i: int) -> Dict[str, np.ndarray]:
        """Session ``i``'s scalar columns, gathered chunk by chunk."""
        if not 0 <= i < self.num_sessions:
            raise StoreError(f"session {i} out of range [0, {self.num_sessions - 1}]")
        columns: Dict[str, np.ndarray] = {
            name: np.empty(self.num_frames, dtype=self._dtypes[name])
            for name in self._order
        }
        for name in self._order:
            for offset, block in self.iter_column_chunks(name):
                columns[name][offset : offset + block.shape[0]] = block[:, i]
        return columns

    def session_trace(self, i: int) -> Trace:
        """Materialise session ``i``'s scalar :class:`Trace`."""
        columns = self.session_columns(i)
        codes = columns.pop(DATASET_CODE_COLUMN)
        table = self._datasets
        records = [
            FrameRecord(
                index=self._start_index + f,
                dataset=table[codes[f]],
                num_proposals=int(columns["num_proposals"][f]),
                stage1_latency_ms=float(columns["stage1_latency_ms"][f]),
                stage2_latency_ms=float(columns["stage2_latency_ms"][f]),
                total_latency_ms=float(columns["total_latency_ms"][f]),
                latency_constraint_ms=float(columns["latency_constraint_ms"][f]),
                met_constraint=bool(columns["met_constraint"][f]),
                cpu_temperature_c=float(columns["cpu_temperature_c"][f]),
                gpu_temperature_c=float(columns["gpu_temperature_c"][f]),
                cpu_level_stage1=int(columns["cpu_level_stage1"][f]),
                gpu_level_stage1=int(columns["gpu_level_stage1"][f]),
                cpu_level_stage2=int(columns["cpu_level_stage2"][f]),
                gpu_level_stage2=int(columns["gpu_level_stage2"][f]),
                cpu_throttled=bool(columns["cpu_throttled"][f]),
                gpu_throttled=bool(columns["gpu_throttled"][f]),
                ambient_temperature_c=float(columns["ambient_temperature_c"][f]),
                energy_j=float(columns["energy_j"][f]),
            )
            for f in range(self.num_frames)
        ]
        return Trace(records)

    def to_traces(self) -> List[Trace]:
        """Materialise every session's scalar trace."""
        return [self.session_trace(i) for i in range(self.num_sessions)]

    def to_fleet_trace(self) -> FleetTrace:
        """Materialise the whole store as an in-memory :class:`FleetTrace`."""
        trace = FleetTrace(self.num_sessions)
        for frame in self:
            trace.append(frame)
        return trace

    def latencies_ms(self) -> np.ndarray:
        """Total latency as a ``(frames, sessions)`` matrix (materialises)."""
        return np.asarray(self.column_window("total_latency_ms"), dtype=float)

    def constraint_met(self) -> np.ndarray:
        """Constraint satisfaction as a boolean matrix (materialises)."""
        return np.asarray(self.column_window("met_constraint"), dtype=bool)

    def close(self) -> None:
        """Drop the chunk memmaps (views handed out become invalid lazily)."""
        self._maps.clear()


# ---------------------------------------------------------------------------
# Convenience round-trip helpers
# ---------------------------------------------------------------------------


def write_fleet_trace(
    trace: FleetTrace,
    path: Union[str, Path],
    chunk_frames: int = DEFAULT_CHUNK_FRAMES,
) -> Path:
    """Write an in-memory fleet trace to ``path``; returns the manifest path."""
    with FleetTraceWriter(path, trace.num_sessions, chunk_frames=chunk_frames) as writer:
        for frame in trace:
            writer.append(frame)
    return writer.close()


_SCALAR_DTYPES = {
    "num_proposals": np.int64,
    "cpu_level_stage1": np.int64,
    "gpu_level_stage1": np.int64,
    "cpu_level_stage2": np.int64,
    "gpu_level_stage2": np.int64,
    "met_constraint": np.bool_,
    "cpu_throttled": np.bool_,
    "gpu_throttled": np.bool_,
}


def write_scalar_trace(
    trace: Trace,
    path: Union[str, Path],
    chunk_frames: int = DEFAULT_CHUNK_FRAMES,
) -> Path:
    """Write a scalar :class:`Trace` as a one-session store.

    Requires contiguous frame indices (every episode trace has them); raises
    :class:`StoreError` otherwise so callers can fall back to row formats.
    """
    records = trace.records
    if not records:
        raise StoreError("cannot store an empty trace")
    writer = FleetTraceWriter(path, 1, chunk_frames=chunk_frames)
    for record in records:
        arrays = {
            name: np.array([getattr(record, name)], dtype=_SCALAR_DTYPES.get(name, np.float64))
            for name in _FRAME_RESULT_ARRAY_FIELDS
        }
        writer.append(
            FleetFrameResult(index=record.index, datasets=(record.dataset,), **arrays)
        )
    return writer.close()


def read_scalar_trace(path: Union[str, Path]) -> Trace:
    """Read a one-session store written by :func:`write_scalar_trace`."""
    mapped = MappedFleetTrace(path)
    try:
        if mapped.num_sessions != 1:
            raise StoreError(
                f"{mapped.path} holds {mapped.num_sessions} sessions, expected "
                f"a scalar (1-session) store"
            )
        return mapped.session_trace(0)
    finally:
        mapped.close()


def fleet_traces_bitwise_equal(a, b, block_frames: int = 256) -> bool:
    """True iff two trace-likes are byte-identical, compared columnwise.

    Accepts any pairing of :class:`~repro.env.fleet.FleetTrace` and
    :class:`MappedFleetTrace`.  Floats are compared through int64 bit views,
    so even a flipped sign of zero or a differing NaN payload fails; the
    comparison streams ``block_frames`` frames at a time and never
    materialises either trace.
    """
    if a.num_sessions != b.num_sessions or len(a) != len(b):
        return False
    if a.start_index != b.start_index:
        return False
    length = len(a)
    for lo in range(0, length, block_frames):
        hi = min(lo + block_frames, length)
        for name in _FRAME_RESULT_ARRAY_FIELDS:
            block_a = np.ascontiguousarray(a.column_window(name, lo, hi))
            block_b = np.ascontiguousarray(b.column_window(name, lo, hi))
            if block_a.dtype != block_b.dtype:
                return False
            if block_a.dtype.itemsize == 8:
                if not np.array_equal(
                    block_a.view(np.int64), block_b.view(np.int64)
                ):
                    return False
            elif not np.array_equal(block_a, block_b):
                return False
        if a.datasets_window(lo, hi) != b.datasets_window(lo, hi):
            return False
    return True
