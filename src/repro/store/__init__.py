"""Chunked on-disk columnar trace store (see :mod:`repro.store.columnar`)."""

from repro.store.columnar import (
    DATASET_CODE_COLUMN,
    DEFAULT_CHUNK_FRAMES,
    MANIFEST_NAME,
    STORE_FORMAT,
    STORE_FORMAT_VERSION,
    FleetTraceWriter,
    MappedFleetTrace,
    fleet_traces_bitwise_equal,
    read_scalar_trace,
    write_fleet_trace,
    write_scalar_trace,
)

__all__ = [
    "DATASET_CODE_COLUMN",
    "DEFAULT_CHUNK_FRAMES",
    "MANIFEST_NAME",
    "STORE_FORMAT",
    "STORE_FORMAT_VERSION",
    "FleetTraceWriter",
    "MappedFleetTrace",
    "fleet_traces_bitwise_equal",
    "read_scalar_trace",
    "write_fleet_trace",
    "write_scalar_trace",
]
