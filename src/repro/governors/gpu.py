"""GPU governors: ``simple_ondemand``, ``nvhost_podgov`` and ``msm-adreno-tz``.

devfreq GPU governors are up/down controllers on busy-time: when the GPU is
busier than an upper threshold they raise the operating point, when it is
idler than a lower threshold they lower it.  A detector keeps the GPU almost
fully busy, so all of these governors quickly climb to — and then sit at —
the top operating point until hardware thermal throttling intervenes.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.governors.base import GpuGovernor


class SimpleOndemandGovernor(GpuGovernor):
    """Linux devfreq ``simple_ondemand``: threshold-based up/down stepping."""

    name = "simple_ondemand"

    def __init__(self, up_threshold: float = 0.85, down_threshold: float = 0.3, up_step: int = 2):
        if not 0.0 < down_threshold < up_threshold <= 1.0:
            raise ConfigurationError("require 0 < down_threshold < up_threshold <= 1")
        if up_step <= 0:
            raise ConfigurationError("up_step must be positive")
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        self.up_step = up_step

    def select_level(self, utilisation: float, current_level: int, num_levels: int) -> int:
        utilisation = min(max(utilisation, 0.0), 1.0)
        if utilisation >= self.up_threshold:
            return min(num_levels - 1, current_level + self.up_step)
        if utilisation <= self.down_threshold:
            return max(0, current_level - 1)
        return current_level


class NvhostPodgovGovernor(SimpleOndemandGovernor):
    """The Jetson GPU's ``nvhost_podgov`` governor.

    Behaviourally a ``simple_ondemand`` variant with a more aggressive ramp:
    under the sustained load of a detector it reaches the top operating point
    within a couple of frames.
    """

    name = "nvhost_podgov"

    def __init__(self) -> None:
        super().__init__(up_threshold=0.8, down_threshold=0.25, up_step=3)


class MsmAdrenoTzGovernor(SimpleOndemandGovernor):
    """The Snapdragon Adreno ``msm-adreno-tz`` governor.

    Qualcomm's TrustZone-assisted governor also behaves like an aggressive
    busy-time up/down controller at this level of abstraction.
    """

    name = "msm-adreno-tz"

    def __init__(self) -> None:
        super().__init__(up_threshold=0.75, down_threshold=0.2, up_step=2)
