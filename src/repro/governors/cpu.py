"""CPU governors: ``schedutil`` and ``ondemand``.

Both map observed CPU utilisation to a frequency target.  Neither knows
anything about the application: under a GPU-bound detector workload with a
busy host thread they settle at a medium-to-high operating point and keep it
there regardless of temperature or deadline — which is exactly the
"application-agnostic" limitation the paper describes.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.governors.base import CpuGovernor


class SchedutilGovernor(CpuGovernor):
    """The mainline Linux ``schedutil`` governor.

    Selects ``next_freq = margin * max_freq * utilisation`` and maps it to
    the smallest operating point at or above that target (the standard 1.25
    headroom margin).  A one-step-down rate limit mimics the governor's
    reluctance to drop frequency sharply between samples.
    """

    name = "schedutil"

    def __init__(self, margin: float = 1.25, max_step_down: int = 1):
        if margin <= 0:
            raise ConfigurationError("margin must be positive")
        if max_step_down < 0:
            raise ConfigurationError("max_step_down must be non-negative")
        self.margin = margin
        self.max_step_down = max_step_down

    def select_level(self, utilisation: float, current_level: int, num_levels: int) -> int:
        utilisation = min(max(utilisation, 0.0), 1.0)
        target_fraction = min(1.0, self.margin * utilisation)
        # Map the fractional target onto the level index range, rounding up
        # like the cpufreq table lookup does.
        target_level = int(min(num_levels - 1, round(target_fraction * (num_levels - 1) + 0.49)))
        if self.max_step_down and target_level < current_level - self.max_step_down:
            target_level = current_level - self.max_step_down
        return max(0, min(num_levels - 1, target_level))


class OndemandGovernor(CpuGovernor):
    """The classic ``ondemand`` governor.

    Jumps straight to the maximum frequency when utilisation exceeds the up
    threshold, and otherwise scales frequency proportionally to utilisation.
    """

    name = "ondemand"

    def __init__(self, up_threshold: float = 0.8):
        if not 0.0 < up_threshold <= 1.0:
            raise ConfigurationError("up_threshold must lie in (0, 1]")
        self.up_threshold = up_threshold

    def select_level(self, utilisation: float, current_level: int, num_levels: int) -> int:
        utilisation = min(max(utilisation, 0.0), 1.0)
        if utilisation >= self.up_threshold:
            return num_levels - 1
        target_level = int(round(utilisation / self.up_threshold * (num_levels - 1)))
        return max(0, min(num_levels - 1, target_level))
