"""Default-governor registry.

The paper compares against "the default governors" of each device:
``schedutil`` + ``nvhost_podgov`` on the Jetson Orin Nano and ``schedutil``
+ ``msm-adreno-tz`` on the Mi 11 Lite.  This registry builds the matching
:class:`~repro.governors.base.DefaultGovernorPolicy` for a device name.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import ConfigurationError
from repro.governors.base import DefaultGovernorPolicy
from repro.governors.cpu import OndemandGovernor, SchedutilGovernor
from repro.governors.gpu import MsmAdrenoTzGovernor, NvhostPodgovGovernor, SimpleOndemandGovernor

GovernorBuilder = Callable[[], DefaultGovernorPolicy]


def _jetson_default() -> DefaultGovernorPolicy:
    return DefaultGovernorPolicy(SchedutilGovernor(), NvhostPodgovGovernor())


def _mi11_default() -> DefaultGovernorPolicy:
    return DefaultGovernorPolicy(SchedutilGovernor(), MsmAdrenoTzGovernor())


def _raspberry_pi5_default() -> DefaultGovernorPolicy:
    # Raspberry Pi OS ships the classic ondemand cpufreq governor; the
    # VideoCore devfreq behaves like a stock simple_ondemand controller.
    return DefaultGovernorPolicy(OndemandGovernor(), SimpleOndemandGovernor())


def _generic_default() -> DefaultGovernorPolicy:
    return DefaultGovernorPolicy(SchedutilGovernor(), SimpleOndemandGovernor())


_REGISTRY: Dict[str, GovernorBuilder] = {
    "jetson-orin-nano": _jetson_default,
    "mi11-lite": _mi11_default,
    "raspberry-pi-5": _raspberry_pi5_default,
}


def register_default_governor(
    device_name: str, builder: GovernorBuilder, *, overwrite: bool = False
) -> None:
    """Register the default governor pairing of a new device."""
    if not device_name:
        raise ConfigurationError("device name must be non-empty")
    if device_name in _REGISTRY and not overwrite:
        raise ConfigurationError(f"default governor for {device_name!r} already registered")
    _REGISTRY[device_name] = builder


def available_governors() -> tuple[str, ...]:
    """Device names with a registered default governor pairing."""
    return tuple(sorted(_REGISTRY))


def build_default_governor(device_name: str) -> DefaultGovernorPolicy:
    """Build the default governor policy for ``device_name``.

    Unknown devices fall back to a generic ``schedutil`` +
    ``simple_ondemand`` pairing.
    """
    builder = _REGISTRY.get(device_name, _generic_default)
    return builder()
