"""Static policies: ``performance``, ``powersave`` and ``userspace``.

These are not used as paper baselines but are essential tooling: the
profiling experiments (Fig. 1, Fig. 2, the §4.2 stage split) are all run "at
fixed frequency", which is exactly what :class:`UserspacePolicy` /
:class:`PerformancePolicy` provide.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.env.environment import (
    FrameResult,
    FrameStartObservation,
    MidFrameObservation,
)
from repro.env.policy import FrequencyDecision, Policy


class UserspacePolicy(Policy):
    """Pin the CPU and GPU to fixed, user-chosen frequency levels."""

    def __init__(self, cpu_level: int, gpu_level: int):
        if cpu_level < 0 or gpu_level < 0:
            raise ConfigurationError("frequency levels must be non-negative")
        self.cpu_level = cpu_level
        self.gpu_level = gpu_level
        self.name = f"userspace(cpu={cpu_level},gpu={gpu_level})"

    def _decision(self, cpu_num_levels: int, gpu_num_levels: int) -> FrequencyDecision:
        return FrequencyDecision(
            cpu_level=min(self.cpu_level, cpu_num_levels - 1),
            gpu_level=min(self.gpu_level, gpu_num_levels - 1),
        )

    def begin_frame(self, observation: FrameStartObservation) -> FrequencyDecision:
        return self._decision(observation.cpu_num_levels, observation.gpu_num_levels)

    def mid_frame(self, observation: MidFrameObservation) -> FrequencyDecision:
        return self._decision(observation.cpu_num_levels, observation.gpu_num_levels)

    def end_frame(self, result: FrameResult) -> None:
        return None


class PerformancePolicy(Policy):
    """Always request the maximum CPU and GPU operating points."""

    name = "performance"

    def begin_frame(self, observation: FrameStartObservation) -> FrequencyDecision:
        return FrequencyDecision(
            cpu_level=observation.cpu_num_levels - 1,
            gpu_level=observation.gpu_num_levels - 1,
        )

    def mid_frame(self, observation: MidFrameObservation) -> FrequencyDecision:
        return FrequencyDecision(
            cpu_level=observation.cpu_num_levels - 1,
            gpu_level=observation.gpu_num_levels - 1,
        )

    def end_frame(self, result: FrameResult) -> None:
        return None


class PowersavePolicy(Policy):
    """Always request the minimum CPU and GPU operating points."""

    name = "powersave"

    def begin_frame(self, observation: FrameStartObservation) -> FrequencyDecision:
        return FrequencyDecision(cpu_level=0, gpu_level=0)

    def mid_frame(self, observation: MidFrameObservation) -> FrequencyDecision:
        return FrequencyDecision(cpu_level=0, gpu_level=0)

    def end_frame(self, result: FrameResult) -> None:
        return None
