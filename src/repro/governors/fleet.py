"""Vectorized default governors and static policies for the fleet engine.

Array re-implementations of the scalar governors in
:mod:`repro.governors.cpu` / :mod:`repro.governors.gpu` and of the static
policies in :mod:`repro.governors.static`, acting on a whole fleet per
call.  Each ``select_levels`` kernel performs the same arithmetic as the
scalar ``select_level``, so a fleet driven by
:class:`BatchedDefaultGovernorPolicy` makes the *identical* per-session
decisions the scalar :class:`~repro.governors.base.DefaultGovernorPolicy`
makes (the equivalence tests run both and compare traces).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.env.fleet import (
    FleetDecision,
    FleetFrameResult,
    FleetMidObservation,
    FleetPolicy,
    FleetStartObservation,
    validate_session_partition,
)


class BatchedLevelSelector(ABC):
    """A governor kernel: utilisation arrays in, level arrays out."""

    name: str = "batched-governor"

    @abstractmethod
    def select_levels(
        self, utilisation: np.ndarray, current_levels: np.ndarray, num_levels: int
    ) -> np.ndarray:
        """Select per-session frequency levels from observed utilisations."""


class BatchedSchedutilGovernor(BatchedLevelSelector):
    """Vectorized :class:`~repro.governors.cpu.SchedutilGovernor`."""

    name = "schedutil"

    def __init__(self, margin: float = 1.25, max_step_down: int = 1):
        if margin <= 0:
            raise ConfigurationError("margin must be positive")
        if max_step_down < 0:
            raise ConfigurationError("max_step_down must be non-negative")
        self.margin = margin
        self.max_step_down = max_step_down

    def select_levels(
        self, utilisation: np.ndarray, current_levels: np.ndarray, num_levels: int
    ) -> np.ndarray:
        utilisation = np.minimum(np.maximum(utilisation, 0.0), 1.0)
        target_fraction = np.minimum(1.0, self.margin * utilisation)
        target = np.minimum(
            num_levels - 1, np.round(target_fraction * (num_levels - 1) + 0.49)
        ).astype(np.int64)
        if self.max_step_down:
            floor = current_levels - self.max_step_down
            target = np.where(target < floor, floor, target)
        return np.clip(target, 0, num_levels - 1)


class BatchedOndemandGovernor(BatchedLevelSelector):
    """Vectorized :class:`~repro.governors.cpu.OndemandGovernor`."""

    name = "ondemand"

    def __init__(self, up_threshold: float = 0.8):
        if not 0.0 < up_threshold <= 1.0:
            raise ConfigurationError("up_threshold must lie in (0, 1]")
        self.up_threshold = up_threshold

    def select_levels(
        self, utilisation: np.ndarray, current_levels: np.ndarray, num_levels: int
    ) -> np.ndarray:
        utilisation = np.minimum(np.maximum(utilisation, 0.0), 1.0)
        scaled = np.round(utilisation / self.up_threshold * (num_levels - 1)).astype(
            np.int64
        )
        target = np.where(utilisation >= self.up_threshold, num_levels - 1, scaled)
        return np.clip(target, 0, num_levels - 1)


class BatchedSimpleOndemandGovernor(BatchedLevelSelector):
    """Vectorized :class:`~repro.governors.gpu.SimpleOndemandGovernor`.

    The ``nvhost_podgov`` and ``msm-adreno-tz`` pairings are this kernel
    with their device-specific thresholds (exactly as in the scalar
    hierarchy).
    """

    name = "simple_ondemand"

    def __init__(
        self, up_threshold: float = 0.85, down_threshold: float = 0.3, up_step: int = 2
    ):
        if not 0.0 < down_threshold < up_threshold <= 1.0:
            raise ConfigurationError("require 0 < down_threshold < up_threshold <= 1")
        if up_step <= 0:
            raise ConfigurationError("up_step must be positive")
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        self.up_step = up_step

    def select_levels(
        self, utilisation: np.ndarray, current_levels: np.ndarray, num_levels: int
    ) -> np.ndarray:
        utilisation = np.minimum(np.maximum(utilisation, 0.0), 1.0)
        up = np.minimum(num_levels - 1, current_levels + self.up_step)
        down = np.maximum(0, current_levels - 1)
        return np.where(
            utilisation >= self.up_threshold,
            up,
            np.where(utilisation <= self.down_threshold, down, current_levels),
        )


def batched_nvhost_podgov() -> BatchedSimpleOndemandGovernor:
    """The Jetson GPU's ``nvhost_podgov`` thresholds, vectorized."""
    governor = BatchedSimpleOndemandGovernor(
        up_threshold=0.8, down_threshold=0.25, up_step=3
    )
    governor.name = "nvhost_podgov"
    return governor


def batched_msm_adreno_tz() -> BatchedSimpleOndemandGovernor:
    """The Snapdragon Adreno ``msm-adreno-tz`` thresholds, vectorized."""
    governor = BatchedSimpleOndemandGovernor(
        up_threshold=0.75, down_threshold=0.2, up_step=2
    )
    governor.name = "msm-adreno-tz"
    return governor


class BatchedDefaultGovernorPolicy(FleetPolicy):
    """Independent vectorized CPU & GPU governors across the fleet."""

    def __init__(
        self, cpu_governor: BatchedLevelSelector, gpu_governor: BatchedLevelSelector
    ):
        self.cpu_governor = cpu_governor
        self.gpu_governor = gpu_governor
        self.name = f"default({cpu_governor.name}+{gpu_governor.name})"

    def _decide(self, observation) -> FleetDecision:
        return FleetDecision(
            cpu_levels=self.cpu_governor.select_levels(
                observation.cpu_utilisation,
                observation.cpu_level,
                observation.cpu_num_levels,
            ),
            gpu_levels=self.gpu_governor.select_levels(
                observation.gpu_utilisation,
                observation.gpu_level,
                observation.gpu_num_levels,
            ),
        )

    def begin_frame(self, observation: FleetStartObservation) -> FleetDecision:
        return self._decide(observation)

    def mid_frame(self, observation: FleetMidObservation) -> FleetDecision:
        return self._decide(observation)


class BatchedUserspacePolicy(FleetPolicy):
    """Pin every session to fixed, user-chosen frequency levels."""

    def __init__(self, cpu_level: int, gpu_level: int):
        if cpu_level < 0 or gpu_level < 0:
            raise ConfigurationError("frequency levels must be non-negative")
        self.cpu_level = cpu_level
        self.gpu_level = gpu_level
        self.name = f"userspace(cpu={cpu_level},gpu={gpu_level})"

    def _decision(self, observation) -> FleetDecision:
        n = observation.num_sessions
        return FleetDecision(
            cpu_levels=np.full(
                n, min(self.cpu_level, observation.cpu_num_levels - 1), dtype=np.int64
            ),
            gpu_levels=np.full(
                n, min(self.gpu_level, observation.gpu_num_levels - 1), dtype=np.int64
            ),
        )

    def begin_frame(self, observation: FleetStartObservation) -> FleetDecision:
        return self._decision(observation)

    def mid_frame(self, observation: FleetMidObservation) -> FleetDecision:
        return self._decision(observation)


class BatchedPerformancePolicy(FleetPolicy):
    """Always request the maximum operating points, fleet-wide."""

    name = "performance"

    def _decision(self, observation) -> FleetDecision:
        n = observation.num_sessions
        return FleetDecision(
            cpu_levels=np.full(n, observation.cpu_num_levels - 1, dtype=np.int64),
            gpu_levels=np.full(n, observation.gpu_num_levels - 1, dtype=np.int64),
        )

    def begin_frame(self, observation: FleetStartObservation) -> FleetDecision:
        return self._decision(observation)

    def mid_frame(self, observation: FleetMidObservation) -> FleetDecision:
        return self._decision(observation)


class BatchedPowersavePolicy(FleetPolicy):
    """Always request the minimum operating points, fleet-wide."""

    name = "powersave"

    def _decision(self, observation) -> FleetDecision:
        n = observation.num_sessions
        return FleetDecision(
            cpu_levels=np.zeros(n, dtype=np.int64),
            gpu_levels=np.zeros(n, dtype=np.int64),
        )

    def begin_frame(self, observation: FleetStartObservation) -> FleetDecision:
        return self._decision(observation)

    def mid_frame(self, observation: FleetMidObservation) -> FleetDecision:
        return self._decision(observation)


class SubFleetPolicies(FleetPolicy):
    """Partition one fleet's sessions among several fleet policies.

    The grouped sub-fleet path for *policies*: a heterogeneous group whose
    sessions share a device and detector but run different methods (or the
    same method with different seed blocks) is driven by one
    ``SubFleetPolicies`` that slices the batch observation per sub-policy
    (:meth:`FleetStartObservation.take`), lets each sub-policy decide over
    its own sessions, and scatters the sub-decisions back into one masked
    :class:`FleetDecision`.  Because vectorized kernels are elementwise and
    scalar adapters materialise per-session observations, slicing preserves
    every sub-policy's bit-exact behaviour.

    Args:
        policies: One fleet policy per sub-fleet.
        session_indices: For each policy, the local session indices it
            drives; together they must partition ``0..N-1`` disjointly.
    """

    def __init__(
        self,
        policies: Sequence[FleetPolicy],
        session_indices: Sequence[Sequence[int]],
    ):
        if not policies:
            raise ConfigurationError("need at least one sub-policy")
        if len(policies) != len(session_indices):
            raise ConfigurationError(
                f"got {len(policies)} policies for "
                f"{len(session_indices)} index groups"
            )
        self.policies = list(policies)
        total = sum(len(indices) for indices in session_indices)
        self.indices = validate_session_partition(
            session_indices, total, allow_empty_groups=False
        )
        self.num_sessions = total
        self.name = f"sub-fleet({'+'.join(policy.name for policy in self.policies)})"

    def reset(self) -> None:
        for policy in self.policies:
            policy.reset()

    def _scatter(self, observation, decisions) -> FleetDecision | None:
        if all(decision is None for decision in decisions):
            return None
        cpu = observation.cpu_level.copy()
        gpu = observation.gpu_level.copy()
        mask = np.zeros(self.num_sessions, dtype=bool)
        for indices, decision in zip(self.indices, decisions):
            if decision is None:
                continue
            if decision.mask is None:
                cpu[indices] = decision.cpu_levels
                gpu[indices] = decision.gpu_levels
                mask[indices] = True
            else:
                selected = indices[decision.mask]
                cpu[selected] = decision.cpu_levels[decision.mask]
                gpu[selected] = decision.gpu_levels[decision.mask]
                mask[selected] = True
        return FleetDecision(cpu_levels=cpu, gpu_levels=gpu, mask=mask)

    def begin_frame(self, observation: FleetStartObservation) -> FleetDecision | None:
        decisions = [
            policy.begin_frame(observation.take(indices))
            for policy, indices in zip(self.policies, self.indices)
        ]
        return self._scatter(observation, decisions)

    def mid_frame(self, observation: FleetMidObservation) -> FleetDecision | None:
        decisions = [
            policy.mid_frame(observation.take(indices))
            for policy, indices in zip(self.policies, self.indices)
        ]
        return self._scatter(observation, decisions)

    def end_frame(self, result: FleetFrameResult) -> None:
        for policy, indices in zip(self.policies, self.indices):
            policy.end_frame(result.take(indices))

    def session_policy_names(self) -> List[str]:
        """Per-session policy name, in local session order."""
        names = [""] * self.num_sessions
        for policy, indices in zip(self.policies, self.indices):
            for index in indices.tolist():
                names[index] = policy.name
        return names

    # -- checkpointing -------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Per-sub-policy snapshots (``None`` entries for stateless ones)."""
        return {
            "policies": [
                policy.state_dict() if hasattr(policy, "state_dict") else None
                for policy in self.policies
            ]
        }

    def load_state_dict(self, payload: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into the sub-policies."""
        states = payload["policies"]
        if len(states) != len(self.policies):
            raise ConfigurationError(
                f"snapshot carries {len(states)} sub-policies for "
                f"{len(self.policies)} groups"
            )
        for policy, state in zip(self.policies, states):
            if state is not None:
                policy.load_state_dict(state)


GovernorPairBuilder = Callable[[], BatchedDefaultGovernorPolicy]


def _jetson_pair() -> BatchedDefaultGovernorPolicy:
    return BatchedDefaultGovernorPolicy(
        BatchedSchedutilGovernor(), batched_nvhost_podgov()
    )


def _mi11_pair() -> BatchedDefaultGovernorPolicy:
    return BatchedDefaultGovernorPolicy(
        BatchedSchedutilGovernor(), batched_msm_adreno_tz()
    )


def _raspberry_pi5_pair() -> BatchedDefaultGovernorPolicy:
    return BatchedDefaultGovernorPolicy(
        BatchedOndemandGovernor(), BatchedSimpleOndemandGovernor()
    )


def _generic_pair() -> BatchedDefaultGovernorPolicy:
    return BatchedDefaultGovernorPolicy(
        BatchedSchedutilGovernor(), BatchedSimpleOndemandGovernor()
    )


_REGISTRY: Dict[str, GovernorPairBuilder] = {
    "jetson-orin-nano": _jetson_pair,
    "mi11-lite": _mi11_pair,
    "raspberry-pi-5": _raspberry_pi5_pair,
}


def build_batched_default_governor(device_name: str) -> BatchedDefaultGovernorPolicy:
    """The vectorized default-governor pairing for ``device_name``.

    Mirrors :func:`repro.governors.registry.build_default_governor`; unknown
    devices fall back to ``schedutil`` + ``simple_ondemand``.
    """
    builder = _REGISTRY.get(device_name, _generic_pair)
    return builder()
