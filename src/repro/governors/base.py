"""Governor base classes and the combined default-governor policy.

Real systems run one governor per frequency domain — the CPU governor lives
in cpufreq, the GPU governor in devfreq — and each reacts only to its own
domain's utilisation.  :class:`DefaultGovernorPolicy` reproduces that
structure: a :class:`CpuGovernor` and a :class:`GpuGovernor` are invoked at
every decision point with the most recent utilisation sample, with no
knowledge of the application, the latency constraint or each other.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.env.environment import (
    FrameResult,
    FrameStartObservation,
    MidFrameObservation,
)
from repro.env.policy import FrequencyDecision, Policy


class CpuGovernor(ABC):
    """A cpufreq-style governor: utilisation in, frequency level out."""

    name: str = "cpu-governor"

    @abstractmethod
    def select_level(self, utilisation: float, current_level: int, num_levels: int) -> int:
        """Select a CPU frequency level from the observed utilisation."""

    def reset(self) -> None:
        """Clear any internal state (rate limits, sampling history)."""


class GpuGovernor(ABC):
    """A devfreq-style governor: utilisation in, frequency level out."""

    name: str = "gpu-governor"

    @abstractmethod
    def select_level(self, utilisation: float, current_level: int, num_levels: int) -> int:
        """Select a GPU frequency level from the observed utilisation."""

    def reset(self) -> None:
        """Clear any internal state."""


class DefaultGovernorPolicy(Policy):
    """The stock operating-system behaviour: independent CPU & GPU governors.

    The governors are sampled at both per-frame decision points (real
    governors run on a timer a few tens of milliseconds long, so they get
    many chances per frame; two samples per frame is the granularity of this
    simulation).  They see only utilisation — not temperature, not the
    latency constraint, not the proposal count — so under a sustained
    detector workload they drive both domains to their top operating points
    and eventually run into hardware thermal throttling.
    """

    def __init__(self, cpu_governor: CpuGovernor, gpu_governor: GpuGovernor):
        self.cpu_governor = cpu_governor
        self.gpu_governor = gpu_governor
        self.name = f"default({cpu_governor.name}+{gpu_governor.name})"

    def reset(self) -> None:
        self.cpu_governor.reset()
        self.gpu_governor.reset()

    def _decide(
        self,
        cpu_utilisation: float,
        gpu_utilisation: float,
        cpu_level: int,
        gpu_level: int,
        cpu_num_levels: int,
        gpu_num_levels: int,
    ) -> FrequencyDecision:
        next_cpu = self.cpu_governor.select_level(cpu_utilisation, cpu_level, cpu_num_levels)
        next_gpu = self.gpu_governor.select_level(gpu_utilisation, gpu_level, gpu_num_levels)
        return FrequencyDecision(cpu_level=next_cpu, gpu_level=next_gpu)

    def begin_frame(self, observation: FrameStartObservation) -> FrequencyDecision:
        return self._decide(
            observation.cpu_utilisation,
            observation.gpu_utilisation,
            observation.cpu_level,
            observation.gpu_level,
            observation.cpu_num_levels,
            observation.gpu_num_levels,
        )

    def mid_frame(self, observation: MidFrameObservation) -> FrequencyDecision:
        return self._decide(
            observation.cpu_utilisation,
            observation.gpu_utilisation,
            observation.cpu_level,
            observation.gpu_level,
            observation.cpu_num_levels,
            observation.gpu_num_levels,
        )

    def end_frame(self, result: FrameResult) -> None:
        # Default governors are application-agnostic: the frame outcome
        # (latency, constraint satisfaction) is deliberately ignored.
        return None
