"""Baseline DVFS governors.

Reimplementations of the utilisation-driven governors that ship with Linux
and Android, which form the "default" baseline of the paper's evaluation:

* ``schedutil`` — the default CPU governor on both evaluation devices.
* ``ondemand`` — the classic threshold-based CPU governor.
* ``nvhost_podgov`` — the Jetson's GPU load governor (a
  ``simple_ondemand``-style up/down controller).
* ``msm-adreno-tz`` — the Adreno GPU governor on Snapdragon phones.
* ``performance`` / ``powersave`` / ``userspace`` — static governors.

A :class:`DefaultGovernorPolicy` pairs a CPU governor with a GPU governor
into a single :class:`~repro.env.policy.Policy`, mirroring how the two run
independently on a real device — the very limitation (no coordination, no
application awareness) that motivates zTT and Lotus.
"""

from repro.governors.base import CpuGovernor, DefaultGovernorPolicy, GpuGovernor
from repro.governors.cpu import OndemandGovernor, SchedutilGovernor
from repro.governors.gpu import MsmAdrenoTzGovernor, NvhostPodgovGovernor, SimpleOndemandGovernor
from repro.governors.static import PerformancePolicy, PowersavePolicy, UserspacePolicy
from repro.governors.registry import available_governors, build_default_governor
from repro.governors.fleet import (
    BatchedDefaultGovernorPolicy,
    BatchedOndemandGovernor,
    BatchedPerformancePolicy,
    BatchedPowersavePolicy,
    BatchedSchedutilGovernor,
    BatchedSimpleOndemandGovernor,
    BatchedUserspacePolicy,
    SubFleetPolicies,
    build_batched_default_governor,
)

__all__ = [
    "BatchedDefaultGovernorPolicy",
    "BatchedOndemandGovernor",
    "BatchedPerformancePolicy",
    "BatchedPowersavePolicy",
    "BatchedSchedutilGovernor",
    "BatchedSimpleOndemandGovernor",
    "BatchedUserspacePolicy",
    "CpuGovernor",
    "DefaultGovernorPolicy",
    "GpuGovernor",
    "MsmAdrenoTzGovernor",
    "NvhostPodgovGovernor",
    "OndemandGovernor",
    "PerformancePolicy",
    "PowersavePolicy",
    "SchedutilGovernor",
    "SimpleOndemandGovernor",
    "SubFleetPolicies",
    "UserspacePolicy",
    "available_governors",
    "build_batched_default_governor",
    "build_default_governor",
]
