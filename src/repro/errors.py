"""Exception hierarchy for the Lotus reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers (and the CLI) can catch library failures with a single ``except``
clause while still being able to distinguish configuration mistakes from
runtime simulation faults.  :class:`LotusError` is the historical base
class and remains the parent of every concrete error; it now derives from
:class:`ReproError`, so both names catch everything.
"""

from __future__ import annotations


class ReproError(Exception):
    """Common base class of every error raised by :mod:`repro`.

    The CLI catches this once to turn any library failure into a clean
    one-line non-zero exit instead of a traceback.
    """


class LotusError(ReproError):
    """Base class for all errors raised by :mod:`repro` (historical name)."""


class ConfigurationError(LotusError):
    """A component was constructed with inconsistent or invalid parameters."""


class FrequencyError(ConfigurationError):
    """An operating point or frequency level does not exist on the device."""


class DeviceError(LotusError):
    """The simulated device was driven into an invalid state."""


class ThermalError(DeviceError):
    """The thermal model was asked to do something physically meaningless."""


class WorkloadError(LotusError):
    """A workload or dataset stream was misconfigured or exhausted."""


class DetectorError(LotusError):
    """A detector cost model received invalid work parameters."""


class AgentError(LotusError):
    """A DRL agent was used outside of its valid protocol (e.g. acting on a
    mid-frame state before the frame was started)."""


class ReplayBufferError(AgentError):
    """Sampling from an empty replay buffer or pushing malformed transitions."""


class ProtocolError(LotusError):
    """The simulated agent/client communication channel was misused, or a
    message could not be delivered within the retry budget."""


class ExperimentError(LotusError):
    """An experiment runner was configured with an impossible combination."""


class ScenarioError(LotusError):
    """A scenario spec is invalid, unknown, or failed to (de)serialise."""


class ShardError(ExperimentError):
    """A fleet could not be split across worker shards as requested (invalid
    shard count, or a shared-network member that must not be divided)."""


class PolicyError(LotusError):
    """A policy checkpoint is corrupted, incompatible or unknown to the
    policy store (truncated payloads, integrity-hash mismatches, format
    version mismatches, unresolvable policy ids, geometry mismatches)."""


class StoreError(LotusError):
    """A columnar trace store artifact is invalid or unreadable: missing,
    truncated or tampered chunk files, manifest corruption, format/version
    mismatches, or writer misuse (non-contiguous frame indices, schema
    drift between appended frames)."""


class FaultError(LotusError):
    """A fault plan is invalid, failed to (de)serialise, or a fault event
    references sessions, frames or shards outside the run it is attached
    to."""


class ObsError(LotusError):
    """The observability layer was misused or a run artifact is missing:
    reading spans/metrics with no registry active, malformed worker metric
    snapshots, or asking ``obs report`` for a run that was never written."""
