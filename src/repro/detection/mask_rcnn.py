"""Mask R-CNN cost model.

Mask R-CNN extends Faster R-CNN with a per-proposal mask head, which makes
its second stage markedly more expensive per proposal (≈0.6 ms at the
reference operating point versus ≈0.14 ms for Faster R-CNN) and therefore
its latency variation larger — visible in the paper's Fig. 1/2 where
Mask R-CNN's second stage reaches ≈200 ms at only 300 proposals.
"""

from __future__ import annotations

from repro.detection.detector import DetectorModel
from repro.detection.proposals import ProposalModel
from repro.detection.stages import StageCost, reference_cost


def mask_rcnn() -> DetectorModel:
    """Build the Mask R-CNN detector cost model."""
    stage1 = (
        StageCost(name="preprocess", fixed=reference_cost(cpu_ms=15.0, gpu_ms=0.0)),
        StageCost(name="backbone", fixed=reference_cost(cpu_ms=10.0, gpu_ms=158.0)),
        StageCost(name="rpn", fixed=reference_cost(cpu_ms=10.0, gpu_ms=43.0)),
    )
    stage2 = (
        StageCost(
            name="roi_pooling",
            fixed=reference_cost(cpu_ms=2.0, gpu_ms=8.0),
            per_proposal=reference_cost(cpu_ms=0.004, gpu_ms=0.016),
            scales_with_image=False,
        ),
        StageCost(
            name="classifier",
            fixed=reference_cost(cpu_ms=1.0, gpu_ms=14.0),
            per_proposal=reference_cost(cpu_ms=0.01, gpu_ms=0.09),
            scales_with_image=False,
        ),
        StageCost(
            name="mask_head",
            fixed=reference_cost(cpu_ms=1.0, gpu_ms=9.0),
            per_proposal=reference_cost(cpu_ms=0.03, gpu_ms=0.42),
            scales_with_image=False,
        ),
        StageCost(
            name="postprocess",
            fixed=reference_cost(cpu_ms=6.0, gpu_ms=0.0),
            per_proposal=reference_cost(cpu_ms=0.025, gpu_ms=0.0),
            scales_with_image=False,
        ),
    )
    return DetectorModel(
        name="mask_rcnn",
        stage1=stage1,
        stage2=stage2,
        proposal_model=ProposalModel(
            keep_ratio=0.55,
            max_proposals=300,
            min_proposals=10,
            noise_std=0.08,
        ),
        description=(
            "Mask R-CNN: Faster R-CNN plus a per-proposal instance "
            "segmentation mask head."
        ),
    )
