"""Cycle costs of detector pipeline stages.

All work is expressed in *kilocycles*: a quantity chosen so that dividing by
a frequency in kHz yields milliseconds directly
(``time_ms = kilocycles / frequency_khz``).  Costs are split between the CPU
and the GPU, which is what lets the joint CPU/GPU frequency decision of
Lotus trade off the two domains.

The reference numbers used by the concrete detectors are calibrated at the
Jetson Orin Nano's maximum operating points (1.5104 GHz CPU, 624.75 MHz GPU)
so that, at maximum frequency, stage 1 contributes roughly 80 % of the total
latency — the profiling observation in §4.2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DetectorError


@dataclass(frozen=True)
class CycleCost:
    """An amount of work split between CPU and GPU.

    Attributes:
        cpu_kilocycles: CPU work; ``cpu_kilocycles / f_cpu_khz`` is the CPU
            time in milliseconds.
        gpu_kilocycles: GPU work; ``gpu_kilocycles / f_gpu_khz`` is the GPU
            time in milliseconds.
    """

    cpu_kilocycles: float = 0.0
    gpu_kilocycles: float = 0.0

    def __post_init__(self) -> None:
        if self.cpu_kilocycles < 0 or self.gpu_kilocycles < 0:
            raise DetectorError("cycle costs must be non-negative")

    def __add__(self, other: "CycleCost") -> "CycleCost":
        return CycleCost(
            cpu_kilocycles=self.cpu_kilocycles + other.cpu_kilocycles,
            gpu_kilocycles=self.gpu_kilocycles + other.gpu_kilocycles,
        )

    def scaled(self, factor: float) -> "CycleCost":
        """Return the cost multiplied by ``factor`` (e.g. an image-scale)."""
        if factor < 0:
            raise DetectorError("scale factor must be non-negative")
        return CycleCost(
            cpu_kilocycles=self.cpu_kilocycles * factor,
            gpu_kilocycles=self.gpu_kilocycles * factor,
        )

    @property
    def total_kilocycles(self) -> float:
        """Sum of CPU and GPU work (useful for rough comparisons only)."""
        return self.cpu_kilocycles + self.gpu_kilocycles

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def from_reference_ms(
        cls,
        cpu_ms: float,
        gpu_ms: float,
        reference_cpu_khz: float,
        reference_gpu_khz: float,
    ) -> "CycleCost":
        """Build a cost from measured milliseconds at reference frequencies.

        This is how the concrete detectors are calibrated: "the backbone
        takes ``gpu_ms`` on the GPU at ``reference_gpu_khz``" translates
        directly into a kilocycle count.
        """
        if cpu_ms < 0 or gpu_ms < 0:
            raise DetectorError("reference times must be non-negative")
        if reference_cpu_khz <= 0 or reference_gpu_khz <= 0:
            raise DetectorError("reference frequencies must be positive")
        return cls(
            cpu_kilocycles=cpu_ms * reference_cpu_khz,
            gpu_kilocycles=gpu_ms * reference_gpu_khz,
        )


@dataclass(frozen=True)
class StageCost:
    """Cost model of one detector stage.

    A stage has a fixed cost (independent of the number of proposals) and a
    marginal cost per proposal.  Stage 1 of a two-stage detector has zero
    per-proposal cost; stage 2's per-proposal cost is what produces the
    latency variation Lotus reacts to.

    Attributes:
        name: Stage name, e.g. ``"backbone"`` or ``"classifier"``.
        fixed: Fixed cost per image.
        per_proposal: Marginal cost per RPN proposal.
        scales_with_image: Whether the fixed cost grows with the dataset's
            image-scale factor (convolutional stages do; per-proposal heads
            operate on fixed-size RoI crops and do not).
    """

    name: str
    fixed: CycleCost
    per_proposal: CycleCost = CycleCost()
    scales_with_image: bool = True

    def cost(self, num_proposals: int, image_scale: float) -> CycleCost:
        """Total cost for ``num_proposals`` proposals at ``image_scale``."""
        if num_proposals < 0:
            raise DetectorError("number of proposals must be non-negative")
        if image_scale <= 0:
            raise DetectorError("image scale must be positive")
        fixed = self.fixed.scaled(image_scale) if self.scales_with_image else self.fixed
        return fixed + self.per_proposal.scaled(float(num_proposals))


#: Reference frequencies at which the built-in detectors' stage times are
#: calibrated (Jetson Orin Nano maximum operating points).
REFERENCE_CPU_KHZ = 1_510_400.0
REFERENCE_GPU_KHZ = 624_750.0


def reference_cost(cpu_ms: float, gpu_ms: float) -> CycleCost:
    """Cycle cost from milliseconds measured at the reference frequencies."""
    return CycleCost.from_reference_ms(
        cpu_ms, gpu_ms, REFERENCE_CPU_KHZ, REFERENCE_GPU_KHZ
    )
