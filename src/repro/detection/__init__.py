"""Two-stage detector cost models.

Lotus never looks inside a detector: the only detector properties it reacts
to are (i) how long each stage takes at a given CPU/GPU frequency and (ii)
how many proposals the RPN produced.  This package models exactly those
properties with analytic per-stage cycle costs:

* :mod:`repro.detection.stages` — cycle costs of the pipeline stages
  (pre-processing, backbone, RPN, RoI pooling, classifier/mask head,
  post-processing), split into CPU and GPU work.
* :mod:`repro.detection.latency` — execution model mapping cycle costs plus
  the current frequencies (and a per-device compute-efficiency profile) to
  wall-clock latency and utilisation.
* :mod:`repro.detection.proposals` — the RPN proposal-count model, the
  source of the second-stage latency variation the paper targets.
* :mod:`repro.detection.accuracy` — mAP model used for the Fig. 1
  motivation plot.
* :mod:`repro.detection.detector` — :class:`DetectorModel`, combining all
  of the above; concrete FasterRCNN / MaskRCNN / YOLOv5 instantiations live
  in their own modules and the registry builds them by name.
"""

from repro.detection.accuracy import AccuracyModel
from repro.detection.detector import DetectorModel, StageBreakdown
from repro.detection.faster_rcnn import faster_rcnn
from repro.detection.fleet import (
    BatchedExecutionModel,
    FleetSegment,
    propose_batch,
    stage1_cost_arrays,
    stage2_cost_arrays,
)
from repro.detection.latency import (
    DeviceComputeProfile,
    ExecutionModel,
    SegmentExecution,
    compute_profile_for,
)
from repro.detection.mask_rcnn import mask_rcnn
from repro.detection.proposals import ProposalModel
from repro.detection.registry import available_detectors, build_detector
from repro.detection.stages import CycleCost, StageCost
from repro.detection.yolo import yolo_v5

__all__ = [
    "AccuracyModel",
    "BatchedExecutionModel",
    "CycleCost",
    "DetectorModel",
    "DeviceComputeProfile",
    "ExecutionModel",
    "ProposalModel",
    "SegmentExecution",
    "StageBreakdown",
    "StageCost",
    "available_detectors",
    "build_detector",
    "FleetSegment",
    "compute_profile_for",
    "faster_rcnn",
    "propose_batch",
    "stage1_cost_arrays",
    "stage2_cost_arrays",
    "mask_rcnn",
    "yolo_v5",
]
