"""Execution model: cycle costs -> wall-clock latency and utilisation.

A segment of detector work (one or more stages) executes serially: the CPU
portion runs at the CPU frequency, the GPU portion at the GPU frequency, and
the total latency is the sum plus a small launch overhead.  During the GPU
portion the CPU is not idle — it feeds kernels and handles synchronisation —
which is captured by a host-activity factor.  The resulting utilisations are
what the thermal/power model and the utilisation-driven default governors
consume.

Different devices retire the same detector work at very different rates (an
Adreno 642 is far slower than the Orin's Ampere GPU at equal clocks), which
is captured by a per-device :class:`DeviceComputeProfile`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError, DetectorError
from repro.detection.stages import CycleCost


@dataclass(frozen=True)
class DeviceComputeProfile:
    """Per-device compute efficiency relative to the calibration reference.

    Attributes:
        cpu_efficiency: Work retired per CPU kHz relative to the reference
            platform (Jetson Orin Nano = 1.0).
        gpu_efficiency: Work retired per GPU kHz relative to the reference.
        launch_overhead_ms: Fixed per-segment overhead (kernel launches,
            synchronisation, memory traffic) independent of frequency.
        host_activity: Fraction of CPU activity sustained while the GPU part
            of a segment is executing (kernel dispatch, data marshalling).
    """

    cpu_efficiency: float = 1.0
    gpu_efficiency: float = 1.0
    launch_overhead_ms: float = 2.0
    host_activity: float = 0.25

    def __post_init__(self) -> None:
        if self.cpu_efficiency <= 0 or self.gpu_efficiency <= 0:
            raise ConfigurationError("compute efficiencies must be positive")
        if self.launch_overhead_ms < 0:
            raise ConfigurationError("launch overhead must be non-negative")
        if not 0.0 <= self.host_activity <= 1.0:
            raise ConfigurationError("host_activity must lie in [0, 1]")


#: Compute profiles for the built-in devices.  The Mi 11 Lite's Adreno 642
#: and Kryo 670 retire detector work substantially slower than the Jetson's
#: Ampere GPU and Cortex-A78AE at equal clock, which is what makes the
#: phone's absolute latencies 3-4x larger in Tables 1 vs 2.
_DEVICE_PROFILES: Dict[str, DeviceComputeProfile] = {
    "jetson-orin-nano": DeviceComputeProfile(
        cpu_efficiency=1.0,
        gpu_efficiency=1.0,
        launch_overhead_ms=2.0,
        host_activity=0.25,
    ),
    "mi11-lite": DeviceComputeProfile(
        cpu_efficiency=0.45,
        gpu_efficiency=0.22,
        launch_overhead_ms=4.0,
        host_activity=0.3,
    ),
    # VideoCore VII is not a compute-class GPU: it retires detector
    # convolutions an order of magnitude slower than the Orin's Ampere at
    # equal clocks, while the Cortex-A76 cluster is only modestly behind
    # the A78AE — so frames on the Pi are long and far more CPU-bound.
    "raspberry-pi-5": DeviceComputeProfile(
        cpu_efficiency=0.7,
        gpu_efficiency=0.1,
        launch_overhead_ms=6.0,
        host_activity=0.4,
    ),
}


def register_compute_profile(
    device_name: str, profile: DeviceComputeProfile, *, overwrite: bool = False
) -> None:
    """Register the compute profile of a new device."""
    if device_name in _DEVICE_PROFILES and not overwrite:
        raise ConfigurationError(f"compute profile for {device_name!r} already registered")
    _DEVICE_PROFILES[device_name] = profile


def compute_profile_for(device_name: str) -> DeviceComputeProfile:
    """Look up the compute profile registered for ``device_name``.

    Unknown devices fall back to the reference profile so that custom device
    descriptions work out of the box.
    """
    return _DEVICE_PROFILES.get(device_name, DeviceComputeProfile())


@dataclass(frozen=True)
class SegmentExecution:
    """Result of executing one segment of work.

    Attributes:
        latency_ms: Wall-clock duration of the segment.
        cpu_busy_ms: Time the CPU spent on its own portion of the work.
        gpu_busy_ms: Time the GPU spent on its portion.
        cpu_utilisation: Average CPU utilisation over the segment (includes
            host activity while the GPU runs).
        gpu_utilisation: Average GPU utilisation over the segment.
    """

    latency_ms: float
    cpu_busy_ms: float
    gpu_busy_ms: float
    cpu_utilisation: float
    gpu_utilisation: float


class ExecutionModel:
    """Maps :class:`CycleCost` work to latency at given frequencies."""

    def __init__(self, profile: DeviceComputeProfile):
        self.profile = profile

    def execute(
        self,
        cost: CycleCost,
        cpu_frequency_khz: float,
        gpu_frequency_khz: float,
    ) -> SegmentExecution:
        """Compute the latency and utilisation of running ``cost``.

        Args:
            cost: Work to execute.
            cpu_frequency_khz: Current CPU frequency.
            gpu_frequency_khz: Current GPU frequency.
        """
        if cpu_frequency_khz <= 0 or gpu_frequency_khz <= 0:
            raise DetectorError("frequencies must be positive")
        cpu_ms = cost.cpu_kilocycles / (cpu_frequency_khz * self.profile.cpu_efficiency)
        gpu_ms = cost.gpu_kilocycles / (gpu_frequency_khz * self.profile.gpu_efficiency)
        latency_ms = cpu_ms + gpu_ms + self.profile.launch_overhead_ms
        if latency_ms <= 0:
            # Degenerate zero-work segment: report an idle instant.
            return SegmentExecution(0.0, 0.0, 0.0, 0.0, 0.0)
        cpu_busy = cpu_ms + self.profile.host_activity * gpu_ms
        cpu_utilisation = min(1.0, cpu_busy / latency_ms)
        gpu_utilisation = min(1.0, gpu_ms / latency_ms)
        return SegmentExecution(
            latency_ms=latency_ms,
            cpu_busy_ms=cpu_ms,
            gpu_busy_ms=gpu_ms,
            cpu_utilisation=cpu_utilisation,
            gpu_utilisation=gpu_utilisation,
        )

    def latency_ms(
        self,
        cost: CycleCost,
        cpu_frequency_khz: float,
        gpu_frequency_khz: float,
    ) -> float:
        """Convenience wrapper returning only the wall-clock latency."""
        return self.execute(cost, cpu_frequency_khz, gpu_frequency_khz).latency_ms
