"""Detector registry: build detector cost models by name."""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import ConfigurationError
from repro.detection.detector import DetectorModel
from repro.detection.faster_rcnn import faster_rcnn
from repro.detection.mask_rcnn import mask_rcnn
from repro.detection.yolo import yolo_v5

DetectorBuilder = Callable[[], DetectorModel]

_REGISTRY: Dict[str, DetectorBuilder] = {
    "faster_rcnn": faster_rcnn,
    "mask_rcnn": mask_rcnn,
    "yolo_v5": yolo_v5,
}


def register_detector(name: str, builder: DetectorBuilder, *, overwrite: bool = False) -> None:
    """Register a custom detector cost model under ``name``."""
    if not name:
        raise ConfigurationError("detector name must be non-empty")
    if name in _REGISTRY and not overwrite:
        raise ConfigurationError(f"detector {name!r} is already registered")
    _REGISTRY[name] = builder


def available_detectors() -> tuple[str, ...]:
    """Names of all registered detectors."""
    return tuple(sorted(_REGISTRY))


def build_detector(name: str) -> DetectorModel:
    """Build a registered detector cost model by name."""
    try:
        builder = _REGISTRY[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown detector {name!r}; available: {available_detectors()}"
        ) from exc
    return builder()
