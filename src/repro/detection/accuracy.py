"""Detection accuracy (mAP) model.

Accuracy is orthogonal to the DVFS control problem — frequency scaling does
not change the network's outputs — but the paper's Fig. 1 motivates
two-stage detectors by their higher mAP, especially on the small-object
VisDrone2019 dataset.  This module provides the static per-(detector,
dataset) mAP@0.5 values used to regenerate that figure, with the relative
ordering taken from the published results of the respective models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import DetectorError

#: Default mAP@0.5 values per (detector family, dataset).  Two-stage models
#: comfortably beat the one-stage YOLOv5 on both datasets, with the gap
#: widening on VisDrone2019 (many small objects), matching Fig. 1's message.
_DEFAULT_MAP_TABLE: Dict[Tuple[str, str], float] = {
    ("faster_rcnn", "kitti"): 77.3,
    ("mask_rcnn", "kitti"): 78.6,
    ("yolo_v5", "kitti"): 70.4,
    ("faster_rcnn", "visdrone2019"): 52.4,
    ("mask_rcnn", "visdrone2019"): 54.0,
    ("yolo_v5", "visdrone2019"): 38.9,
}


@dataclass(frozen=True)
class AccuracyModel:
    """Static mAP lookup with optional per-frame jitter.

    Attributes:
        map_table: Mapping from ``(detector, dataset)`` to mAP@0.5 (percent).
        jitter_std: Standard deviation of the per-evaluation jitter applied
            by :meth:`sample_map`, modelling the spread across evaluation
            subsets.
    """

    map_table: Dict[Tuple[str, str], float] = field(
        default_factory=lambda: dict(_DEFAULT_MAP_TABLE)
    )
    jitter_std: float = 0.4

    def map50(self, detector: str, dataset: str) -> float:
        """mAP@0.5 (percent) for a detector on a dataset."""
        try:
            return self.map_table[(detector, dataset)]
        except KeyError as exc:
            raise DetectorError(
                f"no mAP entry for detector {detector!r} on dataset {dataset!r}"
            ) from exc

    def sample_map(self, detector: str, dataset: str, rng) -> float:
        """mAP with evaluation-subset jitter (used by Fig. 1 regeneration)."""
        base = self.map50(detector, dataset)
        return float(base + rng.normal(0.0, self.jitter_std))

    def known_pairs(self) -> Tuple[Tuple[str, str], ...]:
        """All (detector, dataset) pairs with a registered mAP."""
        return tuple(sorted(self.map_table))
