"""Detector model.

A :class:`DetectorModel` describes a detector as an ordered list of
:class:`~repro.detection.stages.StageCost` entries grouped into *stage 1*
(pre-processing, backbone, RPN — executed before the proposal count is
known) and *stage 2* (RoI pooling, classifier / mask head, post-processing —
whose cost depends on the proposal count).  One-stage detectors such as
YOLOv5 only have stage 1 and a fixed-cost head.

The split into two stage groups is precisely what gives Lotus its two
frequency-scaling opportunities per frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from repro.errors import DetectorError
from repro.detection.proposals import ProposalModel
from repro.detection.stages import CycleCost, StageCost


@dataclass(frozen=True)
class StageBreakdown:
    """Per-stage cost breakdown for one frame (used by profiling benches)."""

    stage_name: str
    cost: CycleCost


@dataclass(frozen=True)
class DetectorModel:
    """Cost model of an object detector.

    Attributes:
        name: Detector identifier, e.g. ``"faster_rcnn"``.
        stage1: Stages executed before the proposal count is known.
        stage2: Stages executed after the RPN (empty for one-stage models).
        proposal_model: RPN proposal-count model (ignored for one-stage
            models, which use a fixed anchor grid).
        description: Human-readable description for reports.
    """

    name: str
    stage1: Tuple[StageCost, ...]
    stage2: Tuple[StageCost, ...] = ()
    proposal_model: ProposalModel = field(default_factory=ProposalModel)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise DetectorError("detector name must be non-empty")
        if not self.stage1:
            raise DetectorError("a detector needs at least one stage-1 stage")
        object.__setattr__(self, "stage1", tuple(self.stage1))
        object.__setattr__(self, "stage2", tuple(self.stage2))

    # -- structure ---------------------------------------------------------------

    @property
    def is_two_stage(self) -> bool:
        """Whether the detector has a proposal-dependent second stage."""
        return len(self.stage2) > 0

    @property
    def stage_names(self) -> Tuple[str, ...]:
        """Names of all stages in execution order."""
        return tuple(s.name for s in self.stage1 + self.stage2)

    # -- proposal generation --------------------------------------------------------

    def propose(self, scene_candidates: float, rng: np.random.Generator) -> int:
        """Number of RPN proposals produced for a scene.

        One-stage detectors return 0: their head cost is folded into the
        fixed stage-1 cost because they evaluate a static anchor grid.
        """
        if not self.is_two_stage:
            return 0
        return self.proposal_model.sample(scene_candidates, rng)

    def expected_proposals(self, scene_candidates: float) -> int:
        """Expected (noise-free) proposal count for a scene."""
        if not self.is_two_stage:
            return 0
        return self.proposal_model.expected_proposals(scene_candidates)

    # -- cost queries ------------------------------------------------------------------

    def stage1_cost(self, image_scale: float = 1.0) -> CycleCost:
        """Total stage-1 cost for an image at ``image_scale``."""
        return _sum_costs(self.stage1, num_proposals=0, image_scale=image_scale)

    def stage2_cost(self, num_proposals: int, image_scale: float = 1.0) -> CycleCost:
        """Total stage-2 cost for ``num_proposals`` proposals."""
        if not self.is_two_stage:
            return CycleCost()
        return _sum_costs(self.stage2, num_proposals=num_proposals, image_scale=image_scale)

    def total_cost(self, num_proposals: int, image_scale: float = 1.0) -> CycleCost:
        """Whole-frame cost."""
        return self.stage1_cost(image_scale) + self.stage2_cost(num_proposals, image_scale)

    def breakdown(
        self, num_proposals: int, image_scale: float = 1.0
    ) -> Tuple[StageBreakdown, ...]:
        """Per-stage cost breakdown for one frame (profiling / Fig. 2)."""
        result = []
        for stage in self.stage1:
            result.append(StageBreakdown(stage.name, stage.cost(0, image_scale)))
        for stage in self.stage2:
            result.append(StageBreakdown(stage.name, stage.cost(num_proposals, image_scale)))
        return tuple(result)


def _sum_costs(stages: Sequence[StageCost], num_proposals: int, image_scale: float) -> CycleCost:
    total = CycleCost()
    for stage in stages:
        total = total + stage.cost(num_proposals, image_scale)
    return total
