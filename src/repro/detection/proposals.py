"""Region Proposal Network proposal-count model.

The number of proposals kept after the RPN's NMS varies strongly from image
to image — it tracks how many candidate objects the scene contains — and is
the internal source of second-stage latency variation identified by the
paper.  The model maps a scene's *candidate object count* (produced by the
workload package) to a proposal count, with a detector-specific keep-ratio,
a post-NMS cap and multiplicative noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DetectorError


@dataclass(frozen=True)
class ProposalModel:
    """Scene candidates -> RPN proposal count.

    Attributes:
        keep_ratio: Average number of proposals kept per scene candidate
            (an RPN typically keeps several overlapping proposals per actual
            object before the second stage refines them).
        max_proposals: Post-NMS cap on the number of proposals (``RPN_POST_NMS_TOP_N``
            in common detector configurations).
        min_proposals: Lower bound; even an empty scene produces a few
            background proposals.
        noise_std: Standard deviation of the multiplicative log-normal noise
            applied to the expected count (captures NMS threshold effects).
    """

    keep_ratio: float = 1.0
    max_proposals: int = 1000
    min_proposals: int = 5
    noise_std: float = 0.08

    def __post_init__(self) -> None:
        if self.keep_ratio <= 0:
            raise DetectorError("keep_ratio must be positive")
        if self.max_proposals <= 0:
            raise DetectorError("max_proposals must be positive")
        if self.min_proposals < 0 or self.min_proposals > self.max_proposals:
            raise DetectorError("min_proposals must lie in [0, max_proposals]")
        if self.noise_std < 0:
            raise DetectorError("noise_std must be non-negative")

    def expected_proposals(self, scene_candidates: float) -> int:
        """Deterministic expected proposal count for a scene (no noise)."""
        if scene_candidates < 0:
            raise DetectorError("scene_candidates must be non-negative")
        expected = scene_candidates * self.keep_ratio
        return int(np.clip(round(expected), self.min_proposals, self.max_proposals))

    def sample(self, scene_candidates: float, rng: np.random.Generator) -> int:
        """Sample a proposal count for a scene with ``scene_candidates`` objects."""
        if scene_candidates < 0:
            raise DetectorError("scene_candidates must be non-negative")
        expected = scene_candidates * self.keep_ratio
        if self.noise_std > 0:
            expected *= float(np.exp(rng.normal(0.0, self.noise_std)))
        return int(np.clip(round(expected), self.min_proposals, self.max_proposals))
