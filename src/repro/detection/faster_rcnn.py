"""Faster R-CNN cost model.

Calibrated so that, at the Jetson Orin Nano's maximum operating points and
KITTI-scale images, stage 1 (pre-processing + ResNet-50 backbone + RPN)
takes ≈225 ms — about 80 % of a typical frame — and the second stage adds a
fixed ≈30 ms plus ≈0.14 ms per proposal, matching the shape of the paper's
Fig. 2 (second-stage latency up to ≈100 ms at 600 proposals).
"""

from __future__ import annotations

from repro.detection.detector import DetectorModel
from repro.detection.proposals import ProposalModel
from repro.detection.stages import CycleCost, StageCost, reference_cost


def faster_rcnn() -> DetectorModel:
    """Build the Faster R-CNN detector cost model."""
    stage1 = (
        StageCost(name="preprocess", fixed=reference_cost(cpu_ms=15.0, gpu_ms=0.0)),
        StageCost(name="backbone", fixed=reference_cost(cpu_ms=10.0, gpu_ms=150.0)),
        StageCost(name="rpn", fixed=reference_cost(cpu_ms=10.0, gpu_ms=40.0)),
    )
    stage2 = (
        StageCost(
            name="roi_pooling",
            fixed=reference_cost(cpu_ms=2.0, gpu_ms=8.0),
            per_proposal=reference_cost(cpu_ms=0.004, gpu_ms=0.016),
            scales_with_image=False,
        ),
        StageCost(
            name="classifier",
            fixed=reference_cost(cpu_ms=1.0, gpu_ms=14.0),
            per_proposal=reference_cost(cpu_ms=0.01, gpu_ms=0.09),
            scales_with_image=False,
        ),
        StageCost(
            name="postprocess",
            fixed=reference_cost(cpu_ms=5.0, gpu_ms=0.0),
            per_proposal=reference_cost(cpu_ms=0.02, gpu_ms=0.0),
            scales_with_image=False,
        ),
    )
    return DetectorModel(
        name="faster_rcnn",
        stage1=stage1,
        stage2=stage2,
        proposal_model=ProposalModel(
            keep_ratio=1.0,
            max_proposals=600,
            min_proposals=10,
            noise_std=0.08,
        ),
        description=(
            "Faster R-CNN with a ResNet-50 backbone: RPN region proposals "
            "followed by an RoI-pooled classification/regression head."
        ),
    )


def faster_rcnn_stage2_per_proposal_ms_at_reference() -> float:
    """Marginal second-stage cost per proposal (ms) at reference frequency.

    Exposed for calibration tests and the Fig. 2 bench.
    """
    model = faster_rcnn()
    base = model.stage2_cost(0)
    plus_one = model.stage2_cost(1)
    delta: CycleCost = CycleCost(
        cpu_kilocycles=plus_one.cpu_kilocycles - base.cpu_kilocycles,
        gpu_kilocycles=plus_one.gpu_kilocycles - base.gpu_kilocycles,
    )
    from repro.detection.stages import REFERENCE_CPU_KHZ, REFERENCE_GPU_KHZ

    return delta.cpu_kilocycles / REFERENCE_CPU_KHZ + delta.gpu_kilocycles / REFERENCE_GPU_KHZ
