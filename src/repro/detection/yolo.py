"""YOLOv5 cost model (one-stage baseline).

YOLOv5 predicts boxes and classes in a single pass over a static anchor
grid, so its per-frame work is essentially constant: there is no
proposal-dependent second stage and therefore almost no latency variation —
the contrast the paper draws in Fig. 1 (variation of a few ms versus
100-200 ms for the two-stage detectors).
"""

from __future__ import annotations

from repro.detection.detector import DetectorModel
from repro.detection.stages import StageCost, reference_cost


def yolo_v5() -> DetectorModel:
    """Build the YOLOv5 (one-stage) detector cost model."""
    stage1 = (
        StageCost(name="preprocess", fixed=reference_cost(cpu_ms=8.0, gpu_ms=0.0)),
        StageCost(name="backbone_neck_head", fixed=reference_cost(cpu_ms=5.0, gpu_ms=58.0)),
        StageCost(
            name="postprocess",
            fixed=reference_cost(cpu_ms=6.0, gpu_ms=0.0),
            scales_with_image=False,
        ),
    )
    return DetectorModel(
        name="yolo_v5",
        stage1=stage1,
        stage2=(),
        description=(
            "YOLOv5: single-pass detector over a static anchor grid; fast "
            "and stable but less accurate than two-stage models."
        ),
    )
