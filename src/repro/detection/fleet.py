"""Batched detection kernels: cost, latency/utilisation and proposals.

Array counterparts of :class:`~repro.detection.latency.ExecutionModel` and
:class:`~repro.detection.proposals.ProposalModel`, evaluated across a fleet
of sessions at once.  Each session may present a different image scale,
proposal count and frequency pair; the detector *model* (stage structure,
cost constants, proposal statistics) is shared.

Bit-exactness: every kernel accumulates in the same order as its scalar
counterpart (stage costs sum left-to-right, utilisations divide before the
``min`` clamp), and proposal noise draws one normal from each session's own
generator so the per-session random streams are consumed exactly as the
scalar environment consumes them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import DetectorError
from repro.detection.detector import DetectorModel
from repro.rl.fused import fused_fleet
from repro.detection.latency import DeviceComputeProfile


@dataclass(frozen=True)
class FleetSegment:
    """Vectorized :class:`~repro.detection.latency.SegmentExecution`.

    Every attribute is a length-N array indexed by session.
    """

    latency_ms: np.ndarray
    cpu_busy_ms: np.ndarray
    gpu_busy_ms: np.ndarray
    cpu_utilisation: np.ndarray
    gpu_utilisation: np.ndarray


def stage1_cost_arrays(
    detector: DetectorModel, image_scale: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-session stage-1 ``(cpu, gpu)`` kilocycles for an image-scale array."""
    cpu = np.zeros_like(image_scale, dtype=float)
    gpu = np.zeros_like(image_scale, dtype=float)
    for stage in detector.stage1:
        if stage.scales_with_image:
            cpu = cpu + stage.fixed.cpu_kilocycles * image_scale
            gpu = gpu + stage.fixed.gpu_kilocycles * image_scale
        else:
            cpu = cpu + stage.fixed.cpu_kilocycles
            gpu = gpu + stage.fixed.gpu_kilocycles
    return cpu, gpu


def stage2_cost_arrays(
    detector: DetectorModel, num_proposals: np.ndarray, image_scale: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-session stage-2 kilocycles for proposal-count and scale arrays."""
    cpu = np.zeros_like(image_scale, dtype=float)
    gpu = np.zeros_like(image_scale, dtype=float)
    if not detector.is_two_stage:
        return cpu, gpu
    proposals = num_proposals.astype(float)
    for stage in detector.stage2:
        if stage.scales_with_image:
            fixed_cpu = stage.fixed.cpu_kilocycles * image_scale
            fixed_gpu = stage.fixed.gpu_kilocycles * image_scale
        else:
            fixed_cpu = stage.fixed.cpu_kilocycles
            fixed_gpu = stage.fixed.gpu_kilocycles
        cpu = cpu + (fixed_cpu + stage.per_proposal.cpu_kilocycles * proposals)
        gpu = gpu + (fixed_gpu + stage.per_proposal.gpu_kilocycles * proposals)
    return cpu, gpu


def proposal_scale(detector: DetectorModel) -> float:
    """Observation-normalisation scale for a detector's proposal counts.

    Two-stage detectors expose their proposal cap; one-stage detectors have
    no RPN, so learning agents normalise against a nominal 100.  This is the
    single definition shared by the scalar policy factory, the fleet policy
    factory and the scenario runner (each detector group of a heterogeneous
    fleet sizes its agents with its own scale).
    """
    return float(detector.proposal_model.max_proposals if detector.is_two_stage else 100)


def propose_batch(
    detector: DetectorModel,
    scene_candidates: np.ndarray,
    rngs: Sequence[np.random.Generator],
) -> np.ndarray:
    """Per-session RPN proposal counts, one noise draw per session stream.

    Mirrors :meth:`~repro.detection.proposals.ProposalModel.sample`: the
    normal draw comes from each session's own generator (keeping the
    per-session random stream identical to a scalar run); the exp/clip/round
    tail is evaluated as array operations.
    """
    if np.any(scene_candidates < 0):
        raise DetectorError("scene_candidates must be non-negative")
    if not detector.is_two_stage:
        return np.zeros(len(scene_candidates), dtype=np.int64)
    model = detector.proposal_model
    factor = None
    if model.noise_std > 0:
        draws = np.array(
            [rng.normal(0.0, model.noise_std) for rng in rngs], dtype=float
        )
        factor = np.exp(draws)
    kernel = fused_fleet()
    if kernel is not None:
        scene = np.ascontiguousarray(scene_candidates, dtype=float)
        counts = np.empty(scene.size, dtype=np.int64)
        kernel.fleet_proposal_tail(
            scene, float(model.keep_ratio), factor,
            float(model.min_proposals), float(model.max_proposals), counts,
        )
        return counts
    expected = scene_candidates * model.keep_ratio
    if factor is not None:
        expected = expected * factor
    counts = np.clip(np.rint(expected), model.min_proposals, model.max_proposals)
    return counts.astype(np.int64)


class BatchedExecutionModel:
    """Vectorized :class:`~repro.detection.latency.ExecutionModel`."""

    def __init__(self, profile: DeviceComputeProfile):
        self.profile = profile

    def execute(
        self,
        cpu_kilocycles: np.ndarray,
        gpu_kilocycles: np.ndarray,
        cpu_frequency_khz: np.ndarray,
        gpu_frequency_khz: np.ndarray,
    ) -> FleetSegment:
        """Latency and utilisation of running per-session costs."""
        if np.any(cpu_frequency_khz <= 0) or np.any(gpu_frequency_khz <= 0):
            raise DetectorError("frequencies must be positive")
        cpu_ms = cpu_kilocycles / (cpu_frequency_khz * self.profile.cpu_efficiency)
        gpu_ms = gpu_kilocycles / (gpu_frequency_khz * self.profile.gpu_efficiency)
        latency_ms = cpu_ms + gpu_ms + self.profile.launch_overhead_ms
        # Degenerate zero-work segments (possible only with a zero launch
        # overhead) report an idle instant, as the scalar model does.
        safe_latency = np.where(latency_ms > 0, latency_ms, 1.0)
        cpu_busy = cpu_ms + self.profile.host_activity * gpu_ms
        cpu_utilisation = np.where(
            latency_ms > 0, np.minimum(1.0, cpu_busy / safe_latency), 0.0
        )
        gpu_utilisation = np.where(
            latency_ms > 0, np.minimum(1.0, gpu_ms / safe_latency), 0.0
        )
        return FleetSegment(
            latency_ms=np.where(latency_ms > 0, latency_ms, 0.0),
            cpu_busy_ms=np.where(latency_ms > 0, cpu_ms, 0.0),
            gpu_busy_ms=np.where(latency_ms > 0, gpu_ms, 0.0),
            cpu_utilisation=cpu_utilisation,
            gpu_utilisation=gpu_utilisation,
        )
