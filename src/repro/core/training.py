"""Online training sessions.

A thin orchestration layer that runs a policy on an environment and packages
the trace, summary metrics and (for learning policies) the training
diagnostics into a single :class:`SessionResult`.  The experiment runners in
:mod:`repro.analysis.experiments` are built on top of this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.env.environment import InferenceEnvironment
from repro.env.episode import run_episode
from repro.env.metrics import EpisodeMetrics, summarize_trace
from repro.env.policy import Policy
from repro.env.trace import Trace


@dataclass(frozen=True)
class SessionResult:
    """Outcome of one online session.

    Attributes:
        policy_name: Name of the policy that produced the trace.
        trace: Per-frame records of the whole session.
        metrics: Summary statistics over the whole trace.
        steady_metrics: Summary statistics over the second half of the trace
            only — for learning policies this excludes most of the
            exploration transient and is closer to the converged behaviour
            the paper's tables report.
        losses: TD losses recorded by the policy, if it learns (else empty).
        rewards: Per-frame rewards recorded by the policy, if any.
    """

    policy_name: str
    trace: Trace
    metrics: EpisodeMetrics
    steady_metrics: EpisodeMetrics
    losses: List[float]
    rewards: List[float]


def session_result_from_trace(
    policy_name: str,
    trace: Trace,
    losses: List[float] | None = None,
    rewards: List[float] | None = None,
) -> SessionResult:
    """Package a completed trace into a :class:`SessionResult`.

    This is the single place where the whole-episode and steady-state
    summaries are derived from a trace, shared by :class:`OnlineSession`
    (fresh runs) and the runtime's result cache (deserialised runs) so both
    paths produce bit-identical metrics.
    """
    metrics = summarize_trace(trace)
    steady_trace = trace.skip(len(trace) // 2) if len(trace) >= 4 else trace
    steady_metrics = summarize_trace(steady_trace)
    return SessionResult(
        policy_name=policy_name,
        trace=trace,
        metrics=metrics,
        steady_metrics=steady_metrics,
        losses=list(losses) if losses else [],
        rewards=list(rewards) if rewards else [],
    )


class OnlineSession:
    """Couples an environment with a policy and runs online episodes."""

    def __init__(self, environment: InferenceEnvironment, policy: Policy):
        self.environment = environment
        self.policy = policy

    def run(self, num_frames: int, reset_environment: bool = True) -> SessionResult:
        """Run ``num_frames`` frames and summarise the outcome."""
        trace = run_episode(
            self.environment,
            self.policy,
            num_frames,
            reset_environment=reset_environment,
        )
        return session_result_from_trace(
            self.policy.name,
            trace,
            losses=list(getattr(self.policy, "loss_history", [])),
            rewards=list(getattr(self.policy, "reward_history", [])),
        )
