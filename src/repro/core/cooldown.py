"""Epsilon_t-greedy cool-down action selection (paper §4.3.5).

When either die temperature exceeds the throttling threshold, zTT always
replaces the agent's action with a random *lower* frequency pair.  That
keeps the device safe but prevents the agent from ever learning how to act
in hot states.  Lotus instead takes the random cooler action only with
probability epsilon_t, and decays epsilon_t sinusoidally each time the
cool-down fires, so the safety net is strong early in training and fades as
the agent accumulates experience with overheating situations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.core.action import JointActionSpace
from repro.rl.schedule import SinusoidalDecaySchedule


class CooldownSelector:
    """Stateful epsilon_t-greedy cool-down selector.

    Args:
        initial_epsilon: Initial probability of forcing a cooler action when
            overheated (epsilon_t is "initialised between [0, 1]").
        decay_triggers: Number of cool-down triggers over which epsilon_t
            decays to ``final_epsilon``.
        final_epsilon: Residual probability after the decay completes.
        always: When ``True`` the selector reproduces zTT's behaviour — the
            cool-down action is always taken when overheated (used by the
            zTT baseline and the cool-down ablation).
    """

    def __init__(
        self,
        initial_epsilon: float = 0.9,
        decay_triggers: int = 60,
        final_epsilon: float = 0.05,
        always: bool = False,
    ):
        if not 0.0 <= initial_epsilon <= 1.0:
            raise ConfigurationError("initial_epsilon must lie in [0, 1]")
        self._schedule = SinusoidalDecaySchedule(
            initial=initial_epsilon,
            decay_triggers=decay_triggers,
            final=min(final_epsilon, initial_epsilon),
        )
        self.always = always
        self._trigger_count = 0

    # -- state ------------------------------------------------------------------------

    @property
    def trigger_count(self) -> int:
        """Number of times the cool-down action has been triggered."""
        return self._trigger_count

    @property
    def current_epsilon(self) -> float:
        """Current value of epsilon_t."""
        return self._schedule.value(self._trigger_count)

    def reset(self) -> None:
        """Reset the trigger counter (new episode / new training run)."""
        self._trigger_count = 0

    def state_dict(self) -> dict:
        """Snapshot of the selector's mutable state (the trigger count)."""
        return {"trigger_count": int(self._trigger_count)}

    def load_state_dict(self, payload: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        count = int(payload["trigger_count"])
        if count < 0:
            raise ConfigurationError("trigger_count must be non-negative")
        self._trigger_count = count

    # -- behaviour -----------------------------------------------------------------------

    def is_overheated(
        self, cpu_temperature_c: float, gpu_temperature_c: float, threshold_c: float
    ) -> bool:
        """Whether either die exceeds the threshold."""
        return cpu_temperature_c > threshold_c or gpu_temperature_c > threshold_c

    def maybe_cooldown_action(
        self,
        action_space: JointActionSpace,
        cpu_level: int,
        gpu_level: int,
        cpu_temperature_c: float,
        gpu_temperature_c: float,
        threshold_c: float,
        rng: np.random.Generator,
    ) -> int | None:
        """Return a forced cooler action index, or ``None`` to defer to the agent.

        When the device is overheated the cooler action is returned with
        probability epsilon_t (always, in zTT mode); every firing counts as
        a trigger and advances the sinusoidal decay.
        """
        if not self.is_overheated(cpu_temperature_c, gpu_temperature_c, threshold_c):
            return None
        if not self.always and rng.random() >= self.current_epsilon:
            return None
        action = action_space.random_cooler_action(cpu_level, gpu_level, rng)
        self._trigger_count += 1
        return action
