"""Joint CPU x GPU frequency action space.

For a device with M CPU frequency levels and N GPU frequency levels the
Lotus action space contains M*N actions, each corresponding to one
``<f_cpu_m, f_gpu_n>`` pair (paper §4.3.1).  Both per-frame decisions use
the same action set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import AgentError


@dataclass(frozen=True)
class JointActionSpace:
    """Enumeration of all joint CPU/GPU frequency-level pairs.

    Actions are indexed row-major: ``index = cpu_level * gpu_levels +
    gpu_level``.

    Attributes:
        cpu_levels: Number of CPU frequency levels (M).
        gpu_levels: Number of GPU frequency levels (N).
    """

    cpu_levels: int
    gpu_levels: int

    def __post_init__(self) -> None:
        if self.cpu_levels <= 0 or self.gpu_levels <= 0:
            raise AgentError("cpu_levels and gpu_levels must be positive")

    @property
    def size(self) -> int:
        """Number of actions (M*N)."""
        return self.cpu_levels * self.gpu_levels

    def encode(self, cpu_level: int, gpu_level: int) -> int:
        """Map a ``(cpu_level, gpu_level)`` pair to an action index."""
        if not 0 <= cpu_level < self.cpu_levels:
            raise AgentError(f"cpu_level {cpu_level} out of range [0, {self.cpu_levels - 1}]")
        if not 0 <= gpu_level < self.gpu_levels:
            raise AgentError(f"gpu_level {gpu_level} out of range [0, {self.gpu_levels - 1}]")
        return cpu_level * self.gpu_levels + gpu_level

    def decode(self, action_index: int) -> Tuple[int, int]:
        """Map an action index to its ``(cpu_level, gpu_level)`` pair."""
        if not 0 <= action_index < self.size:
            raise AgentError(f"action index {action_index} out of range [0, {self.size - 1}]")
        return divmod(action_index, self.gpu_levels)

    def all_pairs(self) -> List[Tuple[int, int]]:
        """All ``(cpu_level, gpu_level)`` pairs in index order."""
        return [self.decode(i) for i in range(self.size)]

    # -- cool-down support -------------------------------------------------------------

    def cooler_actions(self, cpu_level: int, gpu_level: int) -> List[int]:
        """Actions that do not raise either frequency and lower at least one.

        This is the candidate set of the cool-down action selection: "a
        random CPU and GPU frequency which is lower than the current status".
        If the device is already at the lowest operating points the set is
        empty and the caller should simply stay put.
        """
        if not 0 <= cpu_level < self.cpu_levels:
            raise AgentError(f"cpu_level {cpu_level} out of range [0, {self.cpu_levels - 1}]")
        if not 0 <= gpu_level < self.gpu_levels:
            raise AgentError(f"gpu_level {gpu_level} out of range [0, {self.gpu_levels - 1}]")
        actions = []
        for cpu in range(cpu_level + 1):
            for gpu in range(gpu_level + 1):
                if cpu < cpu_level or gpu < gpu_level:
                    actions.append(self.encode(cpu, gpu))
        return actions

    def random_cooler_action(
        self, cpu_level: int, gpu_level: int, rng: np.random.Generator
    ) -> int:
        """A random action from :meth:`cooler_actions` (or stay put if none)."""
        candidates = self.cooler_actions(cpu_level, gpu_level)
        if not candidates:
            return self.encode(cpu_level, gpu_level)
        return int(rng.choice(candidates))
