"""The Lotus DRL agent.

One slimmable Q-network provides two frequency-scaling decisions per image
frame (paper §4.3.4):

* at the **start of the frame** the state has no proposal count, and the
  Q-values are computed with only the first ``alpha x`` channels of every
  hidden layer;
* **after the RPN** the proposal count is appended to the state and the
  Q-values use the full network width.

Transitions from the two decision points are stored in two separate replay
buffers; batches sampled from the first buffer update only the reduced-width
slice of the network, batches from the second buffer update the full
network.  Exploration is epsilon-greedy, overridden by the epsilon_t-greedy
cool-down selection whenever the device is overheated.

The agent implements the generic :class:`~repro.env.policy.Policy`
interface, so the same episode runner that drives the default governors and
zTT drives Lotus.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import AgentError
from repro.core.action import JointActionSpace
from repro.core.config import LotusConfig
from repro.core.cooldown import CooldownSelector
from repro.core.reward import RewardCalculator
from repro.core.state import StateEncoder
from repro.env.environment import (
    FrameResult,
    FrameStartObservation,
    MidFrameObservation,
)
from repro.env.policy import FrequencyDecision, Policy
from repro.rl.dqn import DqnConfig, DqnLearner
from repro.rl.optimizer import Adam
from repro.rl.replay import ReplayBuffer
from repro.rl.schedule import CosineDecaySchedule, LinearDecaySchedule
from repro.rl.slimmable import SlimmableMLP


class LotusAgent(Policy):
    """Online thermal and latency variation management agent.

    Args:
        cpu_levels: Number of CPU frequency levels of the target device (M).
        gpu_levels: Number of GPU frequency levels (N).
        temperature_threshold_c: Throttling temperature used for state
            normalisation, the reward and the cool-down trigger.
        proposal_scale: Proposal count that normalises to 1.0 in the state
            (typically the detector's post-NMS cap).
        config: Hyper-parameters; defaults to :class:`LotusConfig`.
        rng: Random generator (exploration, replay sampling, cool-down).
    """

    name = "lotus"

    def __init__(
        self,
        cpu_levels: int,
        gpu_levels: int,
        temperature_threshold_c: float,
        proposal_scale: float,
        config: LotusConfig | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.config = config if config is not None else LotusConfig()
        self.rng = rng if rng is not None else np.random.default_rng(self.config.seed)
        self.action_space = JointActionSpace(cpu_levels, gpu_levels)
        self.temperature_threshold_c = (
            self.config.temperature_threshold_c
            if self.config.temperature_threshold_c is not None
            else temperature_threshold_c
        )
        self.encoder = StateEncoder(
            cpu_levels=cpu_levels,
            gpu_levels=gpu_levels,
            temperature_scale_c=self.temperature_threshold_c,
            proposal_scale=proposal_scale,
        )
        widths = (1.0,) if self.config.single_decision else self.config.widths
        self._start_width = 1.0 if self.config.single_decision else self.config.widths[0]
        self.network = SlimmableMLP(
            input_dim=self.encoder.dimension,
            hidden_dims=self.config.hidden_dims,
            output_dim=self.action_space.size,
            widths=widths,
            rng=self.rng,
        )
        self.learner = DqnLearner(
            network=self.network,
            config=DqnConfig(
                discount=self.config.discount,
                batch_size=self.config.batch_size,
                target_sync_interval=self.config.target_sync_interval,
            ),
            optimizer=Adam(
                learning_rate=self.config.learning_rate,
                beta1=self.config.adam_beta1,
                beta2=self.config.adam_beta2,
            ),
            learning_rate_schedule=CosineDecaySchedule(
                initial=self.config.learning_rate,
                decay_steps=self.config.lr_decay_steps,
                final=self.config.learning_rate * 0.01,
            ),
        )
        self._epsilon_schedule = LinearDecaySchedule(
            initial=self.config.epsilon_start,
            final=self.config.epsilon_end,
            decay_steps=self.config.epsilon_decay_steps,
        )
        self.cooldown = CooldownSelector(
            initial_epsilon=self.config.cooldown_epsilon,
            decay_triggers=self.config.cooldown_decay_triggers,
            final_epsilon=self.config.cooldown_epsilon_final,
            always=self.config.always_cooldown,
        )
        self.reward_calculator = RewardCalculator(self.config.reward)

        self.start_buffer = ReplayBuffer(self.config.replay_capacity)
        self.mid_buffer = (
            self.start_buffer if self.config.shared_buffer else ReplayBuffer(self.config.replay_capacity)
        )

        self.training = True
        self._decision_count = 0
        self._loss_history: List[float] = []
        self._reward_history: List[float] = []

        self._start_state: np.ndarray | None = None
        self._start_action: int | None = None
        self._mid_state: np.ndarray | None = None
        self._mid_action: int | None = None
        self._pending_transition: tuple[np.ndarray, int, float] | None = None

    # -- public knobs -------------------------------------------------------------------

    def set_training(self, training: bool) -> None:
        """Enable/disable exploration and learning (evaluation mode)."""
        self.training = training

    @property
    def epsilon(self) -> float:
        """Current exploration epsilon (0 in evaluation mode)."""
        if not self.training:
            return 0.0
        return self._epsilon_schedule.value(self._decision_count)

    @property
    def loss_history(self) -> List[float]:
        """TD losses of every training step performed so far."""
        return list(self._loss_history)

    @property
    def reward_history(self) -> List[float]:
        """Per-frame rewards observed so far."""
        return list(self._reward_history)

    def reset(self) -> None:
        """Reset per-episode bookkeeping (keeps learned weights and replay)."""
        self.reward_calculator.reset()
        self._start_state = None
        self._start_action = None
        self._mid_state = None
        self._mid_action = None
        self._pending_transition = None

    # -- checkpointing -------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Complete snapshot of the agent's training state.

        Everything a decision or training step reads or mutates is captured
        — network and target parameters, optimizer moments, both replay
        rings, the exploration/cool-down counters, the reward window, the
        RNG state and the in-flight transition bookkeeping — so that
        save → load → continue is bit-identical to an uninterrupted run,
        even mid-episode (the pending cross-frame transition survives).
        """
        pending = None
        if self._pending_transition is not None:
            state, action, reward = self._pending_transition
            pending = {
                "state": state.copy(),
                "action": int(action),
                "reward": float(reward),
            }
        return {
            "training": bool(self.training),
            "decision_count": int(self._decision_count),
            "loss_history": [float(v) for v in self._loss_history],
            "reward_history": [float(v) for v in self._reward_history],
            "rng": self.rng.bit_generator.state,
            "cooldown": self.cooldown.state_dict(),
            "reward_calculator": self.reward_calculator.state_dict(),
            "learner": self.learner.state_dict(),
            "start_buffer": self.start_buffer.state_dict(),
            "mid_buffer": (
                None
                if self.mid_buffer is self.start_buffer
                else self.mid_buffer.state_dict()
            ),
            "start_state": None if self._start_state is None else self._start_state.copy(),
            "start_action": None if self._start_action is None else int(self._start_action),
            "mid_state": None if self._mid_state is None else self._mid_state.copy(),
            "mid_action": None if self._mid_action is None else int(self._mid_action),
            "pending_transition": pending,
        }

    def load_state_dict(self, payload: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into this agent in place.

        The agent must have been constructed with the same configuration
        and geometry as the one that produced the snapshot (the checkpoint
        layer guarantees this by rebuilding from the stored config).
        """
        shared = payload["mid_buffer"] is None
        if shared != (self.mid_buffer is self.start_buffer):
            raise AgentError(
                "snapshot and agent disagree on the shared-buffer ablation"
            )
        self.learner.load_state_dict(payload["learner"])
        self.start_buffer.load_state_dict(payload["start_buffer"])
        if not shared:
            self.mid_buffer.load_state_dict(payload["mid_buffer"])
        self.cooldown.load_state_dict(payload["cooldown"])
        self.reward_calculator.load_state_dict(payload["reward_calculator"])
        self.rng.bit_generator.state = payload["rng"]
        self.training = bool(payload["training"])
        self._decision_count = int(payload["decision_count"])
        self._loss_history = [float(v) for v in payload["loss_history"]]
        self._reward_history = [float(v) for v in payload["reward_history"]]
        self._start_state = (
            None
            if payload["start_state"] is None
            else np.asarray(payload["start_state"], dtype=float)
        )
        self._start_action = (
            None if payload["start_action"] is None else int(payload["start_action"])
        )
        self._mid_state = (
            None
            if payload["mid_state"] is None
            else np.asarray(payload["mid_state"], dtype=float)
        )
        self._mid_action = (
            None if payload["mid_action"] is None else int(payload["mid_action"])
        )
        pending = payload["pending_transition"]
        self._pending_transition = (
            None
            if pending is None
            else (
                np.asarray(pending["state"], dtype=float),
                int(pending["action"]),
                float(pending["reward"]),
            )
        )

    # -- helpers ------------------------------------------------------------------------

    def _select_action(
        self,
        state: np.ndarray,
        width: float,
        cpu_level: int,
        gpu_level: int,
        cpu_temperature_c: float,
        gpu_temperature_c: float,
    ) -> int:
        """Cool-down-aware epsilon-greedy action selection."""
        if self.training:
            forced = self.cooldown.maybe_cooldown_action(
                self.action_space,
                cpu_level,
                gpu_level,
                cpu_temperature_c,
                gpu_temperature_c,
                self.temperature_threshold_c,
                self.rng,
            )
            if forced is not None:
                return forced
        action = self.learner.select_action(state, self.epsilon, self.rng, width=width)
        self._decision_count += 1
        return action

    def _maybe_train(self, buffer: ReplayBuffer, width: float) -> None:
        if not self.training:
            return
        if len(buffer) < max(self.config.learning_starts, self.config.batch_size):
            return
        if self._decision_count % self.config.train_interval != 0:
            return
        batch = buffer.sample(self.config.batch_size, self.rng)
        loss = self.learner.train_batch(batch, width=width)
        self._loss_history.append(loss)

    def _decision_from_action(self, action: int) -> FrequencyDecision:
        cpu_level, gpu_level = self.action_space.decode(action)
        return FrequencyDecision(cpu_level=cpu_level, gpu_level=gpu_level)

    # -- policy protocol -----------------------------------------------------------------

    def begin_frame(self, observation: FrameStartObservation) -> FrequencyDecision:
        state = self.encoder.encode_start(observation)
        # Complete the transition whose next state is this frame's start state:
        # <s_{2i+1}, a_{2i+1}, r_{2i+1}, s_{2i+2}> in the two-decision setting,
        # or the whole-frame transition in the single-decision ablation.
        if self._pending_transition is not None and self.training:
            prev_state, prev_action, prev_reward = self._pending_transition
            # In the single-decision ablation there is only one kind of
            # transition, stored in (and trained from) the start buffer.
            buffer = self.start_buffer if self.config.single_decision else self.mid_buffer
            buffer.append(
                state=prev_state,
                action=prev_action,
                reward=prev_reward,
                next_state=state,
                next_width=self._start_width,
            )
        self._pending_transition = None
        self._maybe_train(self.start_buffer, self._start_width)
        action = self._select_action(
            state,
            self._start_width,
            observation.cpu_level,
            observation.gpu_level,
            observation.cpu_temperature_c,
            observation.gpu_temperature_c,
        )
        self._start_state = state
        self._start_action = action
        return self._decision_from_action(action)

    def mid_frame(self, observation: MidFrameObservation) -> FrequencyDecision | None:
        if self.config.single_decision:
            return None
        if self._start_state is None or self._start_action is None:
            raise AgentError("mid_frame called before begin_frame")
        state = self.encoder.encode_mid(observation)
        self._maybe_train(self.mid_buffer, 1.0)
        action = self._select_action(
            state,
            1.0,
            observation.cpu_level,
            observation.gpu_level,
            observation.cpu_temperature_c,
            observation.gpu_temperature_c,
        )
        self._mid_state = state
        self._mid_action = action
        return self._decision_from_action(action)

    def end_frame(self, result: FrameResult) -> None:
        frame_reward = self.reward_calculator.frame_reward(
            latency_ms=result.total_latency_ms,
            constraint_ms=result.latency_constraint_ms,
            cpu_temperature_c=result.cpu_temperature_c,
            gpu_temperature_c=result.gpu_temperature_c,
            threshold_c=self.temperature_threshold_c,
        )
        self._reward_history.append(frame_reward.total)
        if self.config.single_decision:
            if self._start_state is not None and self._start_action is not None:
                self._pending_transition = (
                    self._start_state,
                    self._start_action,
                    frame_reward.total,
                )
        else:
            # Both per-frame decisions are credited with the frame reward
            # (the paper's dL_i is defined per image): the first transition
            # <s_2i, a_2i, r_i, s_{2i+1}> can be stored now, the second one
            # needs the next frame's start state and is therefore deferred.
            if (
                self.training
                and self._start_state is not None
                and self._start_action is not None
                and self._mid_state is not None
            ):
                self.start_buffer.append(
                    state=self._start_state,
                    action=self._start_action,
                    reward=frame_reward.total,
                    next_state=self._mid_state,
                    next_width=1.0,
                )
            if self._mid_state is not None and self._mid_action is not None:
                self._pending_transition = (
                    self._mid_state,
                    self._mid_action,
                    frame_reward.total,
                )
        self._start_state = None
        self._start_action = None
        self._mid_state = None
        self._mid_action = None
