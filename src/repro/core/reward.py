"""Reward design (paper §4.3.3).

The per-step reward is ``r = r_time + lambda * r_temp`` with

* ``r_time = tanh(dL) + 1 / (1 + sigma_n(dL))`` when the latency slack
  ``dL = L - l`` is positive — the tanh term rewards fast inference and the
  ``1 / (1 + sigma_n)`` term rewards a *small latency variation* over the n
  most recent frames (the ingredient missing from zTT's reward).  Because the
  slack is normalised by the constraint, ``sigma_n`` is multiplied by a
  configurable scale so the variation term spans a useful range;
* ``r_time = p * dL`` when the constraint is violated (``dL < 0``), i.e. a
  penalty proportional to the violation;
* ``r_temp = +1`` while both dies stay below the throttling threshold and
  ``-p`` otherwise.

All latency quantities are normalised by the constraint ``L`` so the reward
scale is device- and dataset-independent.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RewardConfig:
    """Hyper-parameters of the Lotus reward.

    Attributes:
        temperature_weight: The lambda weighting of the temperature reward.
        penalty: The penalty multiplier ``p`` applied to constraint
            violations and over-temperature steps.
        variation_window: ``n``, the number of recent frames over which the
            latency standard deviation is computed.
        variation_scale: Multiplier applied to the normalised latency
            standard deviation inside ``1 / (1 + scale * sigma_n)``.  The
            slack is expressed as a fraction of the constraint, so typical
            standard deviations are a few hundredths; the scale stretches
            them so the variation term actually differentiates stable from
            erratic behaviour.
        tanh_scale: Slope applied inside the tanh so that typical normalised
            slacks (a few tenths) land on the responsive part of the curve.
        stage1_budget_fraction: Fraction of the latency budget attributed to
            stage 1 when computing the first decision's reward.  The paper's
            profiling found stage 1 to account for ≈80 % of the latency, so
            the first action is judged against 80 % of the constraint.
        temperature_soft_margin_c: Width of the graded zone just below the
            threshold.  Eq. 3 of the paper is a hard step (+1 below the
            threshold, -p above); with the simulator's coarse two-decisions-
            per-frame granularity a thin graded zone makes the thermal cost
            of approaching the threshold visible to one-step credit
            assignment.  Set to 0 to recover the exact Eq. 3 behaviour.
    """

    temperature_weight: float = 0.5
    penalty: float = 2.0
    variation_window: int = 10
    variation_scale: float = 6.0
    tanh_scale: float = 2.0
    stage1_budget_fraction: float = 0.8
    temperature_soft_margin_c: float = 4.0

    def __post_init__(self) -> None:
        if self.temperature_weight < 0:
            raise ConfigurationError("temperature_weight must be non-negative")
        if self.penalty <= 0:
            raise ConfigurationError("penalty must be positive")
        if self.variation_window <= 1:
            raise ConfigurationError("variation_window must be at least 2")
        if self.variation_scale < 0:
            raise ConfigurationError("variation_scale must be non-negative")
        if self.tanh_scale <= 0:
            raise ConfigurationError("tanh_scale must be positive")
        if not 0.0 < self.stage1_budget_fraction <= 1.0:
            raise ConfigurationError("stage1_budget_fraction must lie in (0, 1]")
        if self.temperature_soft_margin_c < 0:
            raise ConfigurationError("temperature_soft_margin_c must be non-negative")


@dataclass(frozen=True)
class RewardBreakdown:
    """A reward value together with its components (for logging / tests)."""

    total: float
    time_component: float
    temperature_component: float
    latency_std: float


class RewardCalculator:
    """Stateful reward computation with the rolling latency-variation window."""

    def __init__(self, config: RewardConfig | None = None):
        self.config = config if config is not None else RewardConfig()
        self._recent_slacks: Deque[float] = deque(maxlen=self.config.variation_window)

    def reset(self) -> None:
        """Clear the latency-variation window (start of a new episode)."""
        self._recent_slacks.clear()

    def state_dict(self) -> dict:
        """Snapshot of the rolling variation window (the only mutable state)."""
        return {"recent_slacks": [float(v) for v in self._recent_slacks]}

    def load_state_dict(self, payload: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        slacks = payload["recent_slacks"]
        if len(slacks) > self.config.variation_window:
            raise ConfigurationError(
                f"snapshot holds {len(slacks)} slacks but the variation "
                f"window is {self.config.variation_window}"
            )
        self._recent_slacks.clear()
        self._recent_slacks.extend(float(v) for v in slacks)

    # -- component rewards ---------------------------------------------------------

    def observe_slack(self, slack_fraction: float) -> None:
        """Record a frame's normalised latency slack for the variation term."""
        self._recent_slacks.append(float(slack_fraction))

    def latency_variation(self) -> float:
        """Standard deviation of the recorded normalised slacks."""
        if len(self._recent_slacks) < 2:
            return 0.0
        return float(np.std(np.array(self._recent_slacks)))

    def time_reward(self, slack_fraction: float) -> float:
        """The ``r_time`` component for a normalised slack ``dL / L``."""
        config = self.config
        if slack_fraction > 0:
            variation = config.variation_scale * self.latency_variation()
            return math.tanh(config.tanh_scale * slack_fraction) + 1.0 / (1.0 + variation)
        return config.penalty * slack_fraction

    def temperature_reward(
        self, cpu_temperature_c: float, gpu_temperature_c: float, threshold_c: float
    ) -> float:
        """The ``r_temp`` component.

        +1 while both dies are comfortably below the threshold, ``-p`` once
        either exceeds it, with an optional thin graded zone just below the
        threshold (see :attr:`RewardConfig.temperature_soft_margin_c`).
        """
        hottest = max(cpu_temperature_c, gpu_temperature_c)
        if hottest > threshold_c:
            return -self.config.penalty
        margin = self.config.temperature_soft_margin_c
        if margin <= 0 or hottest <= threshold_c - margin:
            return 1.0
        # Linear descent from +1 at (threshold - margin) to 0 at the threshold.
        return (threshold_c - hottest) / margin

    # -- combined rewards -----------------------------------------------------------------

    def frame_reward(
        self,
        latency_ms: float,
        constraint_ms: float,
        cpu_temperature_c: float,
        gpu_temperature_c: float,
        threshold_c: float,
    ) -> RewardBreakdown:
        """Reward for a completed frame (used for the second decision).

        The frame's normalised slack is also recorded into the variation
        window, so callers should invoke this exactly once per frame.
        """
        if constraint_ms <= 0:
            raise ConfigurationError("constraint must be positive")
        slack_fraction = (constraint_ms - latency_ms) / constraint_ms
        time_component = self.time_reward(slack_fraction)
        temperature_component = self.temperature_reward(
            cpu_temperature_c, gpu_temperature_c, threshold_c
        )
        total = time_component + self.config.temperature_weight * temperature_component
        breakdown = RewardBreakdown(
            total=total,
            time_component=time_component,
            temperature_component=temperature_component,
            latency_std=self.latency_variation(),
        )
        self.observe_slack(slack_fraction)
        return breakdown

    def stage1_reward(
        self,
        stage1_latency_ms: float,
        constraint_ms: float,
        cpu_temperature_c: float,
        gpu_temperature_c: float,
        threshold_c: float,
    ) -> RewardBreakdown:
        """Reward for the first decision of a frame.

        The first action only controls stage 1, so it is judged against the
        share of the latency budget that stage 1 is expected to use
        (``stage1_budget_fraction``, ≈80 % per the paper's profiling): if
        stage 1 already consumed more than that share, the first decision
        was too slow regardless of what happens in stage 2.
        """
        if constraint_ms <= 0:
            raise ConfigurationError("constraint must be positive")
        stage1_budget = self.config.stage1_budget_fraction * constraint_ms
        slack_fraction = (stage1_budget - stage1_latency_ms) / stage1_budget
        time_component = self.time_reward(slack_fraction)
        temperature_component = self.temperature_reward(
            cpu_temperature_c, gpu_temperature_c, threshold_c
        )
        total = time_component + self.config.temperature_weight * temperature_component
        return RewardBreakdown(
            total=total,
            time_component=time_component,
            temperature_component=temperature_component,
            latency_std=self.latency_variation(),
        )
