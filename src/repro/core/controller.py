"""Lotus controller facade.

Most users of the library do not want to assemble the action space, state
encoder, Q-network and replay buffers by hand — they have an
:class:`~repro.env.environment.InferenceEnvironment` (or a device plus a
detector plus a workload) and want Lotus to manage it.
:class:`LotusController` builds a correctly parameterised
:class:`~repro.core.agent.LotusAgent` from the environment and exposes the
online management loop and an exploration-free evaluation mode.
"""

from __future__ import annotations

import numpy as np

from repro.core.agent import LotusAgent
from repro.core.config import LotusConfig
from repro.env.environment import InferenceEnvironment
from repro.env.episode import ProgressCallback, run_episode
from repro.env.metrics import EpisodeMetrics, summarize_trace
from repro.env.trace import Trace


def build_lotus_agent(
    environment: InferenceEnvironment,
    config: LotusConfig | None = None,
    rng: np.random.Generator | None = None,
) -> LotusAgent:
    """Build a :class:`LotusAgent` sized for ``environment``.

    The action space is taken from the device's frequency tables, the
    temperature normalisation from the environment's throttling threshold,
    and the proposal normalisation from the detector's post-NMS cap.
    """
    detector = environment.detector
    proposal_scale = (
        detector.proposal_model.max_proposals if detector.is_two_stage else 100
    )
    return LotusAgent(
        cpu_levels=environment.device.cpu.num_levels,
        gpu_levels=environment.device.gpu.num_levels,
        temperature_threshold_c=environment.throttle_threshold_c,
        proposal_scale=float(proposal_scale),
        config=config,
        rng=rng,
    )


class LotusController:
    """Online thermal / latency-variation management of one environment.

    Args:
        environment: The inference environment to manage.
        config: Agent hyper-parameters (defaults to :class:`LotusConfig`).
        rng: Random generator for the agent.
    """

    def __init__(
        self,
        environment: InferenceEnvironment,
        config: LotusConfig | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.environment = environment
        self.agent = build_lotus_agent(environment, config, rng)

    def run(
        self,
        num_frames: int,
        reset_environment: bool = True,
        progress_callback: ProgressCallback | None = None,
    ) -> Trace:
        """Run online management (learning enabled) for ``num_frames`` frames."""
        self.agent.set_training(True)
        return run_episode(
            self.environment,
            self.agent,
            num_frames,
            reset_environment=reset_environment,
            progress_callback=progress_callback,
        )

    def evaluate(
        self,
        num_frames: int,
        reset_environment: bool = False,
    ) -> Trace:
        """Run the learned policy without exploration or further learning.

        By default the device state is *not* reset, matching the deployment
        scenario where evaluation continues from the thermal state reached
        during online learning.
        """
        was_training = self.agent.training
        self.agent.set_training(False)
        try:
            trace = run_episode(
                self.environment,
                self.agent,
                num_frames,
                reset_environment=reset_environment,
                reset_policy=False,
            )
        finally:
            self.agent.set_training(was_training)
        return trace

    def summarize(self, trace: Trace) -> EpisodeMetrics:
        """Convenience wrapper around :func:`summarize_trace`."""
        return summarize_trace(trace)
