"""Fleet-trained Lotus agent: one Q-network, N concurrent sessions.

The scalar :class:`~repro.core.agent.LotusAgent` learns from a single
device.  :class:`FleetLotusAgent` is the vectorized-RL variant enabled by
the fleet engine: one shared slimmable Q-network selects actions for the
whole fleet with a single batched forward pass per decision point (reusing
:meth:`repro.rl.slimmable.SlimmableMLP.predict` on ``(N, state)`` batches),
and the replay buffers collect transitions from *every* session, so the
agent sees N times more experience per simulated frame.

This is deliberately a different training regime from N independent scalar
agents (shared weights, shared replay) — per-session scalar semantics
remain available through
:class:`repro.env.fleet.PerSessionPolicies`.  Exploration, the dual-buffer
reduced/full-width update scheme, the reward and the epsilon_t cool-down
follow the scalar agent's design, applied per session.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import AgentError
from repro.core.action import JointActionSpace
from repro.core.config import LotusConfig
from repro.core.cooldown import CooldownSelector
from repro.core.reward import RewardCalculator
from repro.env.fleet import (
    FleetDecision,
    FleetFrameResult,
    FleetMidObservation,
    FleetPolicy,
    FleetStartObservation,
)
from repro.rl.dqn import DqnConfig, DqnLearner
from repro.rl.optimizer import Adam
from repro.rl.replay import ReplayBuffer
from repro.rl.schedule import CosineDecaySchedule, LinearDecaySchedule
from repro.rl.slimmable import SlimmableMLP


class FleetLotusAgent(FleetPolicy):
    """Online thermal/latency management of a whole fleet with one network.

    Args:
        cpu_levels / gpu_levels: Frequency-table sizes of the fleet's device.
        temperature_threshold_c: Control threshold for reward and cool-down.
        proposal_scale: Proposal count normalising to 1.0 in the state.
        num_sessions: Fleet size N.
        config: Hyper-parameters; defaults to :class:`LotusConfig`.
        rng: Random generator (exploration, replay sampling, cool-down).
    """

    name = "lotus-fleet"

    def __init__(
        self,
        cpu_levels: int,
        gpu_levels: int,
        temperature_threshold_c: float,
        proposal_scale: float,
        num_sessions: int,
        config: LotusConfig | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.config = config if config is not None else LotusConfig()
        self.rng = rng if rng is not None else np.random.default_rng(self.config.seed)
        self.num_sessions = num_sessions
        self.action_space = JointActionSpace(cpu_levels, gpu_levels)
        self.gpu_levels = gpu_levels
        self.temperature_threshold_c = (
            self.config.temperature_threshold_c
            if self.config.temperature_threshold_c is not None
            else temperature_threshold_c
        )
        self.temperature_scale_c = self.temperature_threshold_c
        self.proposal_scale = proposal_scale
        self.cpu_level_scale = max(cpu_levels - 1, 1)
        self.gpu_level_scale = max(gpu_levels - 1, 1)

        widths = (1.0,) if self.config.single_decision else self.config.widths
        self._start_width = 1.0 if self.config.single_decision else self.config.widths[0]
        self.network = SlimmableMLP(
            input_dim=7,
            hidden_dims=self.config.hidden_dims,
            output_dim=self.action_space.size,
            widths=widths,
            rng=self.rng,
        )
        self.learner = DqnLearner(
            network=self.network,
            config=DqnConfig(
                discount=self.config.discount,
                batch_size=self.config.batch_size,
                target_sync_interval=self.config.target_sync_interval,
            ),
            optimizer=Adam(
                learning_rate=self.config.learning_rate,
                beta1=self.config.adam_beta1,
                beta2=self.config.adam_beta2,
            ),
            learning_rate_schedule=CosineDecaySchedule(
                initial=self.config.learning_rate,
                decay_steps=self.config.lr_decay_steps,
                final=self.config.learning_rate * 0.01,
            ),
        )
        self._epsilon_schedule = LinearDecaySchedule(
            initial=self.config.epsilon_start,
            final=self.config.epsilon_end,
            decay_steps=self.config.epsilon_decay_steps,
        )
        self.cooldown = CooldownSelector(
            initial_epsilon=self.config.cooldown_epsilon,
            decay_triggers=self.config.cooldown_decay_triggers,
            final_epsilon=self.config.cooldown_epsilon_final,
            always=self.config.always_cooldown,
        )
        self.reward_calculators = [
            RewardCalculator(self.config.reward) for _ in range(num_sessions)
        ]

        self.start_buffer = ReplayBuffer(self.config.replay_capacity)
        self.mid_buffer = (
            self.start_buffer
            if self.config.shared_buffer
            else ReplayBuffer(self.config.replay_capacity)
        )

        self.training = True
        self._decision_count = 0
        self._decision_points = 0
        self._loss_history: List[float] = []
        self._reward_history: List[float] = []

        self._start_states: np.ndarray | None = None
        self._start_actions: np.ndarray | None = None
        self._mid_states: np.ndarray | None = None
        self._mid_actions: np.ndarray | None = None
        self._pending: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    # -- public knobs -------------------------------------------------------------------

    def set_training(self, training: bool) -> None:
        """Enable/disable exploration and learning (evaluation mode)."""
        self.training = training

    @property
    def epsilon(self) -> float:
        """Current exploration epsilon (0 in evaluation mode).

        The schedule is indexed by *per-session* decisions so that a fleet
        of any size anneals over the same number of frames as a scalar run.
        """
        if not self.training:
            return 0.0
        return self._epsilon_schedule.value(self._decision_count // self.num_sessions)

    @property
    def loss_history(self) -> List[float]:
        """TD losses of every training step performed so far."""
        return list(self._loss_history)

    @property
    def reward_history(self) -> List[float]:
        """Mean per-frame reward across the fleet, per frame."""
        return list(self._reward_history)

    def reset(self) -> None:
        """Reset per-episode bookkeeping (keeps learned weights and replay)."""
        for calculator in self.reward_calculators:
            calculator.reset()
        self._start_states = None
        self._start_actions = None
        self._mid_states = None
        self._mid_actions = None
        self._pending = None

    # -- checkpointing -------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Complete snapshot of the fleet agent's training state.

        The fleet analogue of :meth:`repro.core.agent.LotusAgent.state_dict`:
        everything a decision or training step reads or mutates is captured —
        the shared network and target parameters, optimizer moments, both
        replay rings, the exploration/cool-down counters, one reward
        calculator per session, the RNG state and the in-flight per-session
        transition arrays — so that save → load → continue is bit-identical
        to an uninterrupted fleet run, even mid-episode.
        """
        pending = None
        if self._pending is not None:
            states, actions, rewards = self._pending
            pending = {
                "states": states.copy(),
                "actions": actions.copy(),
                "rewards": rewards.copy(),
            }
        return {
            "num_sessions": int(self.num_sessions),
            "training": bool(self.training),
            "decision_count": int(self._decision_count),
            "decision_points": int(self._decision_points),
            "loss_history": [float(v) for v in self._loss_history],
            "reward_history": [float(v) for v in self._reward_history],
            "rng": self.rng.bit_generator.state,
            "cooldown": self.cooldown.state_dict(),
            "reward_calculators": [
                calculator.state_dict() for calculator in self.reward_calculators
            ],
            "learner": self.learner.state_dict(),
            "start_buffer": self.start_buffer.state_dict(),
            "mid_buffer": (
                None
                if self.mid_buffer is self.start_buffer
                else self.mid_buffer.state_dict()
            ),
            "start_states": (
                None if self._start_states is None else self._start_states.copy()
            ),
            "start_actions": (
                None if self._start_actions is None else self._start_actions.copy()
            ),
            "mid_states": None if self._mid_states is None else self._mid_states.copy(),
            "mid_actions": (
                None if self._mid_actions is None else self._mid_actions.copy()
            ),
            "pending": pending,
        }

    def load_state_dict(self, payload: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into this agent in place.

        The agent must have been constructed with the same configuration,
        geometry and fleet size as the one that produced the snapshot (the
        checkpoint layer guarantees this by rebuilding from the stored
        config and geometry).
        """
        if int(payload["num_sessions"]) != self.num_sessions:
            raise AgentError(
                f"snapshot was captured from a {payload['num_sessions']}-session "
                f"fleet but this agent drives {self.num_sessions} sessions"
            )
        shared = payload["mid_buffer"] is None
        if shared != (self.mid_buffer is self.start_buffer):
            raise AgentError(
                "snapshot and agent disagree on the shared-buffer ablation"
            )
        calculators = payload["reward_calculators"]
        if len(calculators) != len(self.reward_calculators):
            raise AgentError(
                f"snapshot carries {len(calculators)} reward calculators for "
                f"{len(self.reward_calculators)} sessions"
            )
        self.learner.load_state_dict(payload["learner"])
        self.start_buffer.load_state_dict(payload["start_buffer"])
        if not shared:
            self.mid_buffer.load_state_dict(payload["mid_buffer"])
        self.cooldown.load_state_dict(payload["cooldown"])
        for calculator, snapshot in zip(self.reward_calculators, calculators):
            calculator.load_state_dict(snapshot)
        self.rng.bit_generator.state = payload["rng"]
        self.training = bool(payload["training"])
        self._decision_count = int(payload["decision_count"])
        self._decision_points = int(payload["decision_points"])
        self._loss_history = [float(v) for v in payload["loss_history"]]
        self._reward_history = [float(v) for v in payload["reward_history"]]
        self._start_states = (
            None
            if payload["start_states"] is None
            else np.asarray(payload["start_states"], dtype=float)
        )
        self._start_actions = (
            None
            if payload["start_actions"] is None
            else np.asarray(payload["start_actions"], dtype=np.int64)
        )
        self._mid_states = (
            None
            if payload["mid_states"] is None
            else np.asarray(payload["mid_states"], dtype=float)
        )
        self._mid_actions = (
            None
            if payload["mid_actions"] is None
            else np.asarray(payload["mid_actions"], dtype=np.int64)
        )
        pending = payload["pending"]
        self._pending = (
            None
            if pending is None
            else (
                np.asarray(pending["states"], dtype=float),
                np.asarray(pending["actions"], dtype=np.int64),
                np.asarray(pending["rewards"], dtype=float),
            )
        )

    # -- encoding -----------------------------------------------------------------------

    def _level_fractions(self, levels: np.ndarray, scale: int) -> np.ndarray:
        return levels / scale

    def encode_start(self, observation: FleetStartObservation) -> np.ndarray:
        """Vectorized :meth:`repro.core.state.StateEncoder.encode_start`."""
        budget = np.clip(
            observation.remaining_budget_ms / observation.latency_constraint_ms,
            -1.0,
            1.0,
        )
        states = np.zeros((observation.num_sessions, 7))
        states[:, 1] = observation.cpu_temperature_c / self.temperature_scale_c
        states[:, 2] = observation.gpu_temperature_c / self.temperature_scale_c
        states[:, 3] = self._level_fractions(observation.cpu_level, self.cpu_level_scale)
        states[:, 4] = self._level_fractions(observation.gpu_level, self.gpu_level_scale)
        states[:, 5] = budget
        return states

    def encode_mid(self, observation: FleetMidObservation) -> np.ndarray:
        """Vectorized :meth:`repro.core.state.StateEncoder.encode_mid`."""
        budget = np.clip(
            observation.remaining_budget_ms / observation.latency_constraint_ms,
            -1.0,
            1.0,
        )
        states = np.zeros((observation.num_sessions, 7))
        states[:, 0] = 1.0
        states[:, 1] = observation.cpu_temperature_c / self.temperature_scale_c
        states[:, 2] = observation.gpu_temperature_c / self.temperature_scale_c
        states[:, 3] = self._level_fractions(observation.cpu_level, self.cpu_level_scale)
        states[:, 4] = self._level_fractions(observation.gpu_level, self.gpu_level_scale)
        states[:, 5] = budget
        states[:, 6] = np.minimum(
            observation.num_proposals / self.proposal_scale, 2.0
        )
        return states

    # -- helpers ------------------------------------------------------------------------

    def _select_actions(self, states: np.ndarray, width: float, observation) -> np.ndarray:
        """Batched cool-down-aware epsilon-greedy selection, one forward pass."""
        n = len(states)
        q_values = self.network.predict(states, width)
        actions = np.argmax(q_values, axis=1).astype(np.int64)
        if self.training:
            explore = self.rng.random(n) < self.epsilon
            if explore.any():
                actions[explore] = self.rng.integers(
                    self.action_space.size, size=int(explore.sum())
                )
            overheated = (
                observation.cpu_temperature_c > self.temperature_threshold_c
            ) | (observation.gpu_temperature_c > self.temperature_threshold_c)
            for i in np.nonzero(overheated)[0]:
                forced = self.cooldown.maybe_cooldown_action(
                    self.action_space,
                    int(observation.cpu_level[i]),
                    int(observation.gpu_level[i]),
                    float(observation.cpu_temperature_c[i]),
                    float(observation.gpu_temperature_c[i]),
                    self.temperature_threshold_c,
                    self.rng,
                )
                if forced is not None:
                    actions[i] = forced
        self._decision_count += n
        return actions

    def _append_batch(
        self,
        buffer: ReplayBuffer,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
        next_width: float,
    ) -> None:
        for i in range(len(states)):
            buffer.append(
                state=states[i],
                action=int(actions[i]),
                reward=float(rewards[i]),
                next_state=next_states[i],
                next_width=next_width,
            )

    def _maybe_train(self, buffer: ReplayBuffer, width: float) -> None:
        """Train once per ``train_interval`` lock-step decision points.

        One gradient step per batch of N fresh transitions — the standard
        vectorized-RL trade: the fleet agent takes the *same* number of
        training steps per simulated frame as the scalar agent while seeing
        N times more experience per step, rather than multiplying the step
        count by the fleet size.
        """
        if not self.training:
            return
        if len(buffer) < max(self.config.learning_starts, self.config.batch_size):
            return
        self._decision_points += 1
        if self._decision_points % self.config.train_interval != 0:
            return
        batch = buffer.sample(self.config.batch_size, self.rng)
        loss = self.learner.train_batch(batch, width=width)
        self._loss_history.append(loss)

    def _decision(self, actions: np.ndarray) -> FleetDecision:
        cpu_levels, gpu_levels = np.divmod(actions, self.gpu_levels)
        return FleetDecision(cpu_levels=cpu_levels, gpu_levels=gpu_levels)

    # -- fleet policy protocol ------------------------------------------------------------

    def begin_frame(self, observation: FleetStartObservation) -> FleetDecision:
        states = self.encode_start(observation)
        if self._pending is not None and self.training:
            prev_states, prev_actions, prev_rewards = self._pending
            buffer = (
                self.start_buffer if self.config.single_decision else self.mid_buffer
            )
            self._append_batch(
                buffer, prev_states, prev_actions, prev_rewards, states,
                self._start_width,
            )
        self._pending = None
        self._maybe_train(self.start_buffer, self._start_width)
        actions = self._select_actions(states, self._start_width, observation)
        self._start_states = states
        self._start_actions = actions
        return self._decision(actions)

    def mid_frame(self, observation: FleetMidObservation) -> FleetDecision | None:
        if self.config.single_decision:
            return None
        states = self.encode_mid(observation)
        self._maybe_train(self.mid_buffer, 1.0)
        actions = self._select_actions(states, 1.0, observation)
        self._mid_states = states
        self._mid_actions = actions
        return self._decision(actions)

    def end_frame(self, result: FleetFrameResult) -> None:
        rewards = np.array(
            [
                self.reward_calculators[i]
                .frame_reward(
                    latency_ms=float(result.total_latency_ms[i]),
                    constraint_ms=float(result.latency_constraint_ms[i]),
                    cpu_temperature_c=float(result.cpu_temperature_c[i]),
                    gpu_temperature_c=float(result.gpu_temperature_c[i]),
                    threshold_c=self.temperature_threshold_c,
                )
                .total
                for i in range(result.num_sessions)
            ]
        )
        self._reward_history.append(float(rewards.mean()))
        if self.config.single_decision:
            if self._start_states is not None and self._start_actions is not None:
                self._pending = (self._start_states, self._start_actions, rewards)
        else:
            if (
                self.training
                and self._start_states is not None
                and self._start_actions is not None
                and self._mid_states is not None
            ):
                self._append_batch(
                    self.start_buffer,
                    self._start_states,
                    self._start_actions,
                    rewards,
                    self._mid_states,
                    1.0,
                )
            if self._mid_states is not None and self._mid_actions is not None:
                self._pending = (self._mid_states, self._mid_actions, rewards)
        self._start_states = None
        self._start_actions = None
        self._mid_states = None
        self._mid_actions = None
