"""Lotus hyper-parameter configuration.

Everything tunable about the Lotus agent lives in one frozen dataclass so
that experiments, ablations and examples can describe themselves completely
by the configuration they pass in.  Defaults follow the paper's §4.4.1
(4-layer MLP at widths [0.75x, 1x], Adam with beta1=0.9 / beta2=0.99,
learning rate 0.01 under cosine decay) with the remaining standard DQN
settings chosen for stable online learning within a few thousand frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.core.reward import RewardConfig


@dataclass(frozen=True)
class LotusConfig:
    """Hyper-parameters of the Lotus agent.

    Attributes:
        hidden_dims: Hidden-layer sizes of the Q-network (three hidden layers
            plus the output layer give the paper's 4-layer MLP).
        reduced_width: The alpha width used for the first per-frame decision.
        discount: DQN discount factor.
        learning_rate: Initial Adam learning rate.
        lr_decay_steps: Cosine-decay horizon (in training steps) for the
            learning rate.
        adam_beta1 / adam_beta2: Adam moment coefficients.
        batch_size: Replay mini-batch size.
        replay_capacity: Capacity of *each* of the two replay buffers.
        learning_starts: Minimum number of transitions in a buffer before
            training on it begins.
        train_interval: Train every this many decisions (1 = every decision).
        target_sync_interval: Training steps between target-network syncs.
        epsilon_start / epsilon_end: Exploration epsilon range.
        epsilon_decay_steps: Decisions over which epsilon anneals linearly.
        cooldown_epsilon: Initial epsilon_t of the cool-down selector.
        cooldown_decay_triggers: Cool-down firings over which epsilon_t
            decays sinusoidally.
        cooldown_epsilon_final: Residual epsilon_t after the decay.
        always_cooldown: Use zTT-style unconditional cool-down (ablation).
        single_decision: Disable the second per-frame decision (ablation —
            makes Lotus act like a frame-level controller).
        shared_buffer: Use a single replay buffer for both decision points
            (ablation of the dual-buffer design).
        reward: Reward hyper-parameters.
        temperature_threshold_c: Overrides the device trip point used in the
            reward and cool-down logic; ``None`` uses the environment's
            threshold.
        seed: Seed for the agent's own random generator.
    """

    hidden_dims: tuple[int, ...] = (64, 64, 64)
    reduced_width: float = 0.75
    discount: float = 0.5
    learning_rate: float = 0.005
    lr_decay_steps: int = 10_000
    adam_beta1: float = 0.9
    adam_beta2: float = 0.99
    batch_size: int = 64
    replay_capacity: int = 4_096
    learning_starts: int = 64
    train_interval: int = 1
    target_sync_interval: int = 100
    epsilon_start: float = 1.0
    # Lotus makes two decisions per frame, so the per-decision exploration
    # floor is half of zTT's per-frame floor to keep the per-frame amount of
    # residual exploration comparable between the two learning agents.
    epsilon_end: float = 0.005
    epsilon_decay_steps: int = 1_200
    cooldown_epsilon: float = 0.9
    cooldown_decay_triggers: int = 400
    cooldown_epsilon_final: float = 0.15
    always_cooldown: bool = False
    single_decision: bool = False
    shared_buffer: bool = False
    reward: RewardConfig = field(default_factory=RewardConfig)
    temperature_threshold_c: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.hidden_dims:
            raise ConfigurationError("hidden_dims must not be empty")
        if not 0.0 < self.reduced_width <= 1.0:
            raise ConfigurationError("reduced_width must lie in (0, 1]")
        if not 0.0 <= self.discount < 1.0:
            raise ConfigurationError("discount must lie in [0, 1)")
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if self.lr_decay_steps <= 0:
            raise ConfigurationError("lr_decay_steps must be positive")
        if self.batch_size <= 0 or self.replay_capacity < self.batch_size:
            raise ConfigurationError("replay_capacity must be at least batch_size")
        if self.learning_starts < self.batch_size:
            raise ConfigurationError("learning_starts must be at least batch_size")
        if self.train_interval <= 0:
            raise ConfigurationError("train_interval must be positive")
        if not 0.0 <= self.epsilon_end <= self.epsilon_start <= 1.0:
            raise ConfigurationError("require 0 <= epsilon_end <= epsilon_start <= 1")
        if self.epsilon_decay_steps <= 0:
            raise ConfigurationError("epsilon_decay_steps must be positive")

    @property
    def widths(self) -> tuple[float, ...]:
        """The width multipliers the Q-network is built with."""
        if self.reduced_width >= 1.0:
            return (1.0,)
        return (self.reduced_width, 1.0)

    def for_episode_length(self, num_frames: int) -> "LotusConfig":
        """Return a copy with exploration and decay horizons scaled to an episode.

        The paper's figures show the agent learning online over the episode
        itself; annealing exploration over roughly the first 40 % of the
        episode (two decisions per frame) keeps that behaviour consistent
        across the different episode lengths used by the quick benchmarks
        and the full paper-scale runs.
        """
        if num_frames <= 0:
            raise ConfigurationError("num_frames must be positive")
        decisions = num_frames * (1 if self.single_decision else 2)
        epsilon_decay = max(50, int(0.4 * decisions))
        lr_decay = max(200, decisions)
        return LotusConfig(
            hidden_dims=self.hidden_dims,
            reduced_width=self.reduced_width,
            discount=self.discount,
            learning_rate=self.learning_rate,
            lr_decay_steps=lr_decay,
            adam_beta1=self.adam_beta1,
            adam_beta2=self.adam_beta2,
            batch_size=self.batch_size,
            replay_capacity=self.replay_capacity,
            learning_starts=self.learning_starts,
            train_interval=self.train_interval,
            target_sync_interval=self.target_sync_interval,
            epsilon_start=self.epsilon_start,
            epsilon_end=self.epsilon_end,
            epsilon_decay_steps=epsilon_decay,
            cooldown_epsilon=self.cooldown_epsilon,
            cooldown_decay_triggers=self.cooldown_decay_triggers,
            cooldown_epsilon_final=self.cooldown_epsilon_final,
            always_cooldown=self.always_cooldown,
            single_decision=self.single_decision,
            shared_buffer=self.shared_buffer,
            reward=self.reward,
            temperature_threshold_c=self.temperature_threshold_c,
            seed=self.seed,
        )
