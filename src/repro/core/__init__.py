"""Lotus core: the paper's primary contribution.

The Lotus framework is an online DVFS controller tailored to two-stage
detectors.  Its pieces map one-to-one onto the paper's §4:

* :mod:`repro.core.action` — the joint CPU x GPU frequency action space
  (§4.3.1).
* :mod:`repro.core.state` — the two per-frame state encodings, with and
  without the proposal count (§4.3.2).
* :mod:`repro.core.reward` — the latency + temperature reward (§4.3.3,
  Eq. 2-3) including the latency-variation term.
* :mod:`repro.core.cooldown` — epsilon_t-greedy cool-down action selection
  (§4.3.5).
* :mod:`repro.core.agent` — the Lotus DRL agent: a slimmable Q-network
  acting twice per frame with two replay buffers (§4.3.4).
* :mod:`repro.core.controller` — a convenience facade that builds the agent
  for a device/detector pair and runs the online management loop.
* :mod:`repro.core.config` — all hyper-parameters in one dataclass.
* :mod:`repro.core.training` — online training session utilities.
"""

from repro.core.action import JointActionSpace
from repro.core.agent import LotusAgent
from repro.core.config import LotusConfig
from repro.core.controller import LotusController
from repro.core.cooldown import CooldownSelector
from repro.core.fleet import FleetLotusAgent
from repro.core.reward import RewardBreakdown, RewardCalculator, RewardConfig
from repro.core.state import StateEncoder
from repro.core.training import OnlineSession, SessionResult

__all__ = [
    "CooldownSelector",
    "FleetLotusAgent",
    "JointActionSpace",
    "LotusAgent",
    "LotusConfig",
    "LotusController",
    "OnlineSession",
    "RewardBreakdown",
    "RewardCalculator",
    "RewardConfig",
    "SessionResult",
    "StateEncoder",
]
