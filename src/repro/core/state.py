"""State encoding.

Paper §4.3.2: the state observed at the beginning of the inference of the
i-th image is the 6-tuple ``{S_2i, T_cpu, T_gpu, f_cpu, f_gpu, dL_2i}``;
the state observed after the RPN additionally contains the proposal count
``P_{2i+1}``.  The encoder normalises every element to a roughly unit range
so that a single Q-network can consume both: the proposal slot is simply 0
in the first state, and the stage flag distinguishes the two (it is also
what the reduced-width / full-width execution switches on).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.env.environment import FrameStartObservation, MidFrameObservation

#: Dimensionality of the encoded state vector: stage flag, CPU temperature,
#: GPU temperature, CPU level, GPU level, remaining latency budget, proposal
#: count.
STATE_DIMENSION = 7


@dataclass(frozen=True)
class StateEncoder:
    """Normalising encoder from environment observations to state vectors.

    Attributes:
        cpu_levels: Number of CPU frequency levels (for level normalisation).
        gpu_levels: Number of GPU frequency levels.
        temperature_scale_c: Temperature that maps to 1.0 — the throttling
            threshold is the natural choice so "1.0" means "at the limit".
        proposal_scale: Proposal count that maps to 1.0 — the detector's
            post-NMS cap is the natural choice.
    """

    cpu_levels: int
    gpu_levels: int
    temperature_scale_c: float
    proposal_scale: float

    def __post_init__(self) -> None:
        if self.cpu_levels <= 0 or self.gpu_levels <= 0:
            raise ConfigurationError("cpu_levels and gpu_levels must be positive")
        if self.temperature_scale_c <= 0:
            raise ConfigurationError("temperature_scale_c must be positive")
        if self.proposal_scale <= 0:
            raise ConfigurationError("proposal_scale must be positive")

    @property
    def dimension(self) -> int:
        """Length of the encoded state vector."""
        return STATE_DIMENSION

    # -- encoding -------------------------------------------------------------------

    def _level_fraction(self, level: int, num_levels: int) -> float:
        if num_levels <= 1:
            return 1.0
        return level / (num_levels - 1)

    def encode_start(self, observation: FrameStartObservation) -> np.ndarray:
        """Encode the start-of-frame state ``s_2i`` (proposal slot is 0)."""
        budget_fraction = observation.remaining_budget_ms / observation.latency_constraint_ms
        return np.array(
            [
                0.0,
                observation.cpu_temperature_c / self.temperature_scale_c,
                observation.gpu_temperature_c / self.temperature_scale_c,
                self._level_fraction(observation.cpu_level, self.cpu_levels),
                self._level_fraction(observation.gpu_level, self.gpu_levels),
                float(np.clip(budget_fraction, -1.0, 1.0)),
                0.0,
            ],
            dtype=float,
        )

    def encode_mid(self, observation: MidFrameObservation) -> np.ndarray:
        """Encode the post-RPN state ``s_{2i+1}`` (proposal slot filled)."""
        budget_fraction = observation.remaining_budget_ms / observation.latency_constraint_ms
        return np.array(
            [
                1.0,
                observation.cpu_temperature_c / self.temperature_scale_c,
                observation.gpu_temperature_c / self.temperature_scale_c,
                self._level_fraction(observation.cpu_level, self.cpu_levels),
                self._level_fraction(observation.gpu_level, self.gpu_levels),
                float(np.clip(budget_fraction, -1.0, 1.0)),
                min(observation.num_proposals / self.proposal_scale, 2.0),
            ],
            dtype=float,
        )
