"""Small unit-conversion helpers used throughout the simulator.

The simulator works internally in SI-ish units that are convenient for the
domain: frequencies in kHz (as exposed by Linux ``cpufreq`` sysfs nodes),
latencies in milliseconds, temperatures in degrees Celsius, power in watts
and energy in joules.  These helpers keep the conversions explicit and
self-documenting instead of scattering magic constants such as ``1e6``
through the code.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Frequency
# --------------------------------------------------------------------------


def khz_to_hz(khz: float) -> float:
    """Convert kilohertz to hertz."""
    return khz * 1e3


def mhz_to_khz(mhz: float) -> float:
    """Convert megahertz to kilohertz (the unit used by cpufreq sysfs)."""
    return mhz * 1e3


def ghz_to_khz(ghz: float) -> float:
    """Convert gigahertz to kilohertz."""
    return ghz * 1e6


def khz_to_mhz(khz: float) -> float:
    """Convert kilohertz to megahertz."""
    return khz / 1e3


def khz_to_ghz(khz: float) -> float:
    """Convert kilohertz to gigahertz."""
    return khz / 1e6


# --------------------------------------------------------------------------
# Time
# --------------------------------------------------------------------------


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * 1e3


def ms_to_seconds(ms: float) -> float:
    """Convert milliseconds to seconds."""
    return ms / 1e3


def us_to_ms(us: float) -> float:
    """Convert microseconds to milliseconds."""
    return us / 1e3


def ms_to_us(ms: float) -> float:
    """Convert milliseconds to microseconds."""
    return ms * 1e3


# --------------------------------------------------------------------------
# Temperature
# --------------------------------------------------------------------------

_KELVIN_OFFSET = 273.15


def celsius_to_kelvin(celsius: float) -> float:
    """Convert degrees Celsius to Kelvin."""
    return celsius + _KELVIN_OFFSET


def kelvin_to_celsius(kelvin: float) -> float:
    """Convert Kelvin to degrees Celsius."""
    return kelvin - _KELVIN_OFFSET


def millicelsius_to_celsius(millicelsius: float) -> float:
    """Convert milli-degrees Celsius (thermal-zone sysfs unit) to Celsius."""
    return millicelsius / 1e3


def celsius_to_millicelsius(celsius: float) -> float:
    """Convert Celsius to milli-degrees Celsius (thermal-zone sysfs unit)."""
    return celsius * 1e3


# --------------------------------------------------------------------------
# Energy / power
# --------------------------------------------------------------------------


def watts_to_milliwatts(watts: float) -> float:
    """Convert watts to milliwatts."""
    return watts * 1e3


def milliwatts_to_watts(milliwatts: float) -> float:
    """Convert milliwatts to watts."""
    return milliwatts / 1e3


def joules(power_watts: float, duration_ms: float) -> float:
    """Energy in joules dissipated by ``power_watts`` over ``duration_ms``."""
    return power_watts * ms_to_seconds(duration_ms)
