"""Process-local event bus: spans, counters, gauges, exact histograms.

The design constraint that shapes everything here is *zero overhead when
off*.  Observability defaults to disabled (``REPRO_OBS=0``, mirroring the
``REPRO_FUSED`` / ``REPRO_POOL`` kill switches); every instrumentation
point in the library goes through the module-level helpers below, whose
first action is a single ``_REGISTRY is None`` check.  When no registry is
active the helpers return immediately — no dict lookups, no string
formatting, no allocation beyond the call frame — and :func:`span` hands
back one shared no-op context manager.  Instrumentation never reads or
writes RNG state and never branches on simulated values, so traces are
byte-identical with observation on or off (enforced by
``tests/test_obs.py``).

When a registry *is* active it records three metric families plus a raw
event log:

* **counters** — monotonically increasing floats (``inc``),
* **gauges** — last-value-wins floats (``gauge``),
* **histograms** — value streams with *exact* statistics (``observe``):
  running moments via :class:`~repro.analysis.streaming.StreamingMoments`
  plus packed float64 chunks that fold through
  :class:`~repro.analysis.streaming.StreamingPercentile` at snapshot time,
  so p50/p99 come out exactly (not sketched) and in bounded memory.

Spans (:func:`span`) are context managers that emit paired start/end
events carrying monotonically-assigned span ids and the parent span id
from the registry's span stack, and record their duration into the
``span.<name>`` histogram.

Registries are picklable via :meth:`ObsRegistry.snapshot`; worker
processes ship their snapshot back over the existing pipe/shm result path
and the parent folds it in with :meth:`ObsRegistry.merge` — counters add,
gauges overwrite, histogram chunks and moments concatenate, events append
tagged with their origin.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import ObsError

#: Environment kill switch: observability is OFF unless ``REPRO_OBS=1``.
OBS_ENV = "REPRO_OBS"

#: Snapshot wire-format tag, checked on merge.
SNAPSHOT_SCHEMA = "repro-obs/v1"

#: Histogram buffer flush threshold (values per packed chunk).
_CHUNK = 512

#: Canonical metric key: (name, sorted label pairs).
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def obs_enabled() -> bool:
    """Whether the ``REPRO_OBS`` environment switch asks for observation."""
    return os.environ.get(OBS_ENV, "0") == "1"


def _metric_key(name: str, labels: Dict[str, Any]) -> MetricKey:
    if not labels:
        return (name, ())
    return (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))


class Histogram:
    """Exact-statistics value stream in bounded memory.

    Values accumulate into running :class:`StreamingMoments` immediately
    and into a small scalar buffer that is packed into float64 chunks of
    ``_CHUNK`` values.  Exact percentiles need the chunk list (percentile
    selection cannot be pre-aggregated without declaring the quantile and
    total count up front), but packing keeps it to one contiguous array
    per 512 observations; :meth:`percentile` folds the chunks through
    :class:`StreamingPercentile` on demand.
    """

    __slots__ = ("moments", "chunks", "_buffer")

    def __init__(self) -> None:
        from repro.analysis.streaming import StreamingMoments

        self.moments = StreamingMoments()
        self.chunks: List[np.ndarray] = []
        self._buffer: List[float] = []

    def observe(self, value: float) -> None:
        v = float(value)
        self.moments.push_value(v)
        self._buffer.append(v)
        if len(self._buffer) >= _CHUNK:
            self._flush()

    def _flush(self) -> None:
        if self._buffer:
            self.chunks.append(np.array(self._buffer, dtype=np.float64))
            self._buffer = []

    def percentile(self, q: float) -> float:
        """The exact q-th percentile of every observed value."""
        from repro.analysis.streaming import StreamingPercentile

        self._flush()
        if self.moments.count == 0:
            raise ObsError("percentile of an empty histogram")
        tracker = StreamingPercentile(self.moments.count, q)
        for chunk in self.chunks:
            tracker.push(chunk)
        return tracker.result()

    def to_state(self) -> Dict[str, Any]:
        self._flush()
        return {"chunks": list(self.chunks)}

    def merge_state(self, state: Dict[str, Any]) -> None:
        for chunk in state["chunks"]:
            block = np.asarray(chunk, dtype=np.float64)
            if block.size:
                self.moments.push(block)
                self.chunks.append(block)


class ObsRegistry:
    """One run's metrics, spans and events, all process-local.

    Nothing here is thread-safe or cross-process by itself; worker
    processes run their own registry and ship :meth:`snapshot` back to the
    parent, which :meth:`merge`\\ s it.
    """

    def __init__(self) -> None:
        self.counters: Dict[MetricKey, float] = {}
        self.gauges: Dict[MetricKey, float] = {}
        self.histograms: Dict[MetricKey, Histogram] = {}
        self.events: List[Dict[str, Any]] = []
        self._next_span_id = 1
        self._span_stack: List[int] = []

    # -- metrics -------------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        key = _metric_key(name, labels)
        self.counters[key] = self.counters.get(key, 0.0) + float(value)

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        self.gauges[_metric_key(name, labels)] = float(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        key = _metric_key(name, labels)
        histogram = self.histograms.get(key)
        if histogram is None:
            histogram = self.histograms[key] = Histogram()
        histogram.observe(value)

    # -- events and spans ----------------------------------------------------

    def event(self, name: str, **fields: Any) -> None:
        self.events.append(
            {
                "type": "event",
                "name": name,
                "time": time.time(),
                "span": self._span_stack[-1] if self._span_stack else 0,
                "fields": {str(k): v for k, v in fields.items()},
            }
        )

    @contextmanager
    def span(self, name: str, **labels: Any) -> Iterator[None]:
        span_id = self._next_span_id
        self._next_span_id += 1
        parent = self._span_stack[-1] if self._span_stack else 0
        self._span_stack.append(span_id)
        started = time.perf_counter()
        self.events.append(
            {
                "type": "span",
                "phase": "start",
                "name": name,
                "time": time.time(),
                "span": span_id,
                "parent": parent,
                "fields": {str(k): v for k, v in labels.items()},
            }
        )
        try:
            yield
        finally:
            duration_ms = (time.perf_counter() - started) * 1000.0
            self._span_stack.pop()
            self.events.append(
                {
                    "type": "span",
                    "phase": "end",
                    "name": name,
                    "time": time.time(),
                    "span": span_id,
                    "parent": parent,
                    "duration_ms": duration_ms,
                }
            )
            self.observe(f"span.{name}", duration_ms)

    # -- snapshot / merge ----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A picklable image of everything recorded so far.

        This is what a pool worker sends back over the result pipe; the
        parent folds it in with :meth:`merge`.
        """
        return {
            "schema": SNAPSHOT_SCHEMA,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                key: histogram.to_state()
                for key, histogram in self.histograms.items()
            },
            "events": list(self.events),
        }

    def merge(self, state: Dict[str, Any], origin: Optional[str] = None) -> None:
        """Fold a worker snapshot into this registry.

        Counters sum, gauges overwrite (last writer wins), histograms
        concatenate their packed chunks (keeping percentiles exact), and
        events append with ``origin`` recorded on each.
        """
        schema = state.get("schema")
        if schema != SNAPSHOT_SCHEMA:
            raise ObsError(f"unknown obs snapshot schema {schema!r}")
        for key, value in state["counters"].items():
            self.counters[key] = self.counters.get(key, 0.0) + float(value)
        for key, value in state["gauges"].items():
            self.gauges[key] = float(value)
        for key, histogram_state in state["histograms"].items():
            histogram = self.histograms.get(key)
            if histogram is None:
                histogram = self.histograms[key] = Histogram()
            histogram.merge_state(histogram_state)
        for entry in state["events"]:
            merged = dict(entry)
            if origin is not None:
                merged["origin"] = origin
            self.events.append(merged)


# -- module-level fast path ----------------------------------------------------

#: The active registry, or None when observation is off (the common case).
_REGISTRY: Optional[ObsRegistry] = None


class _NullSpan:
    """Shared no-op context manager returned by :func:`span` when off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def enable(fresh: bool = True) -> ObsRegistry:
    """Activate observation; with ``fresh`` (default) start a new registry."""
    global _REGISTRY
    if fresh or _REGISTRY is None:
        _REGISTRY = ObsRegistry()
    return _REGISTRY


def disable() -> None:
    """Deactivate observation; helpers become no-ops again."""
    global _REGISTRY
    _REGISTRY = None


def active() -> bool:
    """Whether a registry is currently collecting."""
    return _REGISTRY is not None


def registry() -> ObsRegistry:
    """The active registry; raises :class:`ObsError` when observation is off."""
    if _REGISTRY is None:
        raise ObsError("observability is not active (set REPRO_OBS=1 or call enable())")
    return _REGISTRY


def inc(name: str, value: float = 1.0, **labels: Any) -> None:
    if _REGISTRY is None:
        return
    _REGISTRY.inc(name, value, **labels)


def gauge(name: str, value: float, **labels: Any) -> None:
    if _REGISTRY is None:
        return
    _REGISTRY.gauge(name, value, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    if _REGISTRY is None:
        return
    _REGISTRY.observe(name, value, **labels)


def event(name: str, **fields: Any) -> None:
    if _REGISTRY is None:
        return
    _REGISTRY.event(name, **fields)


def span(name: str, **labels: Any):
    """A tracing span context manager (shared no-op when observation is off)."""
    if _REGISTRY is None:
        return _NULL_SPAN
    return _REGISTRY.span(name, **labels)


def kernel_call(name: str) -> None:
    """Count one fused-kernel invocation (hot path: one None check when off)."""
    if _REGISTRY is None:
        return
    key = ("fused.kernel_calls", (("kernel", name),))
    counters = _REGISTRY.counters
    counters[key] = counters.get(key, 0.0) + 1.0


def record_report(prefix: str, report: Any) -> None:
    """Register a dataclass report's numeric fields as ``<prefix>.<field>`` gauges.

    Non-numeric fields are skipped except tuples/lists/sets, which record
    their length — enough to surface :class:`PoolRunReport`,
    :class:`RecoveryReport` and :class:`OverheadReport` uniformly in
    ``obs report`` without any per-report glue.
    """
    if _REGISTRY is None:
        return
    fields = getattr(report, "__dataclass_fields__", None)
    if fields is None:
        raise ObsError(f"record_report expects a dataclass, got {type(report).__name__}")
    for field_name in fields:
        value = getattr(report, field_name)
        if isinstance(value, bool) or isinstance(value, (int, float)):
            _REGISTRY.gauge(f"{prefix}.{field_name}", float(value))
        elif isinstance(value, (tuple, list, set, frozenset)):
            _REGISTRY.gauge(f"{prefix}.{field_name}", float(len(value)))
