"""Sinks: persist a run's registry as JSONL events plus a JSON summary.

A run directory lives under ``default_obs_dir()`` (next to the result
cache, or wherever ``REPRO_OBS_DIR`` points) and contains exactly two
files:

* ``events.jsonl`` — every event and span boundary, one JSON object per
  line, in emission order (worker-merged events carry an ``origin``).
* ``summary.json`` — the aggregate snapshot: counters, gauges, and for
  every histogram its count/mean/std/min/max plus *exact* p50/p90/p99.

``summary.json`` is what ``python -m repro obs report`` renders; the
JSONL stream is for ad-hoc ``jq``/pandas digging and the CI smoke job.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import ObsError
from repro.obs.bus import MetricKey, ObsRegistry

#: Override the obs run directory (defaults to ``<cache dir>/obs``).
OBS_DIR_ENV = "REPRO_OBS_DIR"

_SUMMARY_NAME = "summary.json"
_EVENTS_NAME = "events.jsonl"


def default_obs_dir() -> Path:
    """Where obs runs are written: ``$REPRO_OBS_DIR`` or ``<cache>/obs``."""
    override = os.environ.get(OBS_DIR_ENV)
    if override:
        return Path(override).expanduser()
    from repro.runtime.cache import default_cache_dir

    return default_cache_dir() / "obs"


def format_metric(key: MetricKey) -> str:
    """Render a metric key as ``name`` or ``name{k=v,...}``."""
    name, labels = key
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{rendered}}}"


def _fused_status() -> str:
    # Lazy and failure-tolerant: the sink must not force a kernel build
    # (or an import of the rl stack) just to stamp the summary.
    try:
        from repro.rl.fused import kernel_status

        return kernel_status()
    except Exception:  # pragma: no cover - defensive
        return "unknown"


def summarize_registry(registry: ObsRegistry) -> Dict[str, Any]:
    """The aggregate summary dict written to ``summary.json``."""
    histograms: Dict[str, Any] = {}
    for key, histogram in sorted(registry.histograms.items()):
        moments = histogram.moments
        if moments.count == 0:
            continue
        histograms[format_metric(key)] = {
            "count": moments.count,
            "mean": moments.mean,
            "std": moments.std,
            "min": moments.minimum,
            "max": moments.maximum,
            "p50": histogram.percentile(50.0),
            "p90": histogram.percentile(90.0),
            "p99": histogram.percentile(99.0),
        }
    return {
        "schema": "repro-obs-summary/v1",
        "counters": {
            format_metric(key): value
            for key, value in sorted(registry.counters.items())
        },
        "gauges": {
            format_metric(key): value
            for key, value in sorted(registry.gauges.items())
        },
        "histograms": histograms,
        "num_events": len(registry.events),
        "fused_status": _fused_status(),
    }


def write_run(
    registry: ObsRegistry,
    obs_dir: Optional[Path] = None,
    run_id: Optional[str] = None,
    label: Optional[str] = None,
) -> Tuple[Path, Dict[str, Any]]:
    """Persist one run; returns ``(run_dir, summary)``.

    ``run_id`` defaults to a wall-clock + pid stamp, unique enough for
    one machine's runs to sort chronologically in ``obs list``.
    """
    base = Path(obs_dir) if obs_dir is not None else default_obs_dir()
    if run_id is None:
        run_id = f"{time.strftime('%Y%m%d-%H%M%S')}-{os.getpid()}"
    run_dir = base / run_id
    run_dir.mkdir(parents=True, exist_ok=True)
    with (run_dir / _EVENTS_NAME).open("w", encoding="utf-8") as handle:
        for entry in registry.events:
            handle.write(json.dumps(entry, sort_keys=True, default=str) + "\n")
    summary = summarize_registry(registry)
    summary["run_id"] = run_id
    if label is not None:
        summary["label"] = label
    (run_dir / _SUMMARY_NAME).write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return run_dir, summary


def list_runs(obs_dir: Optional[Path] = None) -> List[str]:
    """Run ids under the obs directory, oldest first."""
    base = Path(obs_dir) if obs_dir is not None else default_obs_dir()
    if not base.is_dir():
        return []
    return sorted(
        entry.name
        for entry in base.iterdir()
        if entry.is_dir() and (entry / _SUMMARY_NAME).is_file()
    )


def latest_run(obs_dir: Optional[Path] = None) -> str:
    """The most recent run id; raises :class:`ObsError` when none exist."""
    runs = list_runs(obs_dir)
    if not runs:
        base = Path(obs_dir) if obs_dir is not None else default_obs_dir()
        raise ObsError(f"no obs runs recorded under {base}")
    return runs[-1]


def load_summary(run_id: str, obs_dir: Optional[Path] = None) -> Dict[str, Any]:
    """Load one run's ``summary.json``."""
    base = Path(obs_dir) if obs_dir is not None else default_obs_dir()
    path = base / run_id / _SUMMARY_NAME
    if not path.is_file():
        raise ObsError(f"no obs summary at {path}")
    return json.loads(path.read_text(encoding="utf-8"))


def iter_events(run_id: str, obs_dir: Optional[Path] = None) -> Iterator[Dict[str, Any]]:
    """Stream one run's events, one parsed JSON object per line."""
    base = Path(obs_dir) if obs_dir is not None else default_obs_dir()
    path = base / run_id / _EVENTS_NAME
    if not path.is_file():
        raise ObsError(f"no obs event log at {path}")
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
