"""Render an obs run summary as the ``obs report`` text table.

Stdlib-only on purpose: :mod:`repro.obs` is imported from deep library
layers (``rl/fused.py``), so the render path must not pull in the
analysis stack.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.3f}"
    return str(value)


def _render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> List[str]:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    return lines


def render_summary(summary: Dict[str, Any]) -> str:
    """The per-run report: spans, histograms, counters and gauges."""
    lines: List[str] = []
    run_id = summary.get("run_id", "<unsaved>")
    label = summary.get("label")
    title = f"obs run {run_id}" + (f" ({label})" if label else "")
    lines.append(title)
    lines.append("=" * len(title))
    lines.append(
        f"events: {summary.get('num_events', 0)}"
        f"  fused: {summary.get('fused_status', 'unknown')}"
    )

    histograms: Dict[str, Any] = summary.get("histograms", {})
    spans = {k: v for k, v in histograms.items() if k.startswith("span.")}
    values = {k: v for k, v in histograms.items() if not k.startswith("span.")}
    if spans:
        rows = [
            [
                name[len("span.") :],
                str(stats["count"]),
                f"{stats['count'] * stats['mean']:.1f}",
                f"{stats['p50']:.3f}",
                f"{stats['p99']:.3f}",
                f"{stats['max']:.3f}",
            ]
            for name, stats in spans.items()
        ]
        lines.append("")
        lines.append("spans (durations in ms, exact percentiles)")
        lines.extend(
            _render_table(["span", "count", "total", "p50", "p99", "max"], rows)
        )
    if values:
        rows = [
            [
                name,
                str(stats["count"]),
                _format_value(stats["mean"]),
                _format_value(stats["p50"]),
                _format_value(stats["p99"]),
            ]
            for name, stats in values.items()
        ]
        lines.append("")
        lines.append("histograms")
        lines.extend(_render_table(["metric", "count", "mean", "p50", "p99"], rows))

    counters: Dict[str, Any] = summary.get("counters", {})
    if counters:
        rows = [[name, _format_value(value)] for name, value in counters.items()]
        lines.append("")
        lines.append("counters")
        lines.extend(_render_table(["counter", "value"], rows))

    gauges: Dict[str, Any] = summary.get("gauges", {})
    if gauges:
        rows = [[name, _format_value(value)] for name, value in gauges.items()]
        lines.append("")
        lines.append("gauges")
        lines.extend(_render_table(["gauge", "value"], rows))

    return "\n".join(lines)
