"""Zero-overhead-when-off observability: tracing, metrics, profiling.

* :mod:`repro.obs.bus` — the process-local event bus: span-based tracing
  with parent ids, typed counters/gauges, and histograms with exact
  p50/p99 in bounded memory.  Off by default; the ``REPRO_OBS=1`` switch
  (or :func:`enable`) turns it on, and every helper is a single
  ``is None`` check when it is off.
* :mod:`repro.obs.sink` — JSONL event logs and JSON run summaries written
  next to the result cache, plus loaders for ``obs report``.
* :mod:`repro.obs.report` — the text rendering of a run summary.

Instrumentation never touches RNG state or numerics: traces produced
with observation on are byte-identical to traces produced with it off.
"""

from repro.obs.bus import (
    OBS_ENV,
    Histogram,
    ObsRegistry,
    active,
    disable,
    enable,
    event,
    gauge,
    inc,
    kernel_call,
    obs_enabled,
    observe,
    record_report,
    registry,
    span,
)
from repro.obs.report import render_summary
from repro.obs.sink import (
    OBS_DIR_ENV,
    default_obs_dir,
    format_metric,
    iter_events,
    latest_run,
    list_runs,
    load_summary,
    summarize_registry,
    write_run,
)

__all__ = [
    "Histogram",
    "OBS_DIR_ENV",
    "OBS_ENV",
    "ObsRegistry",
    "active",
    "default_obs_dir",
    "disable",
    "enable",
    "event",
    "format_metric",
    "gauge",
    "inc",
    "iter_events",
    "kernel_call",
    "latest_run",
    "list_runs",
    "load_summary",
    "obs_enabled",
    "observe",
    "record_report",
    "registry",
    "render_summary",
    "span",
    "summarize_registry",
    "write_run",
]
