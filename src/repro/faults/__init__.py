"""Deterministic fault injection.

Declarative, seeded :class:`FaultPlan` objects describe sensor dropouts
and spikes, throttling storms, lossy channels and worker crashes; they
serialise and fingerprint exactly like ambient profiles, compile into
dense per-frame schedules (:func:`compile_fault_plan`), and inject at the
policy boundary (:class:`FaultedFleetPolicy` / :class:`FaultedPolicy`)
so the simulated physics — and therefore the trace schema — stay
untouched.  See :mod:`repro.comms` for the lossy-channel consumer and
:mod:`repro.runtime.shards` for supervised crash recovery.
"""

from repro.faults.inject import SENSOR_FIELDS, FaultedFleetPolicy, FaultedPolicy
from repro.faults.plan import (
    ChannelFaults,
    FaultEvent,
    FaultPlan,
    FaultSchedule,
    SensorDropout,
    SensorSpike,
    ThrottlingStorm,
    WorkerCrash,
    compile_fault_plan,
    fault_fingerprint,
    fault_plan_from_dict,
    fault_plan_from_json,
)

__all__ = [
    "ChannelFaults",
    "FaultEvent",
    "FaultPlan",
    "FaultSchedule",
    "FaultedFleetPolicy",
    "FaultedPolicy",
    "SENSOR_FIELDS",
    "SensorDropout",
    "SensorSpike",
    "ThrottlingStorm",
    "WorkerCrash",
    "compile_fault_plan",
    "fault_fingerprint",
    "fault_plan_from_dict",
    "fault_plan_from_json",
]
