"""Declarative, seeded fault plans.

A :class:`FaultPlan` is a small, serialisable description of *what goes
wrong* during a run: sensor dropouts and spikes, throttling storms, lossy
communication channels, and worker crashes.  Plans follow the same
discipline as ambient profiles (:mod:`repro.env.ambient`): they are frozen
dataclasses with a validated dict/JSON codec and a canonical fingerprint,
so a faulted run is exactly as cacheable and reproducible as a clean one.

Two layers:

* the **plan** — typed events, human-authored, attached to a
  :class:`~repro.scenarios.spec.ScenarioSpec`;
* the **schedule** (:func:`compile_fault_plan`) — dense per-frame,
  per-session boolean/float arrays derived deterministically from the
  plan's seed.  Stochastic events (a dropout with ``probability < 1``) are
  resolved here with one generator per *global* session index
  (``default_rng([seed, session])``), so the compiled schedule for a
  session never depends on how the fleet is grouped or sharded.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import FaultError


def _session_tuple(sessions: object) -> Optional[Tuple[int, ...]]:
    """Normalise a session filter to a sorted tuple (``None`` = all)."""
    if sessions is None:
        return None
    try:
        values = tuple(sorted(int(s) for s in sessions))  # type: ignore[arg-type]
    except TypeError as exc:
        raise FaultError(f"sessions must be an iterable of ints: {exc}") from exc
    if any(s < 0 for s in values):
        raise FaultError("session indices must be non-negative")
    if len(set(values)) != len(values):
        raise FaultError("session indices must be unique")
    return values


def _check_rate(name: str, value: float) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise FaultError(f"{name} must be within [0, 1], got {value}")
    return value


@dataclass(frozen=True)
class SensorDropout:
    """Thermal/utilisation telemetry goes dark for a window of frames.

    While a session is dropped, policies see the last-known-good sensor
    readings (graceful degradation); the run keeps going and the affected
    frames are recorded as degraded.

    Attributes:
        start_frame: First affected frame.
        num_frames: Length of the window.
        sessions: Global session indices affected (``None`` = every session).
        probability: Per-(frame, session) chance the reading is lost within
            the window; ``1.0`` is a hard outage, lower values model flaky
            telemetry, resolved deterministically from the plan seed.
    """

    start_frame: int
    num_frames: int
    sessions: Optional[Tuple[int, ...]] = None
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.start_frame < 0 or self.num_frames <= 0:
            raise FaultError(
                "sensor dropout needs start_frame >= 0 and num_frames >= 1"
            )
        object.__setattr__(self, "sessions", _session_tuple(self.sessions))
        object.__setattr__(
            self, "probability", _check_rate("probability", self.probability)
        )


@dataclass(frozen=True)
class SensorSpike:
    """A one-frame bogus temperature reading (added on top of the truth).

    Attributes:
        frame: Affected frame.
        delta_c: Celsius offset added to both die-temperature readings.
        sessions: Global session indices affected (``None`` = every session).
    """

    frame: int
    delta_c: float
    sessions: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.frame < 0:
            raise FaultError("sensor spike frame must be non-negative")
        if not np.isfinite(self.delta_c):
            raise FaultError("sensor spike delta_c must be finite")
        object.__setattr__(self, "sessions", _session_tuple(self.sessions))


@dataclass(frozen=True)
class ThrottlingStorm:
    """A window where affected sessions are forced to their lowest levels.

    Models an external thermal-management daemon clamping frequencies: the
    policy's decisions are overridden to level 0 on both domains for the
    duration, and the frames are recorded as degraded.
    """

    start_frame: int
    num_frames: int
    sessions: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.start_frame < 0 or self.num_frames <= 0:
            raise FaultError(
                "throttling storm needs start_frame >= 0 and num_frames >= 1"
            )
        object.__setattr__(self, "sessions", _session_tuple(self.sessions))


@dataclass(frozen=True)
class ChannelFaults:
    """Loss characteristics of the agent/client channel.

    Consumed by :class:`repro.comms.LossyChannel`: each sent message is
    independently dropped, delayed or duplicated at these rates.
    """

    drop_rate: float = 0.0
    delay_rate: float = 0.0
    delay_ms: float = 25.0
    duplicate_rate: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "drop_rate", _check_rate("drop_rate", self.drop_rate))
        object.__setattr__(
            self, "delay_rate", _check_rate("delay_rate", self.delay_rate)
        )
        object.__setattr__(
            self, "duplicate_rate", _check_rate("duplicate_rate", self.duplicate_rate)
        )
        if self.delay_ms < 0:
            raise FaultError("delay_ms must be non-negative")
        object.__setattr__(self, "delay_ms", float(self.delay_ms))


@dataclass(frozen=True)
class WorkerCrash:
    """Kill one shard's worker process at the start of frame ``frame``.

    Consumed by the supervised sharded runtime
    (:func:`repro.runtime.shards.run_supervised_scenario`): the worker
    owning shard ``shard`` calls ``os._exit`` when it reaches the frame,
    and the supervisor restarts it from its latest periodic checkpoint.
    """

    frame: int
    shard: int = 0

    def __post_init__(self) -> None:
        if self.frame < 0:
            raise FaultError("worker crash frame must be non-negative")
        if self.shard < 0:
            raise FaultError("worker crash shard must be non-negative")


FaultEvent = Union[SensorDropout, SensorSpike, ThrottlingStorm, ChannelFaults, WorkerCrash]

_EVENT_KINDS: Dict[str, type] = {
    "sensor_dropout": SensorDropout,
    "sensor_spike": SensorSpike,
    "throttling_storm": ThrottlingStorm,
    "channel_faults": ChannelFaults,
    "worker_crash": WorkerCrash,
}
_EVENT_FIELDS: Dict[str, Tuple[str, ...]] = {
    "sensor_dropout": ("start_frame", "num_frames", "sessions", "probability"),
    "sensor_spike": ("frame", "delta_c", "sessions"),
    "throttling_storm": ("start_frame", "num_frames", "sessions"),
    "channel_faults": ("drop_rate", "delay_rate", "delay_ms", "duplicate_rate"),
    "worker_crash": ("frame", "shard"),
}


def _event_to_dict(event: FaultEvent) -> Dict[str, Any]:
    for kind, cls in _EVENT_KINDS.items():
        if type(event) is cls:
            payload: Dict[str, Any] = {"kind": kind}
            for name in _EVENT_FIELDS[kind]:
                value = getattr(event, name)
                payload[name] = list(value) if isinstance(value, tuple) else value
            return payload
    raise FaultError(f"unknown fault event type {type(event).__name__!r}")


def _event_from_dict(payload: Dict[str, Any]) -> FaultEvent:
    if not isinstance(payload, dict):
        raise FaultError("fault event payload must be a mapping")
    kind = payload.get("kind")
    if kind not in _EVENT_KINDS:
        raise FaultError(f"unknown fault event kind {kind!r}")
    known = set(_EVENT_FIELDS[kind]) | {"kind"}
    unexpected = set(payload) - known
    if unexpected:
        raise FaultError(
            f"unexpected keys in {kind!r} fault event: {sorted(unexpected)}"
        )
    kwargs = {name: payload[name] for name in _EVENT_FIELDS[kind] if name in payload}
    if "sessions" in kwargs and kwargs["sessions"] is not None:
        kwargs["sessions"] = tuple(kwargs["sessions"])
    try:
        return _EVENT_KINDS[kind](**kwargs)
    except TypeError as exc:
        raise FaultError(f"malformed {kind!r} fault event: {exc}") from exc


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative schedule of faults for one run.

    Attributes:
        events: The typed fault events, applied in order.
        seed: Seed resolving every stochastic event; the same plan (seed
            included) always compiles to the identical fault schedule.
        name: Optional label carried into reports.
    """

    events: Tuple[FaultEvent, ...] = ()
    seed: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, tuple(_EVENT_KINDS.values())):
                raise FaultError(
                    f"fault plan events must be fault event instances, got "
                    f"{type(event).__name__!r}"
                )
        if len([e for e in self.events if isinstance(e, ChannelFaults)]) > 1:
            raise FaultError("a fault plan can carry at most one channel_faults event")
        object.__setattr__(self, "seed", int(self.seed))
        if not isinstance(self.name, str):
            raise FaultError("fault plan name must be a string")

    # -- queries -------------------------------------------------------------------------

    @property
    def channel(self) -> Optional[ChannelFaults]:
        """The plan's channel-loss characteristics, if any."""
        for event in self.events:
            if isinstance(event, ChannelFaults):
                return event
        return None

    @property
    def crashes(self) -> Tuple[WorkerCrash, ...]:
        """Worker-crash events, in plan order."""
        return tuple(e for e in self.events if isinstance(e, WorkerCrash))

    # -- codec ---------------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable representation (round-trips through
        :func:`fault_plan_from_dict`)."""
        return {
            "kind": "fault-plan",
            "name": self.name,
            "seed": self.seed,
            "events": [_event_to_dict(event) for event in self.events],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def fault_plan_from_dict(payload: Dict[str, Any]) -> FaultPlan:
    """Rebuild a :class:`FaultPlan` from its :meth:`~FaultPlan.to_dict`."""
    if not isinstance(payload, dict):
        raise FaultError("fault plan payload must be a mapping")
    if payload.get("kind") != "fault-plan":
        raise FaultError(f"expected kind 'fault-plan', got {payload.get('kind')!r}")
    known = {"kind", "name", "seed", "events"}
    unexpected = set(payload) - known
    if unexpected:
        raise FaultError(f"unexpected keys in fault plan: {sorted(unexpected)}")
    events_payload = payload.get("events", [])
    if not isinstance(events_payload, list):
        raise FaultError("fault plan 'events' must be a list")
    return FaultPlan(
        events=tuple(_event_from_dict(event) for event in events_payload),
        seed=int(payload.get("seed", 0)),
        name=str(payload.get("name", "")),
    )


def fault_plan_from_json(text: str) -> FaultPlan:
    """Rebuild a :class:`FaultPlan` from a JSON string."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise FaultError(f"malformed fault plan JSON: {exc}") from exc
    return fault_plan_from_dict(payload)


def fault_fingerprint(plan: Optional[FaultPlan]) -> Optional[Dict[str, Any]]:
    """Canonical content fingerprint of a plan for job hashing.

    ``None`` stays ``None`` so un-faulted jobs keep a stable key shape; a
    plan fingerprints as its full codec dict (events, seed and name), the
    same discipline ambient profiles use.
    """
    return None if plan is None else plan.to_dict()


# -- compilation ------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultSchedule:
    """Dense, per-frame × per-session fault masks compiled from a plan.

    Attributes:
        sessions: The global session indices the columns correspond to.
        dropout: ``(num_frames, len(sessions))`` bool — sensor reading lost.
        spike_c: Same shape, float — Celsius offset added to temperature
            readings (0 where no spike).
        storm: Same shape, bool — decisions clamped to minimum levels.
    """

    sessions: Tuple[int, ...]
    dropout: np.ndarray
    spike_c: np.ndarray
    storm: np.ndarray

    @property
    def num_frames(self) -> int:
        """Number of frames the schedule covers."""
        return int(self.dropout.shape[0])

    @property
    def num_sessions(self) -> int:
        """Number of session columns."""
        return int(self.dropout.shape[1])

    @property
    def any_faults(self) -> bool:
        """Whether any frame of any session is affected."""
        return bool(
            self.dropout.any() or self.storm.any() or np.any(self.spike_c != 0.0)
        )

    def take(self, columns: Sequence[int]) -> "FaultSchedule":
        """A schedule restricted to the given column positions."""
        cols = np.asarray(list(columns), dtype=int)
        return FaultSchedule(
            sessions=tuple(self.sessions[c] for c in cols.tolist()),
            dropout=self.dropout[:, cols].copy(),
            spike_c=self.spike_c[:, cols].copy(),
            storm=self.storm[:, cols].copy(),
        )


def _affects(event_sessions: Optional[Tuple[int, ...]], session: int) -> bool:
    return event_sessions is None or session in event_sessions


def compile_fault_plan(
    plan: FaultPlan,
    num_frames: int,
    session_indices: Sequence[int],
) -> FaultSchedule:
    """Resolve a plan into dense per-frame masks for the given sessions.

    Each column is compiled independently from a generator seeded with
    ``[plan.seed, global_session_index]``, consumed in event order — so a
    session's schedule is a pure function of the plan and its global index,
    regardless of fleet grouping or sharding.  Windows extending past
    ``num_frames`` are truncated (stochastic draws still cover the full
    declared window, keeping the schedule invariant under frame-count
    extension).
    """
    if num_frames <= 0:
        raise FaultError("num_frames must be positive")
    sessions = tuple(int(s) for s in session_indices)
    if any(s < 0 for s in sessions):
        raise FaultError("session indices must be non-negative")
    shape = (num_frames, len(sessions))
    dropout = np.zeros(shape, dtype=bool)
    spike_c = np.zeros(shape, dtype=float)
    storm = np.zeros(shape, dtype=bool)
    for column, session in enumerate(sessions):
        rng = np.random.default_rng([plan.seed, session])
        for event in plan.events:
            if isinstance(event, SensorDropout):
                draws = None
                if event.probability < 1.0:
                    draws = rng.random(event.num_frames) < event.probability
                if not _affects(event.sessions, session):
                    continue
                for offset in range(event.num_frames):
                    frame = event.start_frame + offset
                    if frame >= num_frames:
                        break
                    if draws is None or draws[offset]:
                        dropout[frame, column] = True
            elif isinstance(event, SensorSpike):
                if _affects(event.sessions, session) and event.frame < num_frames:
                    spike_c[event.frame, column] += event.delta_c
            elif isinstance(event, ThrottlingStorm):
                if not _affects(event.sessions, session):
                    continue
                stop = min(event.start_frame + event.num_frames, num_frames)
                storm[event.start_frame : stop, column] = True
    return FaultSchedule(
        sessions=sessions, dropout=dropout, spike_c=spike_c, storm=storm
    )
