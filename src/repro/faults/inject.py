"""Fault injection wrappers: graceful degradation at the policy boundary.

Faults are injected between the environment and the policy, never inside
the simulator: the environment always advances on the true physics, while
the policy sees corrupted *sensor readings* (dropouts hold the
last-known-good values, spikes add a bogus offset) and throttling storms
override its *decisions*.  This keeps the frame records untouched — a
faulted run's trace stays schema-compatible with a clean one — and makes
the wrappers trivially checkpointable for crash recovery.

Only sensor-shaped fields are corrupted (die temperatures, utilisations,
ambient, throttle flags).  Actuator state (current levels), the latency
budget and pipeline-internal measurements (stage-1 latency, proposal
count) are known locally on the device and survive a telemetry outage.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.env.fleet import (
    FleetDecision,
    FleetFrameResult,
    FleetMidObservation,
    FleetPolicy,
    FleetStartObservation,
)
from repro.env.environment import FrameResult, FrameStartObservation, MidFrameObservation
from repro.env.policy import FrequencyDecision, Policy
from repro.faults.plan import FaultSchedule
from repro.obs import bus as _obs

#: Observation fields treated as remote sensor readings (maskable).
SENSOR_FIELDS = (
    "cpu_temperature_c",
    "gpu_temperature_c",
    "cpu_utilisation",
    "gpu_utilisation",
    "ambient_temperature_c",
    "cpu_throttled",
    "gpu_throttled",
)
_TEMPERATURE_FIELDS = ("cpu_temperature_c", "gpu_temperature_c")


class FaultedFleetPolicy(FleetPolicy):
    """Wrap a fleet policy with a compiled fault schedule.

    On dropout frames the inner policy acts on the last-known-good sensor
    readings of each affected session; spike frames add the scheduled
    temperature offset; storm frames force the affected sessions to level 0
    on both domains.  The wrapper records which (frame, session) cells were
    degraded in :attr:`degraded`.
    """

    def __init__(self, inner: FleetPolicy, schedule: FaultSchedule):
        self.inner = inner
        self.schedule = schedule
        self.name = f"faulted({inner.name})"
        self._frame = 0
        self._good_start: Optional[dict] = None
        self._good_mid: Optional[dict] = None
        self.degraded = np.zeros(
            (schedule.num_frames, schedule.num_sessions), dtype=bool
        )

    # -- degradation ---------------------------------------------------------------------

    def _degrade(self, observation, good_key: str):
        frame = self._frame
        snapshot = {name: np.copy(getattr(observation, name)) for name in SENSOR_FIELDS}
        if frame >= self.schedule.num_frames:
            setattr(self, good_key, snapshot)
            return observation
        drop = self.schedule.dropout[frame]
        spike = self.schedule.spike_c[frame]
        good = getattr(self, good_key)
        replaced = observation
        if drop.any() and good is not None:
            fields = {
                name: np.where(drop, good[name], getattr(observation, name))
                for name in SENSOR_FIELDS
            }
            replaced = dataclasses.replace(observation, **fields)
            self.degraded[frame] |= drop
            if _obs.active():
                _obs.inc("faults.dropout_cells", int(drop.sum()))
        # Last-known-good holds the final reading *before* the outage: only
        # non-dropped sessions refresh the snapshot.
        if good is None:
            setattr(self, good_key, snapshot)
        else:
            for name in SENSOR_FIELDS:
                good[name] = np.where(drop, good[name], snapshot[name])
        if np.any(spike != 0.0):
            fields = {
                name: getattr(replaced, name) + spike for name in _TEMPERATURE_FIELDS
            }
            replaced = dataclasses.replace(replaced, **fields)
            self.degraded[frame] |= spike != 0.0
            if _obs.active():
                _obs.inc("faults.spike_cells", int(np.count_nonzero(spike != 0.0)))
        return replaced

    def _clamp(self, decision: Optional[FleetDecision]) -> Optional[FleetDecision]:
        frame = self._frame
        if frame >= self.schedule.num_frames:
            return decision
        storm = self.schedule.storm[frame]
        if not storm.any():
            return decision
        self.degraded[frame] |= storm
        if _obs.active():
            _obs.inc("faults.storm_cells", int(storm.sum()))
        num_sessions = self.schedule.num_sessions
        if decision is None:
            return FleetDecision(
                cpu_levels=np.zeros(num_sessions, dtype=np.int64),
                gpu_levels=np.zeros(num_sessions, dtype=np.int64),
                mask=storm.copy(),
            )
        cpu = np.where(storm, 0, decision.cpu_levels).astype(np.int64)
        gpu = np.where(storm, 0, decision.gpu_levels).astype(np.int64)
        mask = None if decision.mask is None else (decision.mask | storm)
        return FleetDecision(cpu_levels=cpu, gpu_levels=gpu, mask=mask)

    # -- fleet policy protocol -----------------------------------------------------------

    def begin_frame(self, observation: FleetStartObservation):
        return self._clamp(self.inner.begin_frame(self._degrade(observation, "_good_start")))

    def mid_frame(self, observation: FleetMidObservation):
        return self._clamp(self.inner.mid_frame(self._degrade(observation, "_good_mid")))

    def end_frame(self, result: FleetFrameResult) -> None:
        self.inner.end_frame(result)
        self._frame += 1

    def reset(self) -> None:
        self.inner.reset()
        self._frame = 0
        self._good_start = None
        self._good_mid = None
        self.degraded[:] = False

    # -- checkpointing -------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot of the wrapper's bookkeeping plus the inner policy's
        state (``None`` when the inner policy is stateless)."""
        inner = (
            self.inner.state_dict() if hasattr(self.inner, "state_dict") else None
        )
        return {
            "frame": int(self._frame),
            "good_start": None
            if self._good_start is None
            else {k: v.copy() for k, v in self._good_start.items()},
            "good_mid": None
            if self._good_mid is None
            else {k: v.copy() for k, v in self._good_mid.items()},
            "degraded": self.degraded.copy(),
            "inner": inner,
        }

    def load_state_dict(self, payload: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        self._frame = int(payload["frame"])
        self._good_start = (
            None
            if payload["good_start"] is None
            else {k: np.copy(v) for k, v in payload["good_start"].items()}
        )
        self._good_mid = (
            None
            if payload["good_mid"] is None
            else {k: np.copy(v) for k, v in payload["good_mid"].items()}
        )
        self.degraded[:] = payload["degraded"]
        if payload["inner"] is not None:
            self.inner.load_state_dict(payload["inner"])


class FaultedPolicy(Policy):
    """Scalar counterpart of :class:`FaultedFleetPolicy` for one session.

    ``column`` selects the schedule column this session corresponds to
    (schedules are compiled per global session index).
    """

    def __init__(self, inner: Policy, schedule: FaultSchedule, column: int = 0):
        if not 0 <= column < schedule.num_sessions:
            raise ValueError(
                f"column {column} outside schedule with {schedule.num_sessions} sessions"
            )
        self.inner = inner
        self.schedule = schedule
        self.column = int(column)
        self.name = f"faulted({inner.name})"
        self._frame = 0
        self._good_start: Optional[dict] = None
        self._good_mid: Optional[dict] = None
        self.degraded = np.zeros(schedule.num_frames, dtype=bool)

    @property
    def loss_history(self):
        """Losses of the wrapped policy, when it records them."""
        return getattr(self.inner, "loss_history", [])

    @property
    def reward_history(self):
        """Rewards of the wrapped policy, when it records them."""
        return getattr(self.inner, "reward_history", [])

    def _degrade(self, observation, good_key: str):
        frame = self._frame
        snapshot = {name: getattr(observation, name) for name in SENSOR_FIELDS}
        if frame >= self.schedule.num_frames:
            setattr(self, good_key, snapshot)
            return observation
        drop = bool(self.schedule.dropout[frame, self.column])
        spike = float(self.schedule.spike_c[frame, self.column])
        good = getattr(self, good_key)
        replaced = observation
        if drop and good is not None:
            replaced = dataclasses.replace(observation, **good)
            self.degraded[frame] = True
            _obs.inc("faults.dropout_cells")
        if not drop or good is None:
            setattr(self, good_key, snapshot)
        if spike != 0.0:
            fields = {
                name: getattr(replaced, name) + spike for name in _TEMPERATURE_FIELDS
            }
            replaced = dataclasses.replace(replaced, **fields)
            self.degraded[frame] = True
            _obs.inc("faults.spike_cells")
        return replaced

    def _clamp(self, decision: Optional[FrequencyDecision]):
        frame = self._frame
        if frame >= self.schedule.num_frames:
            return decision
        if not self.schedule.storm[frame, self.column]:
            return decision
        self.degraded[frame] = True
        _obs.inc("faults.storm_cells")
        return FrequencyDecision(cpu_level=0, gpu_level=0)

    def begin_frame(self, observation: FrameStartObservation):
        return self._clamp(self.inner.begin_frame(self._degrade(observation, "_good_start")))

    def mid_frame(self, observation: MidFrameObservation):
        return self._clamp(self.inner.mid_frame(self._degrade(observation, "_good_mid")))

    def end_frame(self, result: FrameResult) -> None:
        self.inner.end_frame(result)
        self._frame += 1

    def reset(self) -> None:
        self.inner.reset()
        self._frame = 0
        self._good_start = None
        self._good_mid = None
        self.degraded[:] = False
