"""GPU model.

Structurally identical to :class:`repro.hardware.cpu.CpuModel`: a frequency
table (devfreq operating points), a power model and the current level.  The
GPU is where the bulk of a detector's convolution work executes, so its
frequency dominates stage-1 latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FrequencyError
from repro.hardware.frequency import FrequencyTable, OperatingPoint
from repro.hardware.power import PowerModel


@dataclass
class GpuModel:
    """Simulated GPU frequency domain.

    Attributes:
        name: Human-readable description (e.g. ``"Ampere 1024-core"``).
        frequency_table: Available operating points (devfreq table).
        power_model: Power model for the whole GPU.
        num_cores: Shader/CUDA core count; informational.
        level: Current frequency level.
    """

    name: str
    frequency_table: FrequencyTable
    power_model: PowerModel
    num_cores: int = 1024
    level: int = field(default=0)

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise FrequencyError("num_cores must be positive")
        self.level = self.frequency_table.validate_level(self.level)

    # -- frequency control -------------------------------------------------------

    @property
    def num_levels(self) -> int:
        """Number of selectable frequency levels."""
        return self.frequency_table.num_levels

    @property
    def max_level(self) -> int:
        """Highest selectable frequency level."""
        return self.frequency_table.max_level

    @property
    def operating_point(self) -> OperatingPoint:
        """Current operating point."""
        return self.frequency_table.point(self.level)

    @property
    def frequency_khz(self) -> float:
        """Current frequency in kHz."""
        return self.operating_point.frequency_khz

    @property
    def relative_speed(self) -> float:
        """Current frequency as a fraction of the maximum frequency."""
        return self.frequency_table.relative_speed(self.level)

    def set_level(self, level: int) -> None:
        """Set the frequency level, validating the index."""
        self.level = self.frequency_table.validate_level(level)

    def set_max(self) -> None:
        """Jump to the highest operating point."""
        self.level = self.frequency_table.max_level

    def set_min(self) -> None:
        """Jump to the lowest operating point."""
        self.level = 0

    # -- power ---------------------------------------------------------------------

    def power_w(self, utilisation: float, temperature_c: float) -> float:
        """Power (W) drawn at the current level for the given utilisation."""
        return self.power_model.total_power_w(
            self.operating_point, utilisation, temperature_c
        )
