"""Hardware thermal throttling.

When the die temperature of a passively cooled edge device crosses the trip
point, firmware/kernel thermal management caps the processor frequency to a
low level until the temperature has dropped below the trip point minus a
hysteresis margin.  This is the behaviour Lotus (and zTT) try to avoid: the
cap is far below the sustainable frequency, so throttling causes the large
latency spikes visible in the paper's "default" traces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ThrottleConfig:
    """Configuration of the hardware thermal throttler for one processor.

    Attributes:
        trip_temperature_c: Temperature at which throttling engages.
        hysteresis_c: Temperature must fall to ``trip - hysteresis`` before
            the cap is lifted.
        throttled_level: Frequency level the processor is capped to while
            throttled.
    """

    trip_temperature_c: float
    hysteresis_c: float = 5.0
    throttled_level: int = 0

    def __post_init__(self) -> None:
        if self.hysteresis_c < 0:
            raise ConfigurationError("hysteresis must be non-negative")
        if self.throttled_level < 0:
            raise ConfigurationError("throttled_level must be non-negative")


class ThermalThrottler:
    """Stateful trip-point throttler with hysteresis for one processor."""

    def __init__(self, config: ThrottleConfig):
        self.config = config
        self._throttled = False
        self._engage_count = 0

    # -- state ------------------------------------------------------------------

    @property
    def is_throttled(self) -> bool:
        """Whether the throttle cap is currently active."""
        return self._throttled

    @property
    def engage_count(self) -> int:
        """Number of times throttling has engaged since the last reset."""
        return self._engage_count

    def reset(self) -> None:
        """Clear the throttle state (device reboot / start of an episode)."""
        self._throttled = False
        self._engage_count = 0

    # -- behaviour -----------------------------------------------------------------

    def update(self, temperature_c: float) -> bool:
        """Update the throttle state from the current temperature.

        Returns:
            ``True`` if the processor is throttled after the update.
        """
        if self._throttled:
            release_at = self.config.trip_temperature_c - self.config.hysteresis_c
            if temperature_c <= release_at:
                self._throttled = False
        else:
            if temperature_c >= self.config.trip_temperature_c:
                self._throttled = True
                self._engage_count += 1
        return self._throttled

    def cap_level(self, requested_level: int) -> int:
        """Apply the throttle cap to a requested frequency level."""
        if self._throttled:
            return min(requested_level, self.config.throttled_level)
        return requested_level
