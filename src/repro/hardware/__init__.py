"""Edge-device hardware simulator.

This package models the parts of an edge SoC that a DVFS controller such as
Lotus interacts with:

* :mod:`repro.hardware.frequency` — discrete operating performance points
  (frequency/voltage pairs) exactly like the tables exposed by ``cpufreq``
  and ``devfreq``.
* :mod:`repro.hardware.power` — dynamic (``C·V²·f``) plus
  temperature-dependent leakage power.
* :mod:`repro.hardware.thermal` — a lumped RC thermal network with
  CPU↔GPU coupling and an ambient node.
* :mod:`repro.hardware.throttle` — hardware thermal throttling with
  hysteresis, the mechanism Lotus tries to keep the device away from.
* :mod:`repro.hardware.cpu` / :mod:`repro.hardware.gpu` — processor models
  combining a frequency table with a power model.
* :mod:`repro.hardware.device` — :class:`~repro.hardware.device.EdgeDevice`,
  the composite object the simulation environment drives.
* :mod:`repro.hardware.sysfs` — a simulated sysfs tree so that controllers
  can be written against the same read/write-a-file interface used on real
  Linux/Android devices.
* :mod:`repro.hardware.devices` — calibrated device descriptions for the
  NVIDIA Jetson Orin Nano and the Xiaomi Mi 11 Lite used in the paper,
  plus a passively-cooled Raspberry Pi 5.
* :mod:`repro.hardware.fleet` — :class:`~repro.hardware.fleet.DeviceFleet`,
  batched struct-of-arrays kernels advancing N identical devices in
  lock-step for the fleet engine.
"""

from repro.hardware.frequency import FrequencyTable, OperatingPoint
from repro.hardware.power import PowerModel
from repro.hardware.thermal import ThermalNetwork, ThermalNodeConfig
from repro.hardware.throttle import ThermalThrottler, ThrottleConfig
from repro.hardware.cpu import CpuModel
from repro.hardware.gpu import GpuModel
from repro.hardware.device import DeviceTelemetry, EdgeDevice
from repro.hardware.sysfs import SysFs
from repro.hardware.devices import (
    available_devices,
    build_device,
    jetson_orin_nano,
    mi11_lite,
    raspberry_pi5,
)
from repro.hardware.fleet import DeviceFleet, FleetTelemetry

__all__ = [
    "FrequencyTable",
    "OperatingPoint",
    "PowerModel",
    "ThermalNetwork",
    "ThermalNodeConfig",
    "ThermalThrottler",
    "ThrottleConfig",
    "CpuModel",
    "GpuModel",
    "EdgeDevice",
    "DeviceTelemetry",
    "DeviceFleet",
    "FleetTelemetry",
    "SysFs",
    "available_devices",
    "build_device",
    "jetson_orin_nano",
    "mi11_lite",
    "raspberry_pi5",
]
