"""Batched device kernels: one struct-of-arrays fleet of identical devices.

:class:`DeviceFleet` advances N independent copies of one
:class:`~repro.hardware.device.EdgeDevice` in lock-step, replacing N Python
object graphs (thermal dicts, throttler objects, per-call dataclasses) with
a handful of NumPy arrays and vectorized kernels:

* RC thermal integration with per-session sub-stepping (sessions whose
  segment already finished take zero-length sub-steps, so one array loop
  integrates segments of different durations),
* the dynamic + leakage power model,
* trip-point throttling with hysteresis, and
* requested-level bookkeeping with throttle caps re-applied after every
  segment.

Every kernel performs the *same floating-point operations in the same
order* as the scalar classes, so a fleet session is bit-for-bit identical
to the equivalent scalar :class:`EdgeDevice` run — the only deliberate
subtlety is leakage power, where ``math.exp`` is evaluated per session
(NumPy's vectorized ``exp`` differs from libm by an ULP on ~4 % of inputs,
which would break seed-for-seed trace equivalence).

All sessions share one device *description*; heterogeneous-hardware fleets
run one ``DeviceFleet`` per device group (the grouped sub-fleet path built
by :func:`repro.runtime.fleet.run_fleet_scenario`), with per-session
initial-ambient arrays so sessions inside a group may still start in
different environments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import DeviceError
from repro.hardware.device import CPU_NODE, GPU_NODE, EdgeDevice
from repro.rl.fused import fused_fleet
from repro.hardware.frequency import FrequencyTable
from repro.hardware.power import PowerModel
from repro.hardware.throttle import ThrottleConfig


def _exact_exp(exponents: np.ndarray) -> np.ndarray:
    """Elementwise ``math.exp``, matching the scalar power model bit-for-bit."""
    return np.array([math.exp(value) for value in exponents.tolist()], dtype=float)


@dataclass(frozen=True)
class FleetTelemetry:
    """Per-session telemetry arrays returned after each executed segment.

    The array counterpart of
    :class:`~repro.hardware.device.DeviceTelemetry`: every attribute is a
    length-N array indexed by session.
    """

    cpu_temperature_c: np.ndarray
    gpu_temperature_c: np.ndarray
    cpu_level: np.ndarray
    gpu_level: np.ndarray
    cpu_power_w: np.ndarray
    gpu_power_w: np.ndarray
    energy_j: np.ndarray
    cpu_throttled: np.ndarray
    gpu_throttled: np.ndarray
    duration_ms: np.ndarray

    @property
    def any_throttled(self) -> np.ndarray:
        """Boolean array: whether either processor throttled, per session."""
        return self.cpu_throttled | self.gpu_throttled


class _DomainTables:
    """Frequency/voltage lookup tables and power constants for one domain."""

    def __init__(self, table: FrequencyTable, power: PowerModel):
        self.num_levels = table.num_levels
        self.max_level = table.max_level
        self.frequency_khz = np.array(table.frequencies_khz, dtype=float)
        # Squared voltages are tabulated with Python's scalar ``**`` so the
        # kernel never has to trust array ``**`` to round identically.
        self.voltage_sq_mv = np.array(
            [point.voltage_mv**2 for point in table], dtype=float
        )
        self.idle_power_w = power.idle_power_w
        self.leakage_power_w = power.leakage_power_w
        self.leakage_temp_coefficient = power.leakage_temp_coefficient
        self.leakage_reference_temp_c = power.leakage_reference_temp_c
        self.effective_capacitance = power.effective_capacitance

    def power_w(
        self, levels: np.ndarray, utilisation: np.ndarray, temperature_c: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`PowerModel.total_power_w` over the fleet."""
        utilisation = np.minimum(np.maximum(utilisation, 0.0), 1.0)
        dynamic = (
            self.effective_capacitance
            * self.voltage_sq_mv[levels]
            * self.frequency_khz[levels]
            * utilisation
        )
        exponent = np.minimum(
            self.leakage_temp_coefficient
            * (temperature_c - self.leakage_reference_temp_c),
            4.0,
        )
        leakage = self.leakage_power_w * _exact_exp(exponent)
        return self.idle_power_w + dynamic + leakage


class _ThrottlerArrays:
    """Vectorized trip-point throttler with hysteresis for one domain."""

    def __init__(self, config: ThrottleConfig, num_sessions: int):
        self.trip_temperature_c = config.trip_temperature_c
        self.release_temperature_c = config.trip_temperature_c - config.hysteresis_c
        self.throttled_level = config.throttled_level
        self.throttled = np.zeros(num_sessions, dtype=bool)
        self.engage_count = np.zeros(num_sessions, dtype=np.int64)

    def reset(self) -> None:
        self.throttled[:] = False
        self.engage_count[:] = 0

    def update(self, temperature_c: np.ndarray) -> np.ndarray:
        """Advance the hysteresis state machine; returns the throttled mask."""
        released = self.throttled & (temperature_c <= self.release_temperature_c)
        engaged = ~self.throttled & (temperature_c >= self.trip_temperature_c)
        self.throttled = (self.throttled & ~released) | engaged
        self.engage_count += engaged
        return self.throttled.copy()

    def cap_levels(self, requested: np.ndarray) -> np.ndarray:
        return np.where(
            self.throttled, np.minimum(requested, self.throttled_level), requested
        )


class DeviceFleet:
    """N lock-step instances of one edge device as struct-of-arrays state.

    Args:
        template: The device description all sessions share.  The template
            object itself is never mutated.
        num_sessions: Fleet size N.
        ambient_temperature_c: Initial ambient temperature — a scalar shared
            by the whole fleet, or a length-N array giving every session its
            own initial ambient (heterogeneous ambient schedules start each
            session in its own environment).  Defaults to the template's
            current ambient.
    """

    def __init__(
        self,
        template: EdgeDevice,
        num_sessions: int,
        ambient_temperature_c: float | np.ndarray | None = None,
    ):
        if num_sessions <= 0:
            raise DeviceError("a fleet needs at least one session")
        self.name = template.name
        self.num_sessions = num_sessions
        self.template = template
        self.cpu = _DomainTables(template.cpu.frequency_table, template.cpu.power_model)
        self.gpu = _DomainTables(template.gpu.frequency_table, template.gpu.power_model)

        thermal = template.thermal
        self._node_names: Tuple[str, ...] = thermal.node_names
        self._node_index = {name: i for i, name in enumerate(self._node_names)}
        self._cpu_node = self._node_index[CPU_NODE]
        self._gpu_node = self._node_index[GPU_NODE]
        self._heat_capacity = np.array(
            [node.heat_capacity_j_per_c for node in thermal.nodes], dtype=float
        )
        self._resistance = np.array(
            [node.resistance_to_ambient_c_per_w for node in thermal.nodes], dtype=float
        )
        self._initial_temperature = [
            node.initial_temperature_c for node in thermal.nodes
        ]
        # Normalized couplings in the same iteration order as the scalar
        # network's dict, so per-node accumulation sums in the same order.
        self._couplings = [
            (self._node_index[a], self._node_index[b], conductance)
            for (a, b), conductance in thermal.couplings.items()
        ]
        self.max_substep_s = thermal.max_substep_s
        # Flat coupling tables and work buffers for the fused thermal kernel
        # (kept even when the kernel is unavailable: they are tiny).
        self._coup_a = np.array([a for a, _, _ in self._couplings], dtype=np.int64)
        self._coup_b = np.array([b for _, b, _ in self._couplings], dtype=np.int64)
        self._coup_c = np.array([c for _, _, c in self._couplings], dtype=float)
        self._dt_scratch = np.empty(num_sessions)
        self._deltas_scratch = np.empty((len(self._node_names), num_sessions))

        self._cpu_throttler = _ThrottlerArrays(template.cpu_throttle, num_sessions)
        self._gpu_throttler = _ThrottlerArrays(template.gpu_throttle, num_sessions)
        self.cpu_throttle = template.cpu_throttle
        self.gpu_throttle = template.gpu_throttle

        ambient = (
            ambient_temperature_c
            if ambient_temperature_c is not None
            else thermal.ambient_temperature_c
        )
        self.ambient_temperature_c = np.broadcast_to(
            np.asarray(ambient, dtype=float), (num_sessions,)
        ).copy()
        self._temperatures = np.zeros((len(self._node_names), num_sessions))
        self._requested_cpu_level = np.zeros(num_sessions, dtype=np.int64)
        self._requested_gpu_level = np.zeros(num_sessions, dtype=np.int64)
        self.cpu_level = np.zeros(num_sessions, dtype=np.int64)
        self.gpu_level = np.zeros(num_sessions, dtype=np.int64)
        self.total_energy_j = np.zeros(num_sessions)
        self.elapsed_ms = np.zeros(num_sessions)
        self.reset()

    # -- lifecycle ----------------------------------------------------------------

    def reset(self, ambient_temperature_c: float | np.ndarray | None = None) -> None:
        """Return every session to a cold, un-throttled, max-frequency state."""
        if ambient_temperature_c is not None:
            self.ambient_temperature_c = np.broadcast_to(
                np.asarray(ambient_temperature_c, dtype=float), (self.num_sessions,)
            ).copy()
        for row, initial in enumerate(self._initial_temperature):
            self._temperatures[row] = (
                initial if initial is not None else self.ambient_temperature_c
            )
        self._cpu_throttler.reset()
        self._gpu_throttler.reset()
        self._requested_cpu_level[:] = self.cpu.max_level
        self._requested_gpu_level[:] = self.gpu.max_level
        self.cpu_level[:] = self.cpu.max_level
        self.gpu_level[:] = self.gpu.max_level
        self.total_energy_j[:] = 0.0
        self.elapsed_ms[:] = 0.0

    # -- observation ---------------------------------------------------------------

    @property
    def cpu_temperature_c(self) -> np.ndarray:
        """Per-session CPU die temperatures (a live view)."""
        return self._temperatures[self._cpu_node]

    @property
    def gpu_temperature_c(self) -> np.ndarray:
        """Per-session GPU die temperatures (a live view)."""
        return self._temperatures[self._gpu_node]

    @property
    def cpu_frequency_khz(self) -> np.ndarray:
        """Effective per-session CPU frequencies."""
        return self.cpu.frequency_khz[self.cpu_level]

    @property
    def gpu_frequency_khz(self) -> np.ndarray:
        """Effective per-session GPU frequencies."""
        return self.gpu.frequency_khz[self.gpu_level]

    @property
    def cpu_throttled(self) -> np.ndarray:
        """Boolean mask of sessions whose CPU cap is engaged."""
        return self._cpu_throttler.throttled

    @property
    def gpu_throttled(self) -> np.ndarray:
        """Boolean mask of sessions whose GPU cap is engaged."""
        return self._gpu_throttler.throttled

    @property
    def throttle_engage_count(self) -> np.ndarray:
        """Per-session total throttle events on either processor."""
        return self._cpu_throttler.engage_count + self._gpu_throttler.engage_count

    def set_ambient(self, ambient_temperature_c: float | np.ndarray) -> None:
        """Change the ambient temperature (scalar broadcasts to the fleet)."""
        self.ambient_temperature_c = np.broadcast_to(
            np.asarray(ambient_temperature_c, dtype=float), (self.num_sessions,)
        ).copy()

    # -- checkpointing --------------------------------------------------------------

    def state_dict(self) -> dict:
        """Complete snapshot of the fleet's mutable physical state.

        Captures everything :meth:`execute` reads or mutates — node
        temperatures, throttler hysteresis and engage counts, requested
        and effective levels, energy and elapsed time — so that
        save → load → continue is bit-identical to an uninterrupted run
        at any frame boundary.  Configuration (device model, tables,
        coupling) is not captured; the restoring fleet must be built from
        the same device template with the same session count.
        """
        return {
            "num_sessions": int(self.num_sessions),
            "ambient_temperature_c": self.ambient_temperature_c.copy(),
            "temperatures": self._temperatures.copy(),
            "cpu_throttled": self._cpu_throttler.throttled.copy(),
            "cpu_engage_count": self._cpu_throttler.engage_count.copy(),
            "gpu_throttled": self._gpu_throttler.throttled.copy(),
            "gpu_engage_count": self._gpu_throttler.engage_count.copy(),
            "requested_cpu_level": self._requested_cpu_level.copy(),
            "requested_gpu_level": self._requested_gpu_level.copy(),
            "cpu_level": self.cpu_level.copy(),
            "gpu_level": self.gpu_level.copy(),
            "total_energy_j": self.total_energy_j.copy(),
            "elapsed_ms": self.elapsed_ms.copy(),
        }

    def load_state_dict(self, payload: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into this fleet in place."""
        if int(payload["num_sessions"]) != self.num_sessions:
            raise DeviceError(
                f"snapshot was captured from a {payload['num_sessions']}-session "
                f"fleet but this fleet drives {self.num_sessions} sessions"
            )
        self.ambient_temperature_c = np.array(payload["ambient_temperature_c"], dtype=float)
        self._temperatures[:] = payload["temperatures"]
        self._cpu_throttler.throttled[:] = payload["cpu_throttled"]
        self._cpu_throttler.engage_count[:] = payload["cpu_engage_count"]
        self._gpu_throttler.throttled[:] = payload["gpu_throttled"]
        self._gpu_throttler.engage_count[:] = payload["gpu_engage_count"]
        self._requested_cpu_level[:] = payload["requested_cpu_level"]
        self._requested_gpu_level[:] = payload["requested_gpu_level"]
        self.cpu_level[:] = payload["cpu_level"]
        self.gpu_level[:] = payload["gpu_level"]
        self.total_energy_j[:] = payload["total_energy_j"]
        self.elapsed_ms[:] = payload["elapsed_ms"]

    # -- control --------------------------------------------------------------------

    def request_levels(
        self,
        cpu_levels: int | np.ndarray,
        gpu_levels: int | np.ndarray,
        mask: np.ndarray | None = None,
    ) -> None:
        """Request frequency levels; ``mask`` limits which sessions change."""
        cpu_levels = np.broadcast_to(
            np.asarray(cpu_levels, dtype=np.int64), (self.num_sessions,)
        )
        gpu_levels = np.broadcast_to(
            np.asarray(gpu_levels, dtype=np.int64), (self.num_sessions,)
        )
        if mask is None:
            check_cpu, check_gpu = cpu_levels, gpu_levels
        else:
            check_cpu, check_gpu = cpu_levels[mask], gpu_levels[mask]
        if check_cpu.size and (
            check_cpu.min() < 0 or check_cpu.max() >= self.cpu.num_levels
        ):
            raise DeviceError(
                f"cpu level out of range [0, {self.cpu.num_levels - 1}]"
            )
        if check_gpu.size and (
            check_gpu.min() < 0 or check_gpu.max() >= self.gpu.num_levels
        ):
            raise DeviceError(
                f"gpu level out of range [0, {self.gpu.num_levels - 1}]"
            )
        if mask is None:
            self._requested_cpu_level = cpu_levels.copy()
            self._requested_gpu_level = gpu_levels.copy()
        else:
            self._requested_cpu_level = np.where(
                mask, cpu_levels, self._requested_cpu_level
            )
            self._requested_gpu_level = np.where(
                mask, gpu_levels, self._requested_gpu_level
            )
        self._apply_caps()

    def _apply_caps(self) -> None:
        self.cpu_level = self._cpu_throttler.cap_levels(self._requested_cpu_level)
        self.gpu_level = self._gpu_throttler.cap_levels(self._requested_gpu_level)

    # -- execution --------------------------------------------------------------------

    def advance_thermal(
        self, duration_ms: np.ndarray, cpu_power_w: np.ndarray, gpu_power_w: np.ndarray
    ) -> None:
        """Advance the RC network with per-session durations and powers.

        The scalar network splits a segment into ``min(max_substep_s,
        remaining)`` sub-steps; here each session keeps its own remaining
        time, and sessions that finish early take zero-length sub-steps
        (``T += 0.0``) until the longest-running session completes — the
        sequence of non-zero sub-steps per session is exactly the scalar
        sequence.
        """
        if np.any(duration_ms < 0):
            raise DeviceError("durations must be non-negative")
        power = np.zeros_like(self._temperatures)
        power[self._cpu_node] = cpu_power_w
        power[self._gpu_node] = gpu_power_w
        remaining = duration_ms / 1e3
        kernel = fused_fleet()
        if kernel is not None:
            kernel.fleet_thermal_advance(
                self._temperatures, power, self.ambient_temperature_c,
                self._resistance, self._heat_capacity,
                self._coup_a, self._coup_b, self._coup_c,
                remaining, self.max_substep_s,
                self._dt_scratch, self._deltas_scratch,
            )
            return
        temps = self._temperatures
        while True:
            active = remaining > 1e-12
            if not active.any():
                break
            dt = np.where(active, np.minimum(self.max_substep_s, remaining), 0.0)
            deltas = np.empty_like(temps)
            for row in range(temps.shape[0]):
                to_ambient = (
                    temps[row] - self.ambient_temperature_c
                ) / self._resistance[row]
                coupled = np.zeros(self.num_sessions)
                for node_a, node_b, conductance in self._couplings:
                    if row == node_a:
                        coupled = coupled + conductance * (temps[row] - temps[node_b])
                    elif row == node_b:
                        coupled = coupled + conductance * (temps[row] - temps[node_a])
                net_flow_w = power[row] - to_ambient - coupled
                deltas[row] = net_flow_w / self._heat_capacity[row] * dt
            temps += deltas
            remaining = remaining - dt

    def execute(
        self,
        duration_ms: np.ndarray,
        cpu_utilisation: float | np.ndarray,
        gpu_utilisation: float | np.ndarray,
    ) -> FleetTelemetry:
        """Run every session for its own ``duration_ms`` at current levels.

        The vectorized counterpart of :meth:`EdgeDevice.execute`: powers are
        computed at pre-segment temperatures, the thermal network advances,
        throttlers re-evaluate and the (possibly capped) levels are
        re-applied.
        """
        duration_ms = np.broadcast_to(
            np.asarray(duration_ms, dtype=float), (self.num_sessions,)
        )
        if np.any(duration_ms < 0):
            raise DeviceError("durations must be non-negative")
        cpu_utilisation = np.broadcast_to(
            np.asarray(cpu_utilisation, dtype=float), (self.num_sessions,)
        )
        gpu_utilisation = np.broadcast_to(
            np.asarray(gpu_utilisation, dtype=float), (self.num_sessions,)
        )
        cpu_power = self.cpu.power_w(
            self.cpu_level, cpu_utilisation, self.cpu_temperature_c
        )
        gpu_power = self.gpu.power_w(
            self.gpu_level, gpu_utilisation, self.gpu_temperature_c
        )
        self.advance_thermal(duration_ms, cpu_power, gpu_power)

        cpu_throttled = self._cpu_throttler.update(self.cpu_temperature_c)
        gpu_throttled = self._gpu_throttler.update(self.gpu_temperature_c)
        self._apply_caps()

        energy = (cpu_power + gpu_power) * (duration_ms / 1e3)
        self.total_energy_j += energy
        self.elapsed_ms += duration_ms
        return FleetTelemetry(
            cpu_temperature_c=self.cpu_temperature_c.copy(),
            gpu_temperature_c=self.gpu_temperature_c.copy(),
            cpu_level=self.cpu_level.copy(),
            gpu_level=self.gpu_level.copy(),
            cpu_power_w=cpu_power,
            gpu_power_w=gpu_power,
            energy_j=energy,
            cpu_throttled=cpu_throttled,
            gpu_throttled=gpu_throttled,
            duration_ms=duration_ms.copy(),
        )

    def idle(self, duration_ms: np.ndarray) -> FleetTelemetry:
        """Let the fleet sit near-idle, mirroring :meth:`EdgeDevice.idle`."""
        return self.execute(duration_ms, cpu_utilisation=0.02, gpu_utilisation=0.0)

    # -- misc -------------------------------------------------------------------------

    def session_temperatures(self, session: int) -> dict:
        """Node temperatures of one session keyed by node name (debugging)."""
        return {
            name: float(self._temperatures[row, session])
            for name, row in self._node_index.items()
        }


def fleet_from_sessions(devices: Sequence[EdgeDevice]) -> DeviceFleet:
    """Build a fleet from N identically configured scalar devices.

    Convenience for tests: the first device acts as the template; all
    devices must share its name (the registry guarantees identical
    configuration for equal names).
    """
    if not devices:
        raise DeviceError("need at least one device")
    names = {device.name for device in devices}
    if len(names) != 1:
        raise DeviceError(f"fleet sessions must share one device model, got {names}")
    return DeviceFleet(devices[0], len(devices))
