"""Raspberry Pi 5 device description.

A third evaluation platform class: a passively-cooled maker SBC (BCM2712:
4x Cortex-A76 up to 2.4 GHz, VideoCore VII GPU up to 960 MHz) with no
heatsink in its stock configuration.  Compared with the Jetson Orin Nano
and the Mi 11 Lite it widens the scenario space in two directions:

* a *much weaker GPU* — VideoCore retires detector convolutions an order
  of magnitude slower than the Orin's Ampere at equal clocks, so the CPU
  share of a frame is far larger and the CPU frequency decision matters
  more than on the other boards;
* a *bare-package thermal path* — without a heatsink the SoC's
  junction-to-ambient resistance is in the tens of °C/W, so the thermal
  time constant is short (tens of seconds) and sustained load trips the
  firmware's 85 °C soft limit quickly.

Calibration targets (mirrors the style of the other device descriptions):

* flat-out detector load (GPU ~75 % busy, CPU ~40 % busy at maximum
  operating points) reaches a steady state above the 85 °C trip point, so
  the stock governor eventually throttles;
* one GPU operating point below the maximum the steady state sits around
  70-75 °C — a sustainable near-peak region exists for a controller to
  find;
* thermal time constants of roughly half a minute, so even short episodes
  contain heat-up / throttle / cool-down cycles.
"""

from __future__ import annotations

from repro.hardware.cpu import CpuModel
from repro.hardware.device import EdgeDevice
from repro.hardware.frequency import FrequencyTable
from repro.hardware.gpu import GpuModel
from repro.hardware.power import PowerModel
from repro.hardware.thermal import ThermalNetwork, ThermalNodeConfig, symmetric_couplings
from repro.hardware.throttle import ThrottleConfig

DEVICE_NAME = "raspberry-pi-5"

#: Cortex-A76 cluster operating points (MHz), as exposed by the Pi 5's
#: cpufreq driver.
CPU_FREQUENCIES_MHZ = (1500.0, 1600.0, 1700.0, 1800.0, 2000.0, 2200.0, 2400.0)

#: VideoCore VII (v3d) operating points (MHz).
GPU_FREQUENCIES_MHZ = (300.0, 500.0, 800.0, 960.0)

#: Firmware soft thermal limit (°C); the Pi starts capping clocks here.
TRIP_TEMPERATURE_C = 85.0


def raspberry_pi5(ambient_temperature_c: float = 25.0) -> EdgeDevice:
    """Build a calibrated Raspberry Pi 5 :class:`EdgeDevice`.

    Args:
        ambient_temperature_c: Environment temperature the device starts at
            and cools towards.
    """
    cpu_table = FrequencyTable.from_mhz(
        CPU_FREQUENCIES_MHZ, min_voltage_mv=720.0, max_voltage_mv=1000.0
    )
    gpu_table = FrequencyTable.from_mhz(
        GPU_FREQUENCIES_MHZ, min_voltage_mv=600.0, max_voltage_mv=900.0
    )
    cpu = CpuModel(
        name="Cortex-A76 x4",
        frequency_table=cpu_table,
        power_model=PowerModel(
            max_dynamic_power_w=4.5,
            reference_point=cpu_table.point(cpu_table.max_level),
            idle_power_w=0.25,
            leakage_power_w=0.45,
            leakage_temp_coefficient=0.025,
            leakage_reference_temp_c=50.0,
        ),
        num_cores=4,
    )
    gpu = GpuModel(
        name="VideoCore VII",
        frequency_table=gpu_table,
        power_model=PowerModel(
            max_dynamic_power_w=4.8,
            reference_point=gpu_table.point(gpu_table.max_level),
            idle_power_w=0.25,
            leakage_power_w=0.35,
            leakage_temp_coefficient=0.025,
            leakage_reference_temp_c=50.0,
        ),
        num_cores=128,
    )
    # Bare BCM2712 package without a heatsink: junction-to-ambient
    # resistances in the tens of °C/W and a small thermal mass, giving the
    # ~30 s time constants the board shows in stress tests.
    thermal = ThermalNetwork(
        nodes=(
            ThermalNodeConfig(
                name="cpu",
                heat_capacity_j_per_c=2.0,
                resistance_to_ambient_c_per_w=16.0,
            ),
            ThermalNodeConfig(
                name="gpu",
                heat_capacity_j_per_c=2.2,
                resistance_to_ambient_c_per_w=17.0,
            ),
        ),
        # CPU cluster and VideoCore share the BCM2712 die, so the coupling
        # is stronger than between the Jetson's separate IP blocks.
        couplings=symmetric_couplings([("cpu", "gpu", 0.45)]),
        ambient_temperature_c=ambient_temperature_c,
    )
    return EdgeDevice(
        name=DEVICE_NAME,
        cpu=cpu,
        gpu=gpu,
        thermal=thermal,
        cpu_throttle=ThrottleConfig(
            trip_temperature_c=TRIP_TEMPERATURE_C,
            hysteresis_c=10.0,
            throttled_level=1,
        ),
        gpu_throttle=ThrottleConfig(
            trip_temperature_c=TRIP_TEMPERATURE_C,
            hysteresis_c=10.0,
            throttled_level=0,
        ),
    )
