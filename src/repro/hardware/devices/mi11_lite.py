"""Xiaomi Mi 11 Lite device description.

The paper's second evaluation platform: a Snapdragon 780G with a Kryo 670
octa-core CPU (1×2.4 GHz + 3×2.22 GHz + 4×1.9 GHz) and an Adreno 642 GPU,
inside a slim, fan-less phone chassis.

Modelling decisions:

* The three CPU clusters are collapsed into a single aggregate frequency
  domain — the granularity at which zTT and Lotus act — whose top operating
  point corresponds to the prime core's 2.4 GHz.
* The temperature reported by the phone's thermal framework (and plotted in
  the paper's Fig. 6, which spans roughly 28-40 °C) behaves like a skin /
  battery-proxy sensor, so the thermal network uses larger heat capacities
  and a low, ≈40 °C trip point rather than die-level values.
* The phone is much slower on detector workloads than the Jetson; the
  per-device compute efficiency that captures this lives in
  :mod:`repro.detection.latency`.
"""

from __future__ import annotations

from repro.hardware.cpu import CpuModel
from repro.hardware.device import EdgeDevice
from repro.hardware.frequency import FrequencyTable
from repro.hardware.gpu import GpuModel
from repro.hardware.power import PowerModel
from repro.hardware.thermal import ThermalNetwork, ThermalNodeConfig, symmetric_couplings
from repro.hardware.throttle import ThrottleConfig

DEVICE_NAME = "mi11-lite"

#: Kryo 670 aggregate operating points (MHz), 8 levels.
CPU_FREQUENCIES_MHZ = (
    300.0,
    691.2,
    940.8,
    1228.8,
    1516.8,
    1804.8,
    2092.8,
    2419.2,
)

#: Adreno 642 operating points (MHz), 7 levels.
GPU_FREQUENCIES_MHZ = (315.0, 401.0, 490.0, 587.0, 676.0, 738.0, 840.0)

#: Skin-temperature-proxy trip point (°C) — phones throttle long before the
#: die limit to keep the case comfortable to hold.
TRIP_TEMPERATURE_C = 43.0


def mi11_lite(ambient_temperature_c: float = 25.0) -> EdgeDevice:
    """Build a calibrated Mi 11 Lite :class:`EdgeDevice`.

    Args:
        ambient_temperature_c: Environment temperature the device starts at
            and cools towards.
    """
    cpu_table = FrequencyTable.from_mhz(
        CPU_FREQUENCIES_MHZ, min_voltage_mv=550.0, max_voltage_mv=950.0
    )
    gpu_table = FrequencyTable.from_mhz(
        GPU_FREQUENCIES_MHZ, min_voltage_mv=550.0, max_voltage_mv=900.0
    )
    cpu = CpuModel(
        name="Kryo 670 octa-core",
        frequency_table=cpu_table,
        power_model=PowerModel(
            max_dynamic_power_w=5.0,
            reference_point=cpu_table.point(cpu_table.max_level),
            idle_power_w=0.2,
            leakage_power_w=0.2,
            leakage_temp_coefficient=0.03,
            leakage_reference_temp_c=35.0,
        ),
        num_cores=8,
    )
    gpu = GpuModel(
        name="Adreno 642",
        frequency_table=gpu_table,
        power_model=PowerModel(
            max_dynamic_power_w=9.0,
            reference_point=gpu_table.point(gpu_table.max_level),
            idle_power_w=0.2,
            leakage_power_w=0.25,
            leakage_temp_coefficient=0.03,
            leakage_reference_temp_c=35.0,
        ),
        num_cores=512,
    )
    thermal = ThermalNetwork(
        nodes=(
            ThermalNodeConfig(
                name="cpu",
                heat_capacity_j_per_c=22.0,
                resistance_to_ambient_c_per_w=3.5,
            ),
            ThermalNodeConfig(
                name="gpu",
                heat_capacity_j_per_c=25.0,
                resistance_to_ambient_c_per_w=4.0,
            ),
        ),
        couplings=symmetric_couplings([("cpu", "gpu", 0.3)]),
        ambient_temperature_c=ambient_temperature_c,
    )
    return EdgeDevice(
        name=DEVICE_NAME,
        cpu=cpu,
        gpu=gpu,
        thermal=thermal,
        cpu_throttle=ThrottleConfig(
            trip_temperature_c=TRIP_TEMPERATURE_C,
            hysteresis_c=5.0,
            throttled_level=1,
        ),
        gpu_throttle=ThrottleConfig(
            trip_temperature_c=TRIP_TEMPERATURE_C,
            hysteresis_c=5.0,
            throttled_level=0,
        ),
    )
