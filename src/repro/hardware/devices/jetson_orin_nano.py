"""NVIDIA Jetson Orin Nano device description.

The paper's first evaluation platform: a 6-core Cortex-A78AE CPU (up to
1.5 GHz), a 1024-core Ampere GPU (up to 624.75 MHz) and passive cooling.

Calibration targets (see DESIGN.md §5):

* Running a two-stage detector flat out (GPU near 100 % busy at the top
  operating point) pushes the GPU die towards ≈90 °C steady state, above the
  85 °C trip point, so the default governor eventually hits hardware
  throttling — the behaviour visible in the paper's Fig. 4/5 "default"
  traces.
* One or two GPU operating points below the maximum, the steady state sits
  around 70-75 °C, i.e. a learning-based controller has a thermally
  sustainable region close to (but below) peak performance.
* Thermal time constants of roughly a minute, so a 3000-frame episode
  (≈20 minutes of simulated inference) contains several heat-up /
  throttle / cool-down cycles for the default governor.
"""

from __future__ import annotations

from repro.hardware.cpu import CpuModel
from repro.hardware.device import EdgeDevice
from repro.hardware.frequency import FrequencyTable
from repro.hardware.gpu import GpuModel
from repro.hardware.power import PowerModel
from repro.hardware.thermal import ThermalNetwork, ThermalNodeConfig, symmetric_couplings
from repro.hardware.throttle import ThrottleConfig

DEVICE_NAME = "jetson-orin-nano"

#: Cortex-A78AE cluster operating points (MHz), 10 levels.
CPU_FREQUENCIES_MHZ = (
    115.2,
    268.8,
    422.4,
    576.0,
    729.6,
    883.2,
    1036.8,
    1190.4,
    1344.0,
    1510.4,
)

#: Ampere GPU operating points (MHz), 5 levels.
GPU_FREQUENCIES_MHZ = (204.0, 306.0, 408.0, 510.0, 624.75)

#: Hardware thermal trip point used by both the kernel throttler and, by
#: default, the Lotus reward threshold.
TRIP_TEMPERATURE_C = 85.0


def jetson_orin_nano(ambient_temperature_c: float = 25.0) -> EdgeDevice:
    """Build a calibrated Jetson Orin Nano :class:`EdgeDevice`.

    Args:
        ambient_temperature_c: Environment temperature the device starts at
            and cools towards.
    """
    cpu_table = FrequencyTable.from_mhz(
        CPU_FREQUENCIES_MHZ, min_voltage_mv=600.0, max_voltage_mv=1000.0
    )
    gpu_table = FrequencyTable.from_mhz(
        GPU_FREQUENCIES_MHZ, min_voltage_mv=600.0, max_voltage_mv=950.0
    )
    cpu = CpuModel(
        name="Cortex-A78AE x6",
        frequency_table=cpu_table,
        power_model=PowerModel(
            max_dynamic_power_w=4.0,
            reference_point=cpu_table.point(cpu_table.max_level),
            idle_power_w=0.3,
            leakage_power_w=0.5,
            leakage_temp_coefficient=0.02,
            leakage_reference_temp_c=50.0,
        ),
        num_cores=6,
    )
    gpu = GpuModel(
        name="Ampere 1024-core",
        frequency_table=gpu_table,
        power_model=PowerModel(
            max_dynamic_power_w=16.0,
            reference_point=gpu_table.point(gpu_table.max_level),
            idle_power_w=0.4,
            leakage_power_w=0.8,
            leakage_temp_coefficient=0.02,
            leakage_reference_temp_c=50.0,
        ),
        num_cores=1024,
    )
    thermal = ThermalNetwork(
        nodes=(
            ThermalNodeConfig(
                name="cpu",
                heat_capacity_j_per_c=6.0,
                resistance_to_ambient_c_per_w=7.0,
            ),
            ThermalNodeConfig(
                name="gpu",
                heat_capacity_j_per_c=8.0,
                resistance_to_ambient_c_per_w=7.5,
            ),
        ),
        couplings=symmetric_couplings([("cpu", "gpu", 0.15)]),
        ambient_temperature_c=ambient_temperature_c,
    )
    return EdgeDevice(
        name=DEVICE_NAME,
        cpu=cpu,
        gpu=gpu,
        thermal=thermal,
        cpu_throttle=ThrottleConfig(
            trip_temperature_c=TRIP_TEMPERATURE_C,
            hysteresis_c=10.0,
            throttled_level=1,
        ),
        gpu_throttle=ThrottleConfig(
            trip_temperature_c=TRIP_TEMPERATURE_C,
            hysteresis_c=15.0,
            throttled_level=0,
        ),
    )
