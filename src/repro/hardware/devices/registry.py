"""Device registry.

Experiment configurations refer to devices by name; this registry maps those
names to builder functions.  New devices can be registered by downstream
users to evaluate Lotus on their own hardware description.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import ConfigurationError
from repro.hardware.device import EdgeDevice
from repro.hardware.devices.jetson_orin_nano import (
    DEVICE_NAME as JETSON_NAME,
    jetson_orin_nano,
)
from repro.hardware.devices.mi11_lite import DEVICE_NAME as MI11_NAME, mi11_lite
from repro.hardware.devices.raspberry_pi5 import (
    DEVICE_NAME as RPI5_NAME,
    raspberry_pi5,
)

DeviceBuilder = Callable[[float], EdgeDevice]

_REGISTRY: Dict[str, DeviceBuilder] = {
    JETSON_NAME: jetson_orin_nano,
    MI11_NAME: mi11_lite,
    RPI5_NAME: raspberry_pi5,
}


def register_device(name: str, builder: DeviceBuilder, *, overwrite: bool = False) -> None:
    """Register a new device builder under ``name``.

    Args:
        name: Registry key, e.g. ``"my-custom-board"``.
        builder: Callable taking the ambient temperature (°C) and returning
            an :class:`~repro.hardware.device.EdgeDevice`.
        overwrite: Allow replacing an existing entry.
    """
    if not name:
        raise ConfigurationError("device name must be non-empty")
    if name in _REGISTRY and not overwrite:
        raise ConfigurationError(f"device {name!r} is already registered")
    _REGISTRY[name] = builder


def available_devices() -> tuple[str, ...]:
    """Names of all registered devices."""
    return tuple(sorted(_REGISTRY))


def build_device(name: str, ambient_temperature_c: float = 25.0) -> EdgeDevice:
    """Build a registered device by name."""
    try:
        builder = _REGISTRY[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown device {name!r}; available: {available_devices()}"
        ) from exc
    return builder(ambient_temperature_c)
