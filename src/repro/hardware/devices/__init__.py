"""Calibrated device descriptions used in the paper's evaluation."""

from repro.hardware.devices.jetson_orin_nano import jetson_orin_nano
from repro.hardware.devices.mi11_lite import mi11_lite
from repro.hardware.devices.raspberry_pi5 import raspberry_pi5
from repro.hardware.devices.registry import available_devices, build_device

__all__ = [
    "jetson_orin_nano",
    "mi11_lite",
    "raspberry_pi5",
    "available_devices",
    "build_device",
]
