"""CPU cluster model.

A :class:`CpuModel` is a frequency table plus a power model plus the current
frequency level.  Multi-cluster phones are modelled as a single aggregate
frequency domain — the granularity at which Lotus and zTT act — with the
core count only affecting the power calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FrequencyError
from repro.hardware.frequency import FrequencyTable, OperatingPoint
from repro.hardware.power import PowerModel


@dataclass
class CpuModel:
    """Simulated CPU frequency domain.

    Attributes:
        name: Human-readable description (e.g. ``"Cortex-A78AE x6"``).
        frequency_table: Available operating points.
        power_model: Power model calibrated for the whole cluster.
        num_cores: Number of cores; informational and used by utilisation
            heuristics in the governors.
        level: Current frequency level (index into ``frequency_table``).
    """

    name: str
    frequency_table: FrequencyTable
    power_model: PowerModel
    num_cores: int = 4
    level: int = field(default=0)

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise FrequencyError("num_cores must be positive")
        self.level = self.frequency_table.validate_level(self.level)

    # -- frequency control -------------------------------------------------------

    @property
    def num_levels(self) -> int:
        """Number of selectable frequency levels."""
        return self.frequency_table.num_levels

    @property
    def max_level(self) -> int:
        """Highest selectable frequency level."""
        return self.frequency_table.max_level

    @property
    def operating_point(self) -> OperatingPoint:
        """Current operating point."""
        return self.frequency_table.point(self.level)

    @property
    def frequency_khz(self) -> float:
        """Current frequency in kHz."""
        return self.operating_point.frequency_khz

    @property
    def relative_speed(self) -> float:
        """Current frequency as a fraction of the maximum frequency."""
        return self.frequency_table.relative_speed(self.level)

    def set_level(self, level: int) -> None:
        """Set the frequency level, validating the index."""
        self.level = self.frequency_table.validate_level(level)

    def set_max(self) -> None:
        """Jump to the highest operating point (performance governor)."""
        self.level = self.frequency_table.max_level

    def set_min(self) -> None:
        """Jump to the lowest operating point (powersave governor)."""
        self.level = 0

    # -- power ---------------------------------------------------------------------

    def power_w(self, utilisation: float, temperature_c: float) -> float:
        """Power (W) drawn at the current level for the given utilisation."""
        return self.power_model.total_power_w(
            self.operating_point, utilisation, temperature_c
        )
