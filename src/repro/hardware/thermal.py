"""Lumped RC thermal network.

Edge SoCs without active cooling are well approximated by a small lumped
thermal network: each heat source (CPU cluster, GPU) is a node with a heat
capacity, a thermal resistance to ambient, and coupling conductances to the
other nodes (they share the same die, heat spreader and chassis).  The node
temperature follows

    C_i * dT_i/dt = P_i - (T_i - T_amb) / R_i - sum_j G_ij * (T_i - T_j)

which this module integrates with explicit sub-stepping so that arbitrarily
long inference segments can be advanced without numerical instability.

This is the "environment physics" that the Lotus agent never sees directly;
it only observes the resulting temperatures through the simulated sysfs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple

from repro.errors import ConfigurationError, ThermalError
from repro.units import ms_to_seconds


@dataclass(frozen=True)
class ThermalNodeConfig:
    """Configuration of a single node in the thermal network.

    Attributes:
        name: Node identifier, e.g. ``"cpu"`` or ``"gpu"``.
        heat_capacity_j_per_c: Lumped heat capacity in J/°C.  Together with
            the resistance this sets the thermal time constant ``R*C``.
        resistance_to_ambient_c_per_w: Thermal resistance from the node to
            the ambient in °C/W.  The steady-state temperature rise for a
            constant power ``P`` is ``P * R``.
        initial_temperature_c: Temperature the node starts at; ``None`` means
            "start at ambient".
    """

    name: str
    heat_capacity_j_per_c: float
    resistance_to_ambient_c_per_w: float
    initial_temperature_c: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("thermal node name must be non-empty")
        if self.heat_capacity_j_per_c <= 0:
            raise ConfigurationError("heat capacity must be positive")
        if self.resistance_to_ambient_c_per_w <= 0:
            raise ConfigurationError("thermal resistance must be positive")


@dataclass
class ThermalNetwork:
    """A small explicit-Euler RC thermal network.

    Args:
        nodes: Node configurations, one per heat source.
        couplings: Mapping from ``(node_a, node_b)`` pairs to coupling
            conductances in W/°C.  Couplings are symmetric; each unordered
            pair should appear once.
        ambient_temperature_c: Initial ambient temperature (°C).  Can be
            changed at runtime to model warm/cold environment switches
            (Fig. 7a of the paper).
        max_substep_s: Upper bound on the integration step; longer segments
            are split into smaller sub-steps for stability.
    """

    nodes: Tuple[ThermalNodeConfig, ...]
    couplings: Mapping[Tuple[str, str], float] = field(default_factory=dict)
    ambient_temperature_c: float = 25.0
    max_substep_s: float = 0.05

    def __post_init__(self) -> None:
        self.nodes = tuple(self.nodes)
        if not self.nodes:
            raise ConfigurationError("thermal network requires at least one node")
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate thermal node names: {names}")
        if self.max_substep_s <= 0:
            raise ConfigurationError("max_substep_s must be positive")
        self._index: Dict[str, int] = {name: i for i, name in enumerate(names)}
        normalized: Dict[Tuple[str, str], float] = {}
        for (a, b), conductance in dict(self.couplings).items():
            if a not in self._index or b not in self._index:
                raise ConfigurationError(f"coupling references unknown node: ({a}, {b})")
            if a == b:
                raise ConfigurationError("a node cannot be coupled to itself")
            if conductance < 0:
                raise ConfigurationError("coupling conductance must be non-negative")
            key = tuple(sorted((a, b)))
            normalized[key] = normalized.get(key, 0.0) + conductance
        self.couplings = normalized
        self._temperatures: Dict[str, float] = {}
        self.reset()

    # -- state ------------------------------------------------------------------

    def reset(self, ambient_temperature_c: float | None = None) -> None:
        """Reset node temperatures to their initial values.

        Args:
            ambient_temperature_c: Optionally also change the ambient
                temperature before resetting.
        """
        if ambient_temperature_c is not None:
            self.ambient_temperature_c = ambient_temperature_c
        self._temperatures = {
            node.name: (
                node.initial_temperature_c
                if node.initial_temperature_c is not None
                else self.ambient_temperature_c
            )
            for node in self.nodes
        }

    def set_ambient(self, ambient_temperature_c: float) -> None:
        """Change the ambient temperature (environment change, Fig. 7a)."""
        self.ambient_temperature_c = ambient_temperature_c

    def temperature(self, node_name: str) -> float:
        """Current temperature (°C) of ``node_name``."""
        try:
            return self._temperatures[node_name]
        except KeyError as exc:
            raise ThermalError(f"unknown thermal node {node_name!r}") from exc

    def temperatures(self) -> Dict[str, float]:
        """Copy of all node temperatures keyed by node name."""
        return dict(self._temperatures)

    def set_temperature(self, node_name: str, temperature_c: float) -> None:
        """Force a node temperature (used by tests and warm-start scenarios)."""
        if node_name not in self._temperatures:
            raise ThermalError(f"unknown thermal node {node_name!r}")
        self._temperatures[node_name] = float(temperature_c)

    # -- integration --------------------------------------------------------------

    def advance(self, duration_ms: float, power_w: Mapping[str, float]) -> Dict[str, float]:
        """Advance the network by ``duration_ms`` with constant node powers.

        Args:
            duration_ms: Length of the segment in milliseconds.  Zero-length
                segments are allowed and leave temperatures unchanged.
            power_w: Power injected into each node (W) during the segment.
                Nodes not mentioned receive zero power.

        Returns:
            The node temperatures after the segment.
        """
        if duration_ms < 0:
            raise ThermalError(f"duration must be non-negative, got {duration_ms}")
        for name in power_w:
            if name not in self._index:
                raise ThermalError(f"power specified for unknown node {name!r}")
        total_s = ms_to_seconds(duration_ms)
        if total_s == 0.0:
            return self.temperatures()

        remaining = total_s
        while remaining > 1e-12:
            dt = min(self.max_substep_s, remaining)
            self._euler_step(dt, power_w)
            remaining -= dt
        return self.temperatures()

    def _euler_step(self, dt_s: float, power_w: Mapping[str, float]) -> None:
        """One explicit Euler step of length ``dt_s`` seconds."""
        current = self._temperatures
        deltas: Dict[str, float] = {}
        for node in self.nodes:
            temp = current[node.name]
            injected = power_w.get(node.name, 0.0)
            to_ambient = (temp - self.ambient_temperature_c) / node.resistance_to_ambient_c_per_w
            coupled = 0.0
            for (a, b), conductance in self.couplings.items():
                if node.name == a:
                    coupled += conductance * (temp - current[b])
                elif node.name == b:
                    coupled += conductance * (temp - current[a])
            net_flow_w = injected - to_ambient - coupled
            deltas[node.name] = net_flow_w / node.heat_capacity_j_per_c * dt_s
        for name, delta in deltas.items():
            current[name] += delta

    # -- analysis helpers -----------------------------------------------------------

    def steady_state(self, power_w: Mapping[str, float]) -> Dict[str, float]:
        """Approximate steady-state temperatures for constant node powers.

        Iterates the coupled balance equations to convergence.  Useful for
        calibrating device descriptions and in tests: the throttling
        threshold of a device should sit between the steady state of the
        sustainable operating point and the steady state of the maximum one.
        """
        temps = {node.name: self.ambient_temperature_c for node in self.nodes}
        for _ in range(200):
            max_change = 0.0
            for node in self.nodes:
                conductance_sum = 1.0 / node.resistance_to_ambient_c_per_w
                weighted = self.ambient_temperature_c / node.resistance_to_ambient_c_per_w
                for (a, b), conductance in self.couplings.items():
                    other = None
                    if node.name == a:
                        other = b
                    elif node.name == b:
                        other = a
                    if other is not None:
                        conductance_sum += conductance
                        weighted += conductance * temps[other]
                new_temp = (power_w.get(node.name, 0.0) + weighted) / conductance_sum
                max_change = max(max_change, abs(new_temp - temps[node.name]))
                temps[node.name] = new_temp
            if max_change < 1e-9:
                break
        return temps

    @property
    def node_names(self) -> Tuple[str, ...]:
        """Names of the nodes in declaration order."""
        return tuple(node.name for node in self.nodes)


def symmetric_couplings(pairs: Iterable[Tuple[str, str, float]]) -> Dict[Tuple[str, str], float]:
    """Build a coupling mapping from ``(node_a, node_b, conductance)`` triples."""
    return {(a, b): g for a, b, g in pairs}
