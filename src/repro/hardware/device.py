"""The composite edge device.

:class:`EdgeDevice` wires together the CPU model, GPU model, RC thermal
network and hardware throttlers.  It is the object the simulation
environment drives: the environment requests frequency levels (on behalf of
a governor or of the Lotus agent), tells the device to "execute" for some
duration with given CPU/GPU utilisations, and reads back temperatures,
effective frequencies, power and energy — exactly the quantities a real
controller reads from sysfs.

The device enforces hardware thermal throttling on top of whatever levels
the controller requests, mirroring the fact that a userspace governor cannot
override the kernel's thermal trip points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import DeviceError
from repro.hardware.cpu import CpuModel
from repro.hardware.gpu import GpuModel
from repro.hardware.thermal import ThermalNetwork
from repro.hardware.throttle import ThermalThrottler, ThrottleConfig
from repro.units import joules

CPU_NODE = "cpu"
GPU_NODE = "gpu"


@dataclass(frozen=True)
class DeviceTelemetry:
    """Snapshot of device state returned after each executed segment.

    Attributes:
        cpu_temperature_c: CPU die temperature at the end of the segment.
        gpu_temperature_c: GPU die temperature at the end of the segment.
        cpu_level: Effective CPU frequency level during the segment (after
            any throttle cap).
        gpu_level: Effective GPU frequency level during the segment.
        cpu_frequency_khz: Effective CPU frequency.
        gpu_frequency_khz: Effective GPU frequency.
        cpu_power_w: Average CPU power during the segment.
        gpu_power_w: Average GPU power during the segment.
        energy_j: Energy consumed in the segment.
        cpu_throttled: Whether the CPU was throttled during the segment.
        gpu_throttled: Whether the GPU was throttled during the segment.
        duration_ms: Segment duration.
    """

    cpu_temperature_c: float
    gpu_temperature_c: float
    cpu_level: int
    gpu_level: int
    cpu_frequency_khz: float
    gpu_frequency_khz: float
    cpu_power_w: float
    gpu_power_w: float
    energy_j: float
    cpu_throttled: bool
    gpu_throttled: bool
    duration_ms: float

    @property
    def max_temperature_c(self) -> float:
        """Hotter of the two dies; handy for plotting a single curve."""
        return max(self.cpu_temperature_c, self.gpu_temperature_c)

    @property
    def mean_temperature_c(self) -> float:
        """Average of CPU and GPU temperature, as plotted in the paper."""
        return 0.5 * (self.cpu_temperature_c + self.gpu_temperature_c)

    @property
    def any_throttled(self) -> bool:
        """Whether either processor was throttled."""
        return self.cpu_throttled or self.gpu_throttled


@dataclass
class EdgeDevice:
    """Simulated edge device (SoC + thermal behaviour).

    Attributes:
        name: Device name, e.g. ``"jetson-orin-nano"``.
        cpu: CPU frequency domain model.
        gpu: GPU frequency domain model.
        thermal: RC thermal network with at least ``cpu`` and ``gpu`` nodes.
        cpu_throttle: Hardware throttle configuration for the CPU.
        gpu_throttle: Hardware throttle configuration for the GPU.
    """

    name: str
    cpu: CpuModel
    gpu: GpuModel
    thermal: ThermalNetwork
    cpu_throttle: ThrottleConfig
    gpu_throttle: ThrottleConfig
    _cpu_throttler: ThermalThrottler = field(init=False, repr=False)
    _gpu_throttler: ThermalThrottler = field(init=False, repr=False)
    _requested_cpu_level: int = field(init=False, repr=False)
    _requested_gpu_level: int = field(init=False, repr=False)
    _total_energy_j: float = field(init=False, default=0.0, repr=False)
    _elapsed_ms: float = field(init=False, default=0.0, repr=False)

    def __post_init__(self) -> None:
        for node in (CPU_NODE, GPU_NODE):
            if node not in self.thermal.node_names:
                raise DeviceError(
                    f"thermal network must contain a {node!r} node, "
                    f"found {self.thermal.node_names}"
                )
        self._cpu_throttler = ThermalThrottler(self.cpu_throttle)
        self._gpu_throttler = ThermalThrottler(self.gpu_throttle)
        self._requested_cpu_level = self.cpu.level
        self._requested_gpu_level = self.gpu.level

    # -- lifecycle ----------------------------------------------------------------

    def reset(self, ambient_temperature_c: float | None = None) -> None:
        """Return the device to a cold, un-throttled state.

        Args:
            ambient_temperature_c: Optionally change the ambient temperature
                the device cools towards.
        """
        self.thermal.reset(ambient_temperature_c)
        self._cpu_throttler.reset()
        self._gpu_throttler.reset()
        self.cpu.set_max()
        self.gpu.set_max()
        self._requested_cpu_level = self.cpu.level
        self._requested_gpu_level = self.gpu.level
        self._total_energy_j = 0.0
        self._elapsed_ms = 0.0

    # -- observation ---------------------------------------------------------------

    @property
    def cpu_temperature_c(self) -> float:
        """Current CPU die temperature."""
        return self.thermal.temperature(CPU_NODE)

    @property
    def gpu_temperature_c(self) -> float:
        """Current GPU die temperature."""
        return self.thermal.temperature(GPU_NODE)

    @property
    def ambient_temperature_c(self) -> float:
        """Current ambient temperature."""
        return self.thermal.ambient_temperature_c

    @property
    def cpu_level(self) -> int:
        """Effective CPU frequency level (after throttle caps)."""
        return self.cpu.level

    @property
    def gpu_level(self) -> int:
        """Effective GPU frequency level (after throttle caps)."""
        return self.gpu.level

    @property
    def requested_cpu_level(self) -> int:
        """CPU level last requested by the controller (before caps)."""
        return self._requested_cpu_level

    @property
    def requested_gpu_level(self) -> int:
        """GPU level last requested by the controller (before caps)."""
        return self._requested_gpu_level

    @property
    def cpu_throttled(self) -> bool:
        """Whether the CPU throttle cap is currently engaged."""
        return self._cpu_throttler.is_throttled

    @property
    def gpu_throttled(self) -> bool:
        """Whether the GPU throttle cap is currently engaged."""
        return self._gpu_throttler.is_throttled

    @property
    def throttle_engage_count(self) -> int:
        """Total number of throttle events on either processor."""
        return self._cpu_throttler.engage_count + self._gpu_throttler.engage_count

    @property
    def total_energy_j(self) -> float:
        """Energy consumed since the last reset (J)."""
        return self._total_energy_j

    @property
    def elapsed_ms(self) -> float:
        """Simulated wall-clock time executed since the last reset (ms)."""
        return self._elapsed_ms

    @property
    def num_actions(self) -> int:
        """Size of the joint CPU x GPU frequency action space (M*N)."""
        return self.cpu.num_levels * self.gpu.num_levels

    def set_ambient(self, ambient_temperature_c: float) -> None:
        """Change the environment temperature around the device."""
        self.thermal.set_ambient(ambient_temperature_c)

    # -- control --------------------------------------------------------------------

    def request_levels(self, cpu_level: int, gpu_level: int) -> None:
        """Request CPU and GPU frequency levels.

        The request is remembered and re-applied whenever the throttle state
        changes; the *effective* level is the requested level capped by the
        hardware throttler, exactly like a userspace governor writing
        ``scaling_setspeed`` on a thermally managed device.
        """
        self._requested_cpu_level = self.cpu.frequency_table.validate_level(cpu_level)
        self._requested_gpu_level = self.gpu.frequency_table.validate_level(gpu_level)
        self._apply_caps()

    def _apply_caps(self) -> None:
        self.cpu.set_level(self._cpu_throttler.cap_level(self._requested_cpu_level))
        self.gpu.set_level(self._gpu_throttler.cap_level(self._requested_gpu_level))

    # -- execution --------------------------------------------------------------------

    def execute(
        self,
        duration_ms: float,
        cpu_utilisation: float,
        gpu_utilisation: float,
    ) -> DeviceTelemetry:
        """Run the device for ``duration_ms`` at the current frequency levels.

        The thermal network is advanced with the power implied by the current
        operating points and the given utilisations, after which the
        throttlers re-evaluate their trip conditions and the (possibly
        capped) frequency levels are re-applied for the next segment.

        Returns:
            A :class:`DeviceTelemetry` snapshot describing the segment.
        """
        if duration_ms < 0:
            raise DeviceError(f"duration must be non-negative, got {duration_ms}")
        cpu_power = self.cpu.power_w(cpu_utilisation, self.cpu_temperature_c)
        gpu_power = self.gpu.power_w(gpu_utilisation, self.gpu_temperature_c)
        self.thermal.advance(duration_ms, {CPU_NODE: cpu_power, GPU_NODE: gpu_power})

        cpu_throttled = self._cpu_throttler.update(self.cpu_temperature_c)
        gpu_throttled = self._gpu_throttler.update(self.gpu_temperature_c)
        self._apply_caps()

        energy = joules(cpu_power + gpu_power, duration_ms)
        self._total_energy_j += energy
        self._elapsed_ms += duration_ms
        return DeviceTelemetry(
            cpu_temperature_c=self.cpu_temperature_c,
            gpu_temperature_c=self.gpu_temperature_c,
            cpu_level=self.cpu.level,
            gpu_level=self.gpu.level,
            cpu_frequency_khz=self.cpu.frequency_khz,
            gpu_frequency_khz=self.gpu.frequency_khz,
            cpu_power_w=cpu_power,
            gpu_power_w=gpu_power,
            energy_j=energy,
            cpu_throttled=cpu_throttled,
            gpu_throttled=gpu_throttled,
            duration_ms=duration_ms,
        )

    def idle(self, duration_ms: float) -> DeviceTelemetry:
        """Let the device sit idle (near-zero utilisation) for a while."""
        return self.execute(duration_ms, cpu_utilisation=0.02, gpu_utilisation=0.0)

    # -- misc -------------------------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """Dictionary snapshot of the observable state (for logging)."""
        return {
            "cpu_temperature_c": self.cpu_temperature_c,
            "gpu_temperature_c": self.gpu_temperature_c,
            "cpu_level": float(self.cpu.level),
            "gpu_level": float(self.gpu.level),
            "cpu_frequency_khz": self.cpu.frequency_khz,
            "gpu_frequency_khz": self.gpu.frequency_khz,
            "ambient_temperature_c": self.ambient_temperature_c,
            "total_energy_j": self._total_energy_j,
        }
