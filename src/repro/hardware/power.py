"""Processor power model.

The power drawn by a CMOS processor is modelled as the sum of

* **dynamic power** ``P_dyn = C_eff * V^2 * f * utilisation`` — switching
  power, proportional to the effective switched capacitance, the square of
  the supply voltage and the clock frequency, scaled by how busy the
  processor is; and
* **leakage power** ``P_leak = P_leak0 * exp(k * (T - T_ref))`` — static
  power that grows exponentially with die temperature, which is what makes
  thermal runaway possible and thermal management necessary.

The constants are calibrated per device in :mod:`repro.hardware.devices` so
that the sustained-power / throttling behaviour of the Jetson Orin Nano and
the Mi 11 Lite is qualitatively reproduced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.frequency import OperatingPoint


@dataclass(frozen=True)
class PowerModel:
    """Dynamic + leakage power model for one processor.

    Attributes:
        max_dynamic_power_w: Dynamic power (W) at the reference operating
            point with 100 % utilisation.  The effective capacitance is
            derived from this so that device descriptions can be written in
            terms of an easily measurable quantity ("the GPU burns ~8 W flat
            out") instead of farads.
        reference_point: Operating point at which ``max_dynamic_power_w`` is
            reached.
        idle_power_w: Constant baseline power (W) drawn even when idle at the
            lowest operating point (clock tree, RAM refresh, rails).
        leakage_power_w: Leakage power (W) at ``leakage_reference_temp_c``.
        leakage_temp_coefficient: Exponential temperature coefficient for the
            leakage term (per °C).  Typical silicon values are 0.01-0.03.
        leakage_reference_temp_c: Temperature at which ``leakage_power_w`` is
            specified.
    """

    max_dynamic_power_w: float
    reference_point: OperatingPoint
    idle_power_w: float = 0.2
    leakage_power_w: float = 0.3
    leakage_temp_coefficient: float = 0.02
    leakage_reference_temp_c: float = 50.0

    def __post_init__(self) -> None:
        if self.max_dynamic_power_w <= 0:
            raise ConfigurationError("max_dynamic_power_w must be positive")
        if self.idle_power_w < 0 or self.leakage_power_w < 0:
            raise ConfigurationError("idle and leakage power must be non-negative")
        if self.leakage_temp_coefficient < 0:
            raise ConfigurationError("leakage_temp_coefficient must be non-negative")

    # -- derived constants ----------------------------------------------------

    @property
    def effective_capacitance(self) -> float:
        """Effective switched capacitance implied by the reference point.

        Units are chosen so that ``C * V_mv^2 * f_khz`` yields watts when the
        reference point reproduces ``max_dynamic_power_w``.
        """
        ref = self.reference_point
        return self.max_dynamic_power_w / (ref.voltage_mv**2 * ref.frequency_khz)

    # -- power queries ----------------------------------------------------------

    def dynamic_power_w(self, point: OperatingPoint, utilisation: float) -> float:
        """Dynamic power (W) at ``point`` for a given utilisation in [0, 1]."""
        utilisation = min(max(utilisation, 0.0), 1.0)
        return (
            self.effective_capacitance
            * point.voltage_mv**2
            * point.frequency_khz
            * utilisation
        )

    def leakage_power_w_at(self, temperature_c: float) -> float:
        """Leakage power (W) at the given die temperature."""
        exponent = self.leakage_temp_coefficient * (
            temperature_c - self.leakage_reference_temp_c
        )
        # Clamp the exponent so a numerically diverging thermal experiment
        # cannot overflow ``exp``; beyond ~150 degrees of excursion the model
        # is meaningless anyway.
        exponent = min(exponent, 4.0)
        return self.leakage_power_w * math.exp(exponent)

    def total_power_w(
        self,
        point: OperatingPoint,
        utilisation: float,
        temperature_c: float,
    ) -> float:
        """Total power (W): idle + dynamic + temperature-dependent leakage."""
        return (
            self.idle_power_w
            + self.dynamic_power_w(point, utilisation)
            + self.leakage_power_w_at(temperature_c)
        )
