"""Simulated sysfs interface.

The paper's implementation reads temperatures and frequencies, and writes
frequency targets, through ``/sys`` nodes on the Jetson's Linux kernel and
the Mi 11 Lite's Android kernel.  To keep the reproduction faithful to that
interface — and to make it trivial to port a controller written against this
simulator to a real board — :class:`SysFs` exposes the simulated device as a
small virtual file tree with string read/write semantics.

Paths follow the real layout:

* ``/sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq`` (kHz, read)
* ``/sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed`` (kHz, write)
* ``/sys/devices/system/cpu/cpu0/cpufreq/scaling_available_frequencies``
* ``/sys/class/devfreq/gpu/cur_freq`` / ``target_freq`` (Hz, like devfreq)
* ``/sys/class/thermal/thermal_zone0/temp`` (milli-°C, CPU zone)
* ``/sys/class/thermal/thermal_zone1/temp`` (milli-°C, GPU zone)
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import DeviceError
from repro.hardware.device import EdgeDevice
from repro.units import celsius_to_millicelsius, khz_to_hz

CPU_CUR_FREQ = "/sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq"
CPU_SETSPEED = "/sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed"
CPU_AVAILABLE_FREQS = "/sys/devices/system/cpu/cpu0/cpufreq/scaling_available_frequencies"
GPU_CUR_FREQ = "/sys/class/devfreq/gpu/cur_freq"
GPU_TARGET_FREQ = "/sys/class/devfreq/gpu/target_freq"
GPU_AVAILABLE_FREQS = "/sys/class/devfreq/gpu/available_frequencies"
CPU_THERMAL_ZONE = "/sys/class/thermal/thermal_zone0/temp"
GPU_THERMAL_ZONE = "/sys/class/thermal/thermal_zone1/temp"


class SysFs:
    """String-in/string-out view of an :class:`EdgeDevice`.

    Reads return the same textual formats the kernel uses (integers in kHz,
    Hz or milli-degrees); writes accept the corresponding formats and map to
    frequency-level requests on the underlying device.  Writing a frequency
    that is not an exact operating point selects the nearest one, matching
    the behaviour of the ``userspace`` governor.
    """

    def __init__(self, device: EdgeDevice):
        self._device = device
        self._readers: Dict[str, Callable[[], str]] = {
            CPU_CUR_FREQ: lambda: str(int(device.cpu.frequency_khz)),
            CPU_AVAILABLE_FREQS: lambda: " ".join(
                str(int(f)) for f in device.cpu.frequency_table.frequencies_khz
            ),
            GPU_CUR_FREQ: lambda: str(int(khz_to_hz(device.gpu.frequency_khz))),
            GPU_AVAILABLE_FREQS: lambda: " ".join(
                str(int(khz_to_hz(f)))
                for f in device.gpu.frequency_table.frequencies_khz
            ),
            CPU_THERMAL_ZONE: lambda: str(
                int(celsius_to_millicelsius(device.cpu_temperature_c))
            ),
            GPU_THERMAL_ZONE: lambda: str(
                int(celsius_to_millicelsius(device.gpu_temperature_c))
            ),
        }
        self._writers: Dict[str, Callable[[str], None]] = {
            CPU_SETSPEED: self._write_cpu_setspeed,
            GPU_TARGET_FREQ: self._write_gpu_target,
        }

    # -- filesystem-like API ----------------------------------------------------

    def read(self, path: str) -> str:
        """Read a sysfs node, returning its textual content."""
        try:
            return self._readers[path]()
        except KeyError as exc:
            raise DeviceError(f"unknown or write-only sysfs path: {path}") from exc

    def write(self, path: str, value: str) -> None:
        """Write a sysfs node."""
        try:
            writer = self._writers[path]
        except KeyError as exc:
            raise DeviceError(f"unknown or read-only sysfs path: {path}") from exc
        writer(value)

    def paths(self) -> tuple[str, ...]:
        """All readable and writable paths in the simulated tree."""
        return tuple(sorted(set(self._readers) | set(self._writers)))

    # -- typed convenience wrappers ------------------------------------------------

    def cpu_temperature_c(self) -> float:
        """CPU temperature in °C read through the thermal zone node."""
        return int(self.read(CPU_THERMAL_ZONE)) / 1e3

    def gpu_temperature_c(self) -> float:
        """GPU temperature in °C read through the thermal zone node."""
        return int(self.read(GPU_THERMAL_ZONE)) / 1e3

    def cpu_frequency_khz(self) -> float:
        """Current CPU frequency in kHz."""
        return float(self.read(CPU_CUR_FREQ))

    def gpu_frequency_khz(self) -> float:
        """Current GPU frequency in kHz (converted from the Hz devfreq node)."""
        return float(self.read(GPU_CUR_FREQ)) / 1e3

    def set_cpu_frequency_khz(self, frequency_khz: float) -> None:
        """Request a CPU frequency (kHz), like writing ``scaling_setspeed``."""
        self.write(CPU_SETSPEED, str(int(frequency_khz)))

    def set_gpu_frequency_khz(self, frequency_khz: float) -> None:
        """Request a GPU frequency (kHz), like writing the devfreq target."""
        self.write(GPU_TARGET_FREQ, str(int(khz_to_hz(frequency_khz))))

    # -- writers ----------------------------------------------------------------------

    def _write_cpu_setspeed(self, value: str) -> None:
        frequency_khz = float(value)
        level = self._device.cpu.frequency_table.nearest_level(frequency_khz)
        self._device.request_levels(level, self._device.requested_gpu_level)

    def _write_gpu_target(self, value: str) -> None:
        frequency_hz = float(value)
        level = self._device.gpu.frequency_table.nearest_level(frequency_hz / 1e3)
        self._device.request_levels(self._device.requested_cpu_level, level)
