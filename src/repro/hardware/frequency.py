"""Operating performance points and frequency tables.

Linux exposes the frequencies a CPU cluster or GPU can run at as a discrete,
sorted table of operating performance points (OPPs).  A DVFS governor — and
therefore the Lotus agent, whose action space is the cross product of the
CPU and GPU tables — always selects a *level* (an index into the table)
rather than an arbitrary frequency.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import FrequencyError
from repro.units import khz_to_ghz, khz_to_mhz


@dataclass(frozen=True)
class OperatingPoint:
    """A single frequency/voltage pair.

    Attributes:
        frequency_khz: Clock frequency in kHz (the unit used by cpufreq).
        voltage_mv: Supply voltage in millivolts at this frequency.  Used by
            the power model; dynamic power scales with ``V**2 * f``.
    """

    frequency_khz: float
    voltage_mv: float

    def __post_init__(self) -> None:
        if self.frequency_khz <= 0:
            raise FrequencyError(
                f"operating point frequency must be positive, got {self.frequency_khz}"
            )
        if self.voltage_mv <= 0:
            raise FrequencyError(
                f"operating point voltage must be positive, got {self.voltage_mv}"
            )

    @property
    def frequency_mhz(self) -> float:
        """Frequency in MHz, convenient for printing."""
        return khz_to_mhz(self.frequency_khz)

    @property
    def frequency_ghz(self) -> float:
        """Frequency in GHz, convenient for printing."""
        return khz_to_ghz(self.frequency_khz)


class FrequencyTable:
    """An ordered collection of :class:`OperatingPoint` entries.

    The table is sorted ascending by frequency; *level 0* is the slowest
    point and *level ``len(table) - 1``* the fastest, matching the layout of
    ``scaling_available_frequencies`` on Linux.
    """

    def __init__(self, points: Iterable[OperatingPoint]):
        pts = sorted(points, key=lambda p: p.frequency_khz)
        if not pts:
            raise FrequencyError("a frequency table requires at least one operating point")
        freqs = [p.frequency_khz for p in pts]
        if len(set(freqs)) != len(freqs):
            raise FrequencyError("duplicate frequencies in operating point table")
        self._points: tuple[OperatingPoint, ...] = tuple(pts)
        self._frequencies: tuple[float, ...] = tuple(freqs)

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_mhz(
        cls,
        frequencies_mhz: Sequence[float],
        min_voltage_mv: float = 600.0,
        max_voltage_mv: float = 1000.0,
    ) -> "FrequencyTable":
        """Build a table from frequencies in MHz with linearly scaled voltages.

        Real OPP tables pair higher frequencies with higher voltages.  When a
        detailed voltage table is not available we interpolate linearly
        between ``min_voltage_mv`` (at the slowest point) and
        ``max_voltage_mv`` (at the fastest point), which preserves the
        super-linear power/frequency relationship that makes DVFS useful.
        """
        if not frequencies_mhz:
            raise FrequencyError("frequencies_mhz must not be empty")
        if min_voltage_mv <= 0 or max_voltage_mv < min_voltage_mv:
            raise FrequencyError("voltage range must satisfy 0 < min <= max")
        ordered = sorted(frequencies_mhz)
        lo, hi = ordered[0], ordered[-1]
        span = hi - lo
        points = []
        for f_mhz in ordered:
            if span > 0:
                frac = (f_mhz - lo) / span
            else:
                frac = 1.0
            voltage = min_voltage_mv + frac * (max_voltage_mv - min_voltage_mv)
            points.append(OperatingPoint(frequency_khz=f_mhz * 1e3, voltage_mv=voltage))
        return cls(points)

    # -- basic container protocol ---------------------------------------------

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[OperatingPoint]:
        return iter(self._points)

    def __getitem__(self, level: int) -> OperatingPoint:
        return self.point(level)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        lo = self.min_frequency_khz / 1e3
        hi = self.max_frequency_khz / 1e3
        return f"FrequencyTable({len(self)} levels, {lo:.0f}-{hi:.0f} MHz)"

    # -- level queries ---------------------------------------------------------

    @property
    def num_levels(self) -> int:
        """Number of levels (operating points) in the table."""
        return len(self._points)

    @property
    def max_level(self) -> int:
        """Index of the fastest operating point."""
        return len(self._points) - 1

    @property
    def min_frequency_khz(self) -> float:
        """Frequency of the slowest operating point in kHz."""
        return self._frequencies[0]

    @property
    def max_frequency_khz(self) -> float:
        """Frequency of the fastest operating point in kHz."""
        return self._frequencies[-1]

    @property
    def frequencies_khz(self) -> tuple[float, ...]:
        """All frequencies in ascending order (kHz)."""
        return self._frequencies

    def validate_level(self, level: int) -> int:
        """Return ``level`` if it exists in the table, else raise."""
        if not isinstance(level, (int,)) or isinstance(level, bool):
            raise FrequencyError(f"frequency level must be an integer, got {level!r}")
        if level < 0 or level >= len(self._points):
            raise FrequencyError(
                f"frequency level {level} out of range [0, {len(self._points) - 1}]"
            )
        return level

    def clamp_level(self, level: int) -> int:
        """Clamp an arbitrary integer to a valid level index."""
        return max(0, min(int(level), self.max_level))

    def point(self, level: int) -> OperatingPoint:
        """Return the operating point at ``level``."""
        return self._points[self.validate_level(level)]

    def frequency_khz(self, level: int) -> float:
        """Frequency (kHz) at ``level``."""
        return self.point(level).frequency_khz

    def voltage_mv(self, level: int) -> float:
        """Voltage (mV) at ``level``."""
        return self.point(level).voltage_mv

    def relative_speed(self, level: int) -> float:
        """Frequency at ``level`` as a fraction of the maximum frequency."""
        return self.frequency_khz(level) / self.max_frequency_khz

    # -- frequency -> level lookups --------------------------------------------

    def level_for_frequency(self, frequency_khz: float) -> int:
        """Return the lowest level whose frequency is >= ``frequency_khz``.

        Governors such as ``schedutil`` compute a target frequency from the
        observed utilisation and then pick the smallest operating point that
        satisfies it; this helper mirrors that ``cpufreq_frequency_table``
        lookup.  Targets above the fastest point saturate at the top level.
        """
        if frequency_khz <= 0:
            raise FrequencyError(f"target frequency must be positive, got {frequency_khz}")
        idx = bisect.bisect_left(self._frequencies, frequency_khz)
        return min(idx, self.max_level)

    def nearest_level(self, frequency_khz: float) -> int:
        """Return the level whose frequency is closest to ``frequency_khz``."""
        if frequency_khz <= 0:
            raise FrequencyError(f"target frequency must be positive, got {frequency_khz}")
        best_level = 0
        best_distance = float("inf")
        for level, freq in enumerate(self._frequencies):
            distance = abs(freq - frequency_khz)
            if distance < best_distance:
                best_distance = distance
                best_level = level
        return best_level

    def levels_below(self, level: int) -> tuple[int, ...]:
        """All levels strictly below ``level`` (used by cool-down actions)."""
        self.validate_level(level)
        return tuple(range(level))
