"""Generic DQN learner.

Wraps an online :class:`~repro.rl.slimmable.SlimmableMLP`, a target copy, an
optimizer and the TD-learning update rule.  Both the Lotus agent (which
calls it with alternating widths and two replay buffers) and the zTT
baseline (single width, single buffer) drive this class; it contains no
Lotus-specific logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import AgentError
from repro.rl.network import huber_loss_and_grad
from repro.rl.optimizer import Adam, Optimizer
from repro.rl.replay import Transition
from repro.rl.schedule import Schedule
from repro.rl.slimmable import SlimmableMLP


@dataclass(frozen=True)
class DqnConfig:
    """Hyper-parameters of the DQN update rule.

    Attributes:
        discount: Discount factor gamma for TD targets.
        batch_size: Mini-batch size sampled from the replay buffer.
        target_sync_interval: Number of training steps between target-network
            synchronisations.
        huber_delta: Transition point of the Huber loss.
        max_grad_norm: Global gradient-norm clip (0 disables clipping).
        double_dqn: Use Double-DQN targets (argmax from the online network,
            value from the target network) to curb Q-value overestimation —
            particularly helpful when bootstrapping across the two widths of
            the slimmable Lotus Q-network.
    """

    discount: float = 0.9
    batch_size: int = 32
    target_sync_interval: int = 100
    huber_delta: float = 1.0
    max_grad_norm: float = 5.0
    double_dqn: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.discount < 1.0:
            raise AgentError("discount must lie in [0, 1)")
        if self.batch_size <= 0:
            raise AgentError("batch_size must be positive")
        if self.target_sync_interval <= 0:
            raise AgentError("target_sync_interval must be positive")
        if self.huber_delta <= 0:
            raise AgentError("huber_delta must be positive")
        if self.max_grad_norm < 0:
            raise AgentError("max_grad_norm must be non-negative")


class DqnLearner:
    """Online/target Q-network pair with the DQN update rule."""

    def __init__(
        self,
        network: SlimmableMLP,
        config: DqnConfig | None = None,
        optimizer: Optimizer | None = None,
        learning_rate_schedule: Schedule | None = None,
    ):
        self.network = network
        self.target_network = network.clone()
        self.config = config if config is not None else DqnConfig()
        self.optimizer = optimizer if optimizer is not None else Adam()
        self.learning_rate_schedule = learning_rate_schedule
        self.train_steps = 0

    # -- action selection ----------------------------------------------------------

    def q_values(self, state: np.ndarray, width: float = 1.0) -> np.ndarray:
        """Q-values of all actions in ``state`` at the given width."""
        outputs = self.network.predict(np.asarray(state, dtype=float), width)
        return outputs[0]

    def greedy_action(self, state: np.ndarray, width: float = 1.0) -> int:
        """Index of the highest-valued action in ``state``."""
        return int(np.argmax(self.q_values(state, width)))

    def select_action(
        self,
        state: np.ndarray,
        epsilon: float,
        rng: np.random.Generator,
        width: float = 1.0,
    ) -> int:
        """Epsilon-greedy action selection."""
        if not 0.0 <= epsilon <= 1.0:
            raise AgentError("epsilon must lie in [0, 1]")
        num_actions = self.network.output_dim
        if rng.random() < epsilon:
            return int(rng.integers(num_actions))
        return self.greedy_action(state, width)

    # -- learning ----------------------------------------------------------------------

    def train_batch(self, transitions: Sequence[Transition], width: float = 1.0) -> float:
        """One DQN update on a batch of transitions.

        Args:
            transitions: Batch sampled from a replay buffer.  Transitions may
                carry different ``next_width`` values (e.g. when a shared
                buffer mixes both Lotus decision points); the TD targets are
                computed per width group.
            width: Width at which the *current* states' Q-values are computed
                and trained.

        Returns:
            The Huber TD loss of the batch.
        """
        if not transitions:
            raise AgentError("cannot train on an empty batch")

        states = np.stack([t.state for t in transitions])
        actions = np.array([t.action for t in transitions], dtype=int)
        rewards = np.array([t.reward for t in transitions], dtype=float)
        next_states = np.stack([t.next_state for t in transitions])
        next_widths = np.array([t.next_width for t in transitions], dtype=float)

        max_next_q = np.zeros(len(transitions))
        for next_width in np.unique(next_widths):
            group = next_widths == next_width
            target_q = self.target_network.predict(next_states[group], float(next_width))
            if self.config.double_dqn:
                online_q = self.network.predict(next_states[group], float(next_width))
                best_actions = np.argmax(online_q, axis=1)
                max_next_q[group] = target_q[np.arange(len(best_actions)), best_actions]
            else:
                max_next_q[group] = np.max(target_q, axis=1)
        targets = rewards + self.config.discount * max_next_q

        outputs, cache = self.network.forward(states, width)
        batch_indices = np.arange(len(transitions))
        predictions = outputs[batch_indices, actions]
        loss, grad_predictions = huber_loss_and_grad(
            predictions, targets, self.config.huber_delta
        )

        grad_outputs = np.zeros_like(outputs)
        grad_outputs[batch_indices, actions] = grad_predictions
        weight_grads, bias_grads, weight_masks, bias_masks = self.network.backward(
            cache, grad_outputs
        )
        gradients = []
        masks = []
        for wg, bg, wm, bm in zip(weight_grads, bias_grads, weight_masks, bias_masks):
            gradients.extend([wg, bg])
            masks.extend([wm, bm])
        self._clip_gradients(gradients)

        if self.learning_rate_schedule is not None:
            self.optimizer.set_learning_rate(
                max(1e-6, self.learning_rate_schedule.value(self.train_steps))
            )
        self.optimizer.step(self.network.parameters(), gradients, masks)

        self.train_steps += 1
        if self.train_steps % self.config.target_sync_interval == 0:
            self.sync_target()
        return loss

    def _clip_gradients(self, gradients: Sequence[np.ndarray]) -> None:
        if self.config.max_grad_norm <= 0:
            return
        total = float(np.sqrt(sum(float(np.sum(g**2)) for g in gradients)))
        if total > self.config.max_grad_norm and total > 0:
            scale = self.config.max_grad_norm / total
            for grad in gradients:
                grad *= scale

    def sync_target(self) -> None:
        """Copy the online network's parameters into the target network."""
        self.target_network.set_state(self.network.get_state())
