"""Generic DQN learner.

Wraps an online :class:`~repro.rl.slimmable.SlimmableMLP`, a target copy, an
optimizer and the TD-learning update rule.  Both the Lotus agent (which
calls it with alternating widths and two replay buffers) and the zTT
baseline (single width, single buffer) drive this class; it contains no
Lotus-specific logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.errors import AgentError
from repro.rl.fused import fused_adam
from repro.rl.optimizer import Adam, Optimizer
from repro.rl.replay import Transition, TransitionBatch
from repro.rl.schedule import Schedule
from repro.rl.slimmable import SlimmableMLP


@dataclass(frozen=True)
class DqnConfig:
    """Hyper-parameters of the DQN update rule.

    Attributes:
        discount: Discount factor gamma for TD targets.
        batch_size: Mini-batch size sampled from the replay buffer.
        target_sync_interval: Number of training steps between target-network
            synchronisations.
        huber_delta: Transition point of the Huber loss.
        max_grad_norm: Global gradient-norm clip (0 disables clipping).
        double_dqn: Use Double-DQN targets (argmax from the online network,
            value from the target network) to curb Q-value overestimation —
            particularly helpful when bootstrapping across the two widths of
            the slimmable Lotus Q-network.
    """

    discount: float = 0.9
    batch_size: int = 32
    target_sync_interval: int = 100
    huber_delta: float = 1.0
    max_grad_norm: float = 5.0
    double_dqn: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.discount < 1.0:
            raise AgentError("discount must lie in [0, 1)")
        if self.batch_size <= 0:
            raise AgentError("batch_size must be positive")
        if self.target_sync_interval <= 0:
            raise AgentError("target_sync_interval must be positive")
        if self.huber_delta <= 0:
            raise AgentError("huber_delta must be positive")
        if self.max_grad_norm < 0:
            raise AgentError("max_grad_norm must be non-negative")


class DqnLearner:
    """Online/target Q-network pair with the DQN update rule."""

    def __init__(
        self,
        network: SlimmableMLP,
        config: DqnConfig | None = None,
        optimizer: Optimizer | None = None,
        learning_rate_schedule: Schedule | None = None,
    ):
        self.network = network
        self.target_network = network.clone()
        self.config = config if config is not None else DqnConfig()
        self.optimizer = optimizer if optimizer is not None else Adam()
        self.learning_rate_schedule = learning_rate_schedule
        self.train_steps = 0
        # Co-locate the online and target parameters in one pair buffer
        # (online in the first half, target in the second).  Both halves
        # share the same internal layout, so a zero-copy strided view can
        # stack the two networks' weights layer by layer and both TD
        # bootstrap forwards run as ONE batched matmul per layer.
        self._pair_buffer: np.ndarray | None = None
        if hasattr(network, "rebase"):
            # Rebasing captures raw buffer addresses in this learner's view
            # and kernel-plan caches, so a network may belong to exactly one
            # learner; a second rebase would leave the first learner's
            # caches dangling on the abandoned buffer.
            if getattr(network, "_pair_owner", None) is not None:
                raise AgentError(
                    "network is already owned by another DqnLearner; build a "
                    "fresh network (or clone()) per learner"
                )
            total = network.flat_parameters.size
            self._pair_buffer = np.zeros(2 * total)
            network.rebase(self._pair_buffer[:total])
            self.target_network.rebase(self._pair_buffer[total:])
            network._pair_owner = self
        self._pair_views: Dict[float, List[Tuple[np.ndarray, np.ndarray]]] = {}
        self._pair_scratch: Dict[Tuple[float, int], List[np.ndarray]] = {}
        self._kernel = fused_adam()
        # An optimizer that overrides step_sliced (Adam, Sgd) gets the
        # sliced/flat fast paths; one that only implements the historical
        # masked step() gets padded gradients.
        self._sliced_capable = (
            type(self.optimizer).step_sliced is not Optimizer.step_sliced
        )
        # Scratch buffers reused across train_batch calls, keyed by batch
        # size (agents use one fixed batch size, so this holds one entry);
        # see _scratch_for for the tuple layout.
        self._scratch: Dict[int, tuple] = {}
        # Optimizer regions (active-slice index tuples per parameter) are a
        # pure function of the width; compute them once per width.
        self._regions_cache: Dict[float, List[Tuple[slice, ...]]] = {}
        # Per-width flat gradient buffer with per-layer views, interleaved
        # like the network's flat parameter layout ([w0, b0, w1, b1, ...]);
        # the backward pass writes into the views, clipping runs one dot
        # over the flat buffer, and at full width the optimizer consumes
        # the buffer wholesale (step_flat).
        # See _grad_scratch_for for the tuple layout.
        self._grad_scratch: Dict[float, tuple] = {}
        self._params = network.parameters()

    # -- action selection ----------------------------------------------------------

    def q_values(self, state: np.ndarray, width: float = 1.0) -> np.ndarray:
        """Q-values of all actions in ``state`` at the given width."""
        outputs = self.network.predict(np.asarray(state, dtype=float), width)
        return outputs[0]

    def greedy_action(self, state: np.ndarray, width: float = 1.0) -> int:
        """Index of the highest-valued action in ``state``."""
        return int(np.argmax(self.q_values(state, width)))

    def select_action(
        self,
        state: np.ndarray,
        epsilon: float,
        rng: np.random.Generator,
        width: float = 1.0,
    ) -> int:
        """Epsilon-greedy action selection."""
        if not 0.0 <= epsilon <= 1.0:
            raise AgentError("epsilon must lie in [0, 1]")
        num_actions = self.network.output_dim
        if rng.random() < epsilon:
            return int(rng.integers(num_actions))
        return self.greedy_action(state, width)

    # -- learning ----------------------------------------------------------------------

    def _scratch_for(self, batch_size: int) -> tuple:
        """Reusable per-batch-size buffers.

        Layout: ``(batch_indices, max_next_q, grad_outputs, huber_scratch,
        row_offsets, flat_index, flat_grad_outputs, prediction_scratch,
        huber_addrs)`` — see the construction below for each entry's role.
        """
        scratch = self._scratch.get(batch_size)
        if scratch is None:
            grad_outputs = np.zeros((batch_size, self.network.output_dim))
            max_next_q = np.zeros(batch_size)
            predictions = np.zeros(batch_size)
            huber = (np.zeros(batch_size), np.zeros(batch_size), np.zeros(batch_size))
            error, _abs_error, quadratic = huber
            flat_index = np.zeros(batch_size, dtype=np.intp)
            scratch = (
                np.arange(batch_size),
                max_next_q,
                grad_outputs,
                huber,
                # Flat-index machinery: row offsets into the ravelled
                # (batch, actions) plane, a reusable index buffer, and the
                # ravelled view itself.
                np.arange(batch_size) * self.network.output_dim,
                flat_index,
                grad_outputs.reshape(-1),
                predictions,
                # Fixed buffer addresses for the fused Huber kernels:
                # (predictions, targets==max_next_q, losses, grad,
                #  flat_index, flat grad_outputs plane).
                (
                    predictions.ctypes.data,
                    max_next_q.ctypes.data,
                    quadratic.ctypes.data,
                    error.ctypes.data,
                    flat_index.ctypes.data,
                    grad_outputs.ctypes.data,
                ),
            )
            self._scratch[batch_size] = scratch
        return scratch

    def _huber_scratch(
        self,
        predictions: np.ndarray,
        targets: np.ndarray,
        scratch: Tuple[np.ndarray, np.ndarray, np.ndarray],
    ) -> Tuple[float, np.ndarray]:
        """Huber loss and gradient into reusable buffers.

        Applies the exact operation sequence of
        :func:`~repro.rl.network.huber_loss_and_grad` (same operand pairs,
        same order, so identical values) without allocating per-call
        temporaries.  Returns ``(loss, grad)`` where ``grad`` is one of the
        scratch buffers — consume it before the next call.
        """
        delta = self.config.huber_delta
        error, abs_error, quadratic = scratch
        count = max(predictions.size, 1)
        np.subtract(predictions, targets, out=error)
        np.abs(error, out=abs_error)
        np.minimum(abs_error, delta, out=quadratic)
        abs_error -= quadratic  # now the linear part
        np.multiply(quadratic, quadratic, out=quadratic)
        quadratic *= 0.5
        abs_error *= delta
        quadratic += abs_error  # now the per-element losses
        # mean == add.reduce / count (what np.mean does, minus dispatch).
        loss = float(np.add.reduce(quadratic) / count)
        # clip == minimum(maximum(x, lo), hi): pure selection, no rounding.
        np.maximum(error, -delta, out=error)
        np.minimum(error, delta, out=error)
        error /= count
        return loss, error

    def _regions_for(self, width: float) -> List[Tuple[slice, ...]]:
        """Active-slice index regions per parameter (weights/biases interleaved)."""
        regions = self._regions_cache.get(width)
        if regions is None:
            active = self.network.active_units_for_width(width)
            regions = []
            for layer in range(self.network.num_layers):
                in_active, out_active = active[layer], active[layer + 1]
                regions.append((slice(0, in_active), slice(0, out_active)))
                regions.append((slice(0, out_active),))
            self._regions_cache[width] = regions
        return regions

    def _grad_scratch_for(self, width: float) -> tuple:
        """Flat gradient buffer + per-layer views for ``width``.

        Returns ``(flat, weight_views, bias_views, interleaved, full_width,
        plan)`` where ``interleaved`` matches the parameter order,
        ``full_width`` says whether the layout coincides with the network's
        flat parameter buffer (every unit active), and ``plan`` is the
        optimizer's prepared fused-step plan for these buffers (``None``
        when unsupported).
        """
        scratch = self._grad_scratch.get(width)
        if scratch is None:
            active = self.network.active_units_for_width(width)
            extents = [
                (active[i], active[i + 1]) for i in range(self.network.num_layers)
            ]
            total = sum(ia * oa + oa for ia, oa in extents)
            flat = np.zeros(total)
            weight_views: List[np.ndarray] = []
            bias_views: List[np.ndarray] = []
            interleaved: List[np.ndarray] = []
            offset = 0
            for in_active, out_active in extents:
                w_size = in_active * out_active
                w_view = flat[offset : offset + w_size].reshape(in_active, out_active)
                offset += w_size
                b_view = flat[offset : offset + out_active]
                offset += out_active
                weight_views.append(w_view)
                bias_views.append(b_view)
                interleaved.extend((w_view, b_view))
            full_width = (
                self._pair_buffer is not None
                and total == self.network.flat_parameters.size
            )
            plan = None
            if hasattr(self.optimizer, "plan_step"):
                plan = self.optimizer.plan_step(
                    self._params, interleaved, self._regions_for(width)
                )
            scratch = (flat, weight_views, bias_views, interleaved, full_width, plan)
            self._grad_scratch[width] = scratch
        return scratch

    def _pair_views_for(self, width: float) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Stacked ``(weights, biases)`` views over (online, target) pairs.

        ``weights`` has shape ``(2, in_active, out_active)`` and ``biases``
        ``(2, 1, out_active)``; index 0 is the online network, index 1 the
        target.  Built with stride tricks over the shared pair buffer — no
        copies, and parameter updates are visible immediately.
        """
        views = self._pair_views.get(width)
        if views is None:
            half = self.network.flat_parameters.size * self.network.flat_parameters.itemsize
            views = []
            online = self.network._views_for(width)
            for w, b in online:
                stacked_w = np.lib.stride_tricks.as_strided(
                    w, shape=(2, *w.shape), strides=(half, *w.strides)
                )
                stacked_b = np.lib.stride_tricks.as_strided(
                    b, shape=(2, 1, *b.shape), strides=(half, 0, *b.strides)
                )
                views.append((stacked_w, stacked_b))
            self._pair_views[width] = views
        return views

    def _pair_scratch_for(self, width: float, batch_size: int) -> List[np.ndarray]:
        """Per-layer ``(2, batch, units)`` activation buffers for the pair pass."""
        scratch = self._pair_scratch.get((width, batch_size))
        if scratch is None:
            active = self.network.active_units_for_width(width)
            scratch = [np.empty((2, batch_size, units)) for units in active[1:]]
            self._pair_scratch[(width, batch_size)] = scratch
        return scratch

    def _predict_pair(
        self, x: np.ndarray, width: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate the online AND target networks on ``x`` in one pass.

        Each layer is one stacked matmul over the ``(2, ...)`` weight view —
        both networks' GEMMs in a single call — into reusable activation
        buffers.  Returns ``(online_q, target_q)`` as views into the last
        buffer; consume them before the next pair pass.
        """
        views = self._pair_views_for(width)
        scratch = self._pair_scratch_for(width, x.shape[0])
        last = len(views) - 1
        kernel = self._kernel
        current: np.ndarray = x
        for layer_index, (w, b) in enumerate(views):
            z = scratch[layer_index]
            np.matmul(current, w, out=z)
            if kernel is not None:
                # One fused C pass over both halves: bias add plus (on
                # hidden layers) the ReLU, bit-identical to the ufunc pair.
                kernel.pair_bias_relu(z, b, relu=layer_index != last)
                current = z
            else:
                z += b
                current = z if layer_index == last else np.maximum(z, 0.0, out=z)
        return current[0], current[1]

    def _pair_targets_fused(
        self, x: np.ndarray, width: float, rewards: np.ndarray, out: np.ndarray
    ) -> None:
        """Fused double-DQN TD-target pass (requires the C kernels).

        Runs the stacked pair forward with matmul + fused pair bias/ReLU
        per hidden layer; the final layer's matmul output (bias not yet
        added) feeds straight into the ``pair_q_targets`` kernel, which
        folds in the bias, takes the online argmax with NumPy's exact
        semantics, gathers the target value at that action and writes
        ``(target_q * discount) + rewards`` into ``out`` — the same
        operand pairings as the NumPy sequence, in one pass.
        """
        if not rewards.flags["C_CONTIGUOUS"]:
            # Ring buffers hand out a strided column view of the scalar
            # plane; the kernel wants unit stride.
            rewards = np.ascontiguousarray(rewards)
        views = self._pair_views_for(width)
        scratch = self._pair_scratch_for(width, x.shape[0])
        last = len(views) - 1
        kernel = self._kernel
        current: np.ndarray = x
        for layer_index, (w, b) in enumerate(views):
            z = scratch[layer_index]
            np.matmul(current, w, out=z)
            if layer_index == last:
                kernel.pair_q_targets(z, b, self.config.discount, rewards, out)
            else:
                kernel.pair_bias_relu(z, b, relu=True)
                current = z

    def train_batch(
        self,
        transitions: Union[TransitionBatch, Sequence[Transition]],
        width: float = 1.0,
    ) -> float:
        """One DQN update on a batch of transitions.

        Args:
            transitions: Batch sampled from a replay buffer — either a
                :class:`~repro.rl.replay.TransitionBatch` of column arrays
                (the hot path; what :meth:`ReplayBuffer.sample` returns) or a
                sequence of :class:`Transition` objects (converted on entry).
                Transitions may carry different ``next_width`` values (e.g.
                when a shared buffer mixes both Lotus decision points); the
                TD targets are computed per width group.
            width: Width at which the *current* states' Q-values are computed
                and trained.

        Returns:
            The Huber TD loss of the batch.
        """
        if not isinstance(transitions, TransitionBatch):
            if not transitions:
                raise AgentError("cannot train on an empty batch")
            transitions = TransitionBatch.from_transitions(transitions)
        if len(transitions) == 0:
            raise AgentError("cannot train on an empty batch")

        states = transitions.states
        actions = transitions.actions
        rewards = transitions.rewards
        next_states = transitions.next_states
        next_widths = transitions.next_widths
        batch_size = states.shape[0]
        (
            batch_indices,
            max_next_q,
            grad_outputs,
            huber_scratch,
            row_offsets,
            flat_index,
            flat_grad_outputs,
            prediction_scratch,
            huber_addrs,
        ) = self._scratch_for(batch_size)

        uniform = transitions.uniform_next_width
        if uniform is None:
            first_width = float(next_widths[0])
            if np.all(next_widths == first_width):
                uniform = first_width
        fused_targets = False
        if uniform is not None:
            # Uniform next width (each Lotus buffer bootstraps at one fixed
            # width): a single grouped pass, no per-group index arrays; with
            # the pair buffer in place, the online and target forwards run
            # as one stacked pass.
            if (
                self._pair_buffer is not None
                and self.config.double_dqn
                and self._kernel is not None
            ):
                # Fully fused tail: argmax + gather + discount/reward fold
                # happen inside the C kernel, straight off the last matmul.
                self._pair_targets_fused(next_states, uniform, rewards, max_next_q)
                fused_targets = True
            elif self._pair_buffer is not None and self.config.double_dqn:
                online_q, target_q = self._predict_pair(next_states, uniform)
                best_actions = online_q.argmax(axis=1)
                max_next_q[...] = target_q[batch_indices, best_actions]
            elif self.config.double_dqn:
                target_q = self.target_network.predict(next_states, uniform)
                online_q = self.network.predict(next_states, uniform)
                best_actions = np.argmax(online_q, axis=1)
                max_next_q[...] = target_q[batch_indices, best_actions]
            else:
                target_q = self.target_network.predict(next_states, uniform)
                np.max(target_q, axis=1, out=max_next_q)
        else:
            for next_width in np.unique(next_widths):
                group = next_widths == next_width
                target_q = self.target_network.predict(
                    next_states[group], float(next_width)
                )
                if self.config.double_dqn:
                    online_q = self.network.predict(next_states[group], float(next_width))
                    best_actions = np.argmax(online_q, axis=1)
                    max_next_q[group] = target_q[np.arange(len(best_actions)), best_actions]
                else:
                    max_next_q[group] = np.max(target_q, axis=1)
        # targets = rewards + discount * max_next_q, in place in the scratch
        # (the exact addend pairs of the original expression; the fused
        # kernel already folded them in).
        if not fused_targets:
            max_next_q *= self.config.discount
            max_next_q += rewards
        targets = max_next_q

        if self._pair_buffer is not None:
            outputs, cache = self.network._forward_train(states, width)
        else:
            outputs, cache = self.network.forward(states, width)
        # One shared flat index addresses the taken (row, action) cells for
        # both the prediction gather and the gradient scatter.
        np.add(row_offsets, actions, out=flat_index)
        if self._kernel is not None:
            # One fused C call for the whole Huber tail: gather the taken
            # predictions, elementwise loss/gradient prep, and zero-fill +
            # scatter into the (batch, actions) gradient scratch (addresses
            # precomputed; the pairwise loss mean stays with NumPy).
            self._kernel.q_huber_scatter_raw(
                batch_size,
                self.network.output_dim,
                outputs.ctypes.data,
                huber_addrs[4],
                huber_addrs[1],
                self.config.huber_delta,
                float(batch_size),
                huber_addrs[2],
                huber_addrs[5],
            )
            loss = float(np.add.reduce(huber_scratch[2]) / batch_size)
        else:
            predictions = outputs.reshape(-1)[flat_index]
            loss, grad_predictions = self._huber_scratch(
                predictions, targets, huber_scratch
            )
            # Huber-gradient scatter into the reusable (batch, actions)
            # scratch: only the taken actions carry gradient, everything
            # else stays at the zeros the buffer was (re)set to.
            grad_outputs.fill(0.0)
            flat_grad_outputs[flat_index] = grad_predictions
        flat_grad, weight_views, bias_views, gradients, full_width, plan = (
            self._grad_scratch_for(width)
        )
        self.network.backward_into(cache, grad_outputs, weight_views, bias_views)
        self._clip_flat(flat_grad)

        if self.learning_rate_schedule is not None:
            self.optimizer.set_learning_rate(
                max(1e-6, self.learning_rate_schedule.value(self.train_steps))
            )
        if plan is not None:
            # Prepared fused step: the whole Adam update in one C call.
            self.optimizer.step_planned(plan)
        elif full_width and self._sliced_capable:
            # Gradient layout coincides with the flat parameter buffer:
            # update everything with whole-buffer ufuncs (consumes the
            # gradient scratch).
            self.optimizer.step_flat(
                self._params, self.network.flat_parameters, flat_grad
            )
        elif self._sliced_capable:
            self.optimizer.step_sliced(self._params, gradients, self._regions_for(width))
        else:
            # Compatibility for optimizers that only implement the masked
            # step(): pad the sliced gradients back to full shape.
            regions = self._regions_for(width)
            full_grads: List[np.ndarray] = []
            masks: List[np.ndarray] = []
            for param, grad, region in zip(self._params, gradients, regions):
                padded = np.zeros_like(param)
                padded[region] = grad
                mask = np.zeros(param.shape, dtype=bool)
                mask[region] = True
                full_grads.append(padded)
                masks.append(mask)
            self.optimizer.step(self._params, full_grads, masks)

        self.train_steps += 1
        if self.train_steps % self.config.target_sync_interval == 0:
            self.sync_target()
        return loss

    def _clip_flat(self, flat_grad: np.ndarray) -> None:
        """Global-norm clipping of the flat gradient buffer: one dot, one
        conditional in-place rescale.

        Equivalence boundary: the squared norm is accumulated in a
        different (mathematically equal) summation order than the original
        ``sum(np.sum(g**2))`` over zero-padded arrays, so the two can
        differ in the last ulps.  While the norm stays below
        ``max_grad_norm`` — true for every paper-default configuration the
        equivalence suite runs — no rescale happens and seeded runs remain
        bit-identical to the seed implementation; when a clip does fire,
        the rescale factor (and everything downstream) may differ at
        ~1e-16 relative magnitude.
        """
        if self.config.max_grad_norm <= 0:
            return
        total = float(np.sqrt(np.dot(flat_grad, flat_grad)))
        if total > self.config.max_grad_norm and total > 0:
            flat_grad *= self.config.max_grad_norm / total

    def _clip_gradients(self, gradients: Sequence[np.ndarray]) -> None:
        """Global-norm clipping in one vectorized pass per array.

        List-of-arrays variant of :meth:`_clip_flat` (the hot path clips the
        flat buffer directly): the squared norm is accumulated with
        ``dot(flat, flat)`` — no ``g**2`` temporaries — and the rescale loop
        runs only when the norm actually exceeds the configured maximum.
        """
        if self.config.max_grad_norm <= 0:
            return
        total_sq = 0.0
        for grad in gradients:
            flat = grad.reshape(-1)
            total_sq += float(np.dot(flat, flat))
        total = float(np.sqrt(total_sq))
        if total > self.config.max_grad_norm and total > 0:
            scale = self.config.max_grad_norm / total
            for grad in gradients:
                grad *= scale

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot of everything a training step mutates.

        Captures the online and target parameter buffers, the optimizer's
        moments/step counter and the learner's own step counter.  The
        scratch caches (pair views, gradient buffers, kernel plans) are pure
        functions of the configuration and are rebuilt lazily after a
        restore, so a restored learner continues bit-identically.
        """
        return {
            "train_steps": int(self.train_steps),
            "online_parameters": self.network.flat_parameters.copy(),
            "target_parameters": self.target_network.flat_parameters.copy(),
            "optimizer": self.optimizer.state_dict(),
        }

    def load_state_dict(self, payload: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place (same geometry)."""
        online = np.asarray(payload["online_parameters"], dtype=float)
        target = np.asarray(payload["target_parameters"], dtype=float)
        flat = self.network.flat_parameters
        if online.shape != flat.shape or target.shape != flat.shape:
            raise AgentError(
                f"parameter snapshot shapes {online.shape}/{target.shape} do "
                f"not match the network's flat buffer {flat.shape}"
            )
        flat[...] = online
        self.target_network.flat_parameters[...] = target
        self.train_steps = int(payload["train_steps"])
        self.optimizer.load_state_dict(self._params, payload["optimizer"])

    def sync_target(self) -> None:
        """Copy the online network's parameters into the target network."""
        if self._pair_buffer is not None:
            # Online and target halves share one buffer: the sync is a
            # single contiguous copy, no per-parameter allocations.
            total = self._pair_buffer.size // 2
            self._pair_buffer[total:] = self._pair_buffer[:total]
        else:
            self.target_network.set_state(self.network.get_state())
