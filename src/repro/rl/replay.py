"""Experience replay.

A bounded FIFO buffer of transitions with uniform random sampling — the
standard DQN component.  Lotus keeps *two* of these, one per per-frame
decision point, so that batches used to train the reduced-width Q-values
never mix with batches used to train the full-width ones (paper §4.3.4);
that pairing lives in the Lotus agent, not here.

Storage is a ring of preallocated column arrays (one ``(capacity, dim)``
array per transition field) rather than a deque of per-transition Python
objects: pushes write into the ring in place and :meth:`ReplayBuffer.sample`
gathers whole column batches with a single fancy-index per field, so the
training hot path never materialises a ``Transition`` object.  The
:class:`Transition` dataclass remains as the convenience push/iteration
format, and sampling draws indices with the same
``rng.choice(len, size, replace=False)`` call as the original deque
implementation, keeping seeded runs bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ReplayBufferError


@dataclass(frozen=True)
class Transition:
    """One (s, a, r, s') transition.

    Attributes:
        state: Observation vector the action was taken in.
        action: Index of the action taken.
        reward: Reward received after the action.
        next_state: Observation vector of the following time step.
        next_width: Width multiplier at which the *next* state's Q-values
            should be evaluated when bootstrapping (the Lotus transition at
            time ``2i`` bootstraps through a full-width evaluation of
            ``s_{2i+1}``, and vice versa).
    """

    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray
    next_width: float = 1.0

    def __post_init__(self) -> None:
        if self.action < 0:
            raise ReplayBufferError("action index must be non-negative")
        object.__setattr__(self, "state", np.asarray(self.state, dtype=float))
        object.__setattr__(self, "next_state", np.asarray(self.next_state, dtype=float))


@dataclass(frozen=True)
class TransitionBatch:
    """A batch of transitions in structure-of-arrays (column) form.

    This is what :meth:`ReplayBuffer.sample` returns and what
    :meth:`~repro.rl.dqn.DqnLearner.train_batch` consumes directly — the
    training path never touches row-wise ``Transition`` objects.  Iteration
    lazily materialises :class:`Transition` rows for inspection and tests.

    Attributes:
        states: Array of shape ``(batch, dim)``.
        actions: Integer array of shape ``(batch,)``.
        rewards: Array of shape ``(batch,)``.
        next_states: Array of shape ``(batch, dim)``.
        next_widths: Array of shape ``(batch,)``.
    """

    states: np.ndarray
    actions: np.ndarray
    rewards: np.ndarray
    next_states: np.ndarray
    next_widths: np.ndarray
    #: When not ``None``, every entry of ``next_widths`` is known to equal
    #: this value (tracked by the buffer at push time), letting the learner
    #: skip the per-batch uniformity scan.
    uniform_next_width: float | None = None

    def __len__(self) -> int:
        return self.states.shape[0]

    def __iter__(self) -> Iterator[Transition]:
        for i in range(len(self)):
            yield self[i]

    def __getitem__(self, index: int) -> Transition:
        return Transition(
            state=self.states[index],
            action=int(self.actions[index]),
            reward=float(self.rewards[index]),
            next_state=self.next_states[index],
            next_width=float(self.next_widths[index]),
        )

    @classmethod
    def from_transitions(cls, transitions) -> "TransitionBatch":
        """Build a column batch from row-wise transitions (compat path)."""
        transitions = list(transitions)
        if not transitions:
            raise ReplayBufferError("cannot build a batch from zero transitions")
        return cls(
            states=np.stack([np.asarray(t.state, dtype=float) for t in transitions]),
            actions=np.array([t.action for t in transitions], dtype=np.intp),
            rewards=np.array([t.reward for t in transitions], dtype=float),
            next_states=np.stack(
                [np.asarray(t.next_state, dtype=float) for t in transitions]
            ),
            next_widths=np.array([t.next_width for t in transitions], dtype=float),
        )


class ReplayBuffer:
    """Bounded FIFO replay buffer with uniform sampling.

    The column arrays are allocated lazily on the first push (that is when
    the state dimension becomes known) and reused for the lifetime of the
    buffer; eviction is implicit in the ring-write position.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ReplayBufferError("capacity must be positive")
        self.capacity = capacity
        self._size = 0
        self._next = 0
        self._total_pushed = 0
        self._dim = 0
        # Fused column storage: one gather serves both state columns, one
        # serves both scalar columns.
        self._state_pairs: np.ndarray | None = None  # (capacity, 2 * dim)
        self._scalar_pairs: np.ndarray | None = None  # (capacity, 2): reward, next_width
        self._actions: np.ndarray | None = None
        # All stored next_widths share this value until a differing one is
        # pushed; None = known mixed (conservative: never reset to uniform
        # by eviction).
        self._uniform_next_width: float | None = None

    def _allocate(self, dim: int) -> None:
        self._dim = dim
        self._state_pairs = np.zeros((self.capacity, 2 * dim))
        self._scalar_pairs = np.zeros((self.capacity, 2))
        self._actions = np.zeros(self.capacity, dtype=np.intp)

    def append(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        next_width: float = 1.0,
    ) -> None:
        """Store one transition from its fields, without a wrapper object.

        This is the hot-path push used by the agents; :meth:`push` is the
        thin :class:`Transition` front end on top of it.
        """
        if action < 0:
            raise ReplayBufferError("action index must be non-negative")
        if self._state_pairs is None:
            state = np.asarray(state, dtype=float)
            next_state = np.asarray(next_state, dtype=float)
            if state.ndim != 1 or next_state.shape != state.shape:
                raise ReplayBufferError(
                    "state and next_state must be 1-D vectors of equal length"
                )
            self._allocate(state.shape[0])
        index = self._next
        dim = self._dim
        if np.shape(state) != (dim,) or np.shape(next_state) != (dim,):
            raise ReplayBufferError(
                f"state and next_state must have shape ({dim},) to match the "
                f"buffer's first transition"
            )
        row = self._state_pairs[index]
        row[:dim] = state
        row[dim:] = next_state
        self._actions[index] = action
        self._scalar_pairs[index, 0] = reward
        self._scalar_pairs[index, 1] = next_width
        if self._total_pushed == 0:
            self._uniform_next_width = float(next_width)
        elif (
            self._uniform_next_width is not None
            and next_width != self._uniform_next_width
        ):
            self._uniform_next_width = None
        self._next = (index + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)
        self._total_pushed += 1

    def push(self, transition: Transition) -> None:
        """Store a transition, evicting the oldest if the buffer is full."""
        self.append(
            transition.state,
            transition.action,
            transition.reward,
            transition.next_state,
            transition.next_width,
        )

    def __len__(self) -> int:
        return self._size

    @property
    def total_pushed(self) -> int:
        """Total number of transitions ever pushed (including evicted ones)."""
        return self._total_pushed

    @property
    def is_full(self) -> bool:
        """Whether the buffer has reached its capacity."""
        return self._size == self.capacity

    def _physical(self, logical: np.ndarray) -> np.ndarray:
        """Map logical indices (0 = oldest) onto ring positions."""
        if self._size < self.capacity or self._next == 0:
            # Not yet wrapped, or wrapped an exact multiple of the capacity:
            # logical and physical coincide.
            return logical
        return (self._next + logical) % self.capacity

    def sample(self, batch_size: int, rng: np.random.Generator) -> TransitionBatch:
        """Sample ``batch_size`` transitions uniformly at random.

        Returns:
            A :class:`TransitionBatch` whose columns are freshly gathered
            (the caller may mutate them without affecting the buffer; the
            state/scalar columns are views into per-call gather arrays).

        Raises:
            ReplayBufferError: If the buffer holds fewer than ``batch_size``
                transitions.
        """
        if batch_size <= 0:
            raise ReplayBufferError("batch_size must be positive")
        if self._size < batch_size:
            raise ReplayBufferError(
                f"cannot sample {batch_size} transitions from a buffer of size "
                f"{self._size}"
            )
        indices = self._physical(rng.choice(self._size, size=batch_size, replace=False))
        dim = self._dim
        state_pairs = self._state_pairs[indices]
        scalar_pairs = self._scalar_pairs[indices]
        return TransitionBatch(
            states=state_pairs[:, :dim],
            actions=self._actions[indices],
            rewards=scalar_pairs[:, 0],
            next_states=state_pairs[:, dim:],
            next_widths=scalar_pairs[:, 1],
            uniform_next_width=self._uniform_next_width,
        )

    def clear(self) -> None:
        """Discard all stored transitions (the ring storage is reused)."""
        self._size = 0
        self._next = 0

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Complete, copyable snapshot of the ring state.

        Only the live rows (physical indices ``0 .. size-1``; when the ring
        has wrapped ``size == capacity`` so that is every row) are stored —
        unwritten rows are zeros and are re-zeroed on load.  Together with
        the write cursor this reproduces the exact physical layout, so
        seeded sampling from a restored buffer is bit-identical to sampling
        from the original.
        """
        return {
            "capacity": int(self.capacity),
            "size": int(self._size),
            "next": int(self._next),
            "total_pushed": int(self._total_pushed),
            "dim": int(self._dim),
            "uniform_next_width": (
                None
                if self._uniform_next_width is None
                else float(self._uniform_next_width)
            ),
            "state_pairs": (
                None if self._state_pairs is None else self._state_pairs[: self._size].copy()
            ),
            "scalar_pairs": (
                None if self._scalar_pairs is None else self._scalar_pairs[: self._size].copy()
            ),
            "actions": (
                None if self._actions is None else self._actions[: self._size].copy()
            ),
        }

    def load_state_dict(self, payload: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict` in place.

        The buffer must have been constructed with the same capacity as the
        snapshot (the capacity is a configuration constant, not state).
        """
        try:
            capacity = int(payload["capacity"])
            size = int(payload["size"])
            next_index = int(payload["next"])
            total_pushed = int(payload["total_pushed"])
            dim = int(payload["dim"])
            uniform = payload["uniform_next_width"]
            state_pairs = payload["state_pairs"]
            scalar_pairs = payload["scalar_pairs"]
            actions = payload["actions"]
        except (KeyError, TypeError, ValueError) as exc:
            raise ReplayBufferError(f"malformed replay-buffer state: {exc}") from exc
        if capacity != self.capacity:
            raise ReplayBufferError(
                f"snapshot capacity {capacity} does not match buffer capacity "
                f"{self.capacity}"
            )
        if not 0 <= size <= capacity or not 0 <= next_index < max(capacity, 1):
            raise ReplayBufferError("replay-buffer snapshot indices out of range")
        if dim > 0:
            if state_pairs is None or scalar_pairs is None or actions is None:
                raise ReplayBufferError("replay-buffer snapshot is missing columns")
            state_pairs = np.asarray(state_pairs, dtype=float)
            scalar_pairs = np.asarray(scalar_pairs, dtype=float)
            actions = np.asarray(actions)
            if (
                state_pairs.shape != (size, 2 * dim)
                or scalar_pairs.shape != (size, 2)
                or actions.shape != (size,)
            ):
                raise ReplayBufferError("replay-buffer snapshot column shapes mismatch")
            self._allocate(dim)
            self._state_pairs[:size] = state_pairs
            self._scalar_pairs[:size] = scalar_pairs
            self._actions[:size] = actions
        else:
            self._dim = 0
            self._state_pairs = None
            self._scalar_pairs = None
            self._actions = None
        self._size = size
        self._next = next_index
        self._total_pushed = total_pushed
        self._uniform_next_width = None if uniform is None else float(uniform)

    def latest(self) -> Transition:
        """The most recently pushed transition."""
        if self._size == 0:
            raise ReplayBufferError("buffer is empty")
        index = (self._next - 1) % self.capacity
        dim = self._dim
        return Transition(
            state=self._state_pairs[index, :dim].copy(),
            action=int(self._actions[index]),
            reward=float(self._scalar_pairs[index, 0]),
            next_state=self._state_pairs[index, dim:].copy(),
            next_width=float(self._scalar_pairs[index, 1]),
        )
