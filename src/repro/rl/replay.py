"""Experience replay.

A bounded FIFO buffer of transitions with uniform random sampling — the
standard DQN component.  Lotus keeps *two* of these, one per per-frame
decision point, so that batches used to train the reduced-width Q-values
never mix with batches used to train the full-width ones (paper §4.3.4);
that pairing lives in the Lotus agent, not here.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List

import numpy as np

from repro.errors import ReplayBufferError


@dataclass(frozen=True)
class Transition:
    """One (s, a, r, s') transition.

    Attributes:
        state: Observation vector the action was taken in.
        action: Index of the action taken.
        reward: Reward received after the action.
        next_state: Observation vector of the following time step.
        next_width: Width multiplier at which the *next* state's Q-values
            should be evaluated when bootstrapping (the Lotus transition at
            time ``2i`` bootstraps through a full-width evaluation of
            ``s_{2i+1}``, and vice versa).
    """

    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray
    next_width: float = 1.0

    def __post_init__(self) -> None:
        if self.action < 0:
            raise ReplayBufferError("action index must be non-negative")
        object.__setattr__(self, "state", np.asarray(self.state, dtype=float))
        object.__setattr__(self, "next_state", np.asarray(self.next_state, dtype=float))


class ReplayBuffer:
    """Bounded FIFO replay buffer with uniform sampling."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ReplayBufferError("capacity must be positive")
        self.capacity = capacity
        self._storage: Deque[Transition] = deque(maxlen=capacity)
        self._total_pushed = 0

    def push(self, transition: Transition) -> None:
        """Store a transition, evicting the oldest if the buffer is full."""
        self._storage.append(transition)
        self._total_pushed += 1

    def __len__(self) -> int:
        return len(self._storage)

    @property
    def total_pushed(self) -> int:
        """Total number of transitions ever pushed (including evicted ones)."""
        return self._total_pushed

    @property
    def is_full(self) -> bool:
        """Whether the buffer has reached its capacity."""
        return len(self._storage) == self.capacity

    def sample(self, batch_size: int, rng: np.random.Generator) -> List[Transition]:
        """Sample ``batch_size`` transitions uniformly at random.

        Raises:
            ReplayBufferError: If the buffer holds fewer than ``batch_size``
                transitions.
        """
        if batch_size <= 0:
            raise ReplayBufferError("batch_size must be positive")
        if len(self._storage) < batch_size:
            raise ReplayBufferError(
                f"cannot sample {batch_size} transitions from a buffer of size "
                f"{len(self._storage)}"
            )
        indices = rng.choice(len(self._storage), size=batch_size, replace=False)
        return [self._storage[int(i)] for i in indices]

    def clear(self) -> None:
        """Discard all stored transitions."""
        self._storage.clear()

    def latest(self) -> Transition:
        """The most recently pushed transition."""
        if not self._storage:
            raise ReplayBufferError("buffer is empty")
        return self._storage[-1]
