"""Deep reinforcement learning substrate (NumPy implementation).

The Lotus agent is a small 4-layer MLP trained with DQN, which does not need
a deep-learning framework: this package provides a from-scratch NumPy
implementation of

* :mod:`repro.rl.network` — activation functions, losses and weight
  initialisation shared by the network classes.
* :mod:`repro.rl.slimmable` — :class:`SlimmableMLP`, an MLP whose hidden
  layers can execute at a reduced width (the paper's [0.75x, 1.0x] design),
  with gradients confined to the active slice.
* :mod:`repro.rl.optimizer` — Adam and SGD with optional per-parameter
  update masks.
* :mod:`repro.rl.schedule` — learning-rate and exploration schedules
  (cosine decay, linear/exponential epsilon decay, the sinusoidal
  epsilon_t decay of the cool-down mechanism).
* :mod:`repro.rl.replay` — experience replay buffers (preallocated ring
  storage with column-batch sampling).
* :mod:`repro.rl.dqn` — a generic DQN learner (online + target network,
  epsilon-greedy action selection, Huber TD loss) that both the Lotus agent
  and the zTT baseline build on.
"""

from repro.rl.dqn import DqnConfig, DqnLearner
from repro.rl.network import he_init, huber_loss_and_grad, relu, relu_grad
from repro.rl.optimizer import Adam, Sgd
from repro.rl.replay import ReplayBuffer, Transition, TransitionBatch
from repro.rl.schedule import (
    ConstantSchedule,
    CosineDecaySchedule,
    ExponentialDecaySchedule,
    LinearDecaySchedule,
    SinusoidalDecaySchedule,
)
from repro.rl.slimmable import SlimmableMLP

__all__ = [
    "Adam",
    "ConstantSchedule",
    "CosineDecaySchedule",
    "DqnConfig",
    "DqnLearner",
    "ExponentialDecaySchedule",
    "LinearDecaySchedule",
    "ReplayBuffer",
    "Sgd",
    "SinusoidalDecaySchedule",
    "SlimmableMLP",
    "Transition",
    "TransitionBatch",
    "he_init",
    "huber_loss_and_grad",
    "relu",
    "relu_grad",
]
