"""Optional C fused kernels for the optimizer and fleet hot loops (self-verified).

The Adam update is elementwise over five same-sized buffers; in NumPy it
takes ~14 whole-array passes (each a separate ufunc call reading and
writing memory).  A single C loop does the same arithmetic in one pass.
This module compiles that loop with gcc at first use — strictly IEEE
(``-ffp-contract=off``, no fast-math), with every floating-point operation
written in the exact operand pairing and order of the NumPy sequence in
:meth:`repro.rl.optimizer.Adam.step_flat` — and loads it via ctypes.

The same library also carries the batched *fleet* kernels (see
:func:`fused_fleet`): RC thermal sub-stepping
(:meth:`~repro.hardware.fleet.DeviceFleet.advance_thermal`), the AR(1)
scene-complexity advance (:meth:`~repro.workload.fleet.FleetFrameStream.
next_frames`), the proposal-count rint/clip tail
(:func:`~repro.detection.fleet.propose_batch`) and the bias-add + ReLU of
the stacked Q forward (:class:`~repro.rl.slimmable.SlimmableMLP`).  Random
draws and transcendentals (``exp``) stay in NumPy — libm need not match
NumPy's vectorized routines bit for bit — so each kernel covers only the
elementwise tail whose C arithmetic is exactly reproducible.

Safety model: the kernel is used only if (a) a C compiler is available,
(b) compilation succeeds, and (c) a load-time self-test reproduces the
NumPy reference **bit for bit** on random data.  Any failure silently
falls back to the pure-NumPy path, which is always present and produces
identical results.  Set ``REPRO_FUSED=0`` to force the fallback.

The compiled library is cached in a per-user, owner-only directory
(``$XDG_CACHE_HOME/repro-fused`` or ``~/.cache/repro-fused``), keyed by a
hash of the C source and flags, so each machine compiles once.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
from pathlib import Path

import numpy as np

from repro.obs import bus as _obs

_SOURCE = r"""
#include <math.h>

/* One fused Adam step over contiguous buffers.

   Per element, the operation pairings mirror the NumPy sequence exactly:
     m = (m * beta1) + (omb1 * g)
     v = (v * beta2) + (omb2 * (g * g))
     p -= (lr * (m / bc1)) / (sqrt(v / bc2) + eps)
   Compiled with -ffp-contract=off so no multiply-add contraction changes
   the rounding. */
void adam_step_flat(long n, double *p, const double *g, double *m, double *v,
                    double lr, double beta1, double beta2, double eps,
                    double bc1, double bc2) {
    double omb1 = 1.0 - beta1;
    double omb2 = 1.0 - beta2;
    for (long i = 0; i < n; i++) {
        double gi = g[i];
        double mi = (m[i] * beta1) + (omb1 * gi);
        double vi = (v[i] * beta2) + (omb2 * (gi * gi));
        m[i] = mi;
        v[i] = vi;
        p[i] -= (lr * (mi / bc1)) / (sqrt(vi / bc2) + eps);
    }
}

/* The same update over the active rectangle of a row-strided parameter:
   p/m/v address (rows x cols) blocks with a row stride (in elements),
   g is contiguous (rows x cols). */
void adam_step_region(long rows, long cols, long stride,
                      double *p, const double *g, double *m, double *v,
                      double lr, double beta1, double beta2, double eps,
                      double bc1, double bc2) {
    double omb1 = 1.0 - beta1;
    double omb2 = 1.0 - beta2;
    for (long r = 0; r < rows; r++) {
        double *pr = p + r * stride;
        double *mr = m + r * stride;
        double *vr = v + r * stride;
        const double *gr = g + r * cols;
        for (long c = 0; c < cols; c++) {
            double gi = gr[c];
            double mi = (mr[c] * beta1) + (omb1 * gi);
            double vi = (vr[c] * beta2) + (omb2 * (gi * gi));
            mr[c] = mi;
            vr[c] = vi;
            pr[c] -= (lr * (mi / bc1)) / (sqrt(vi / bc2) + eps);
        }
    }
}

/* grad *= (pre > 0): the ReLU backward mask, as an exact multiply by
   1.0/0.0 (matching NumPy's float-by-bool multiply, including the sign of
   zero on masked-out negative entries). */
void relu_mask(long n, double *grad, const double *pre) {
    for (long i = 0; i < n; i++) {
        grad[i] = grad[i] * (pre[i] > 0.0 ? 1.0 : 0.0);
    }
}

/* Huber loss elementwise prep: per-element losses and the clipped,
   count-normalised gradient.  The mean over losses stays with NumPy (its
   pairwise summation order must be preserved); everything here is
   elementwise with the exact operand pairings of the NumPy sequence. */
void huber_prep(long n, const double *pred, const double *targets,
                double delta, double count, double *losses, double *grad) {
    for (long i = 0; i < n; i++) {
        double e = pred[i] - targets[i];
        double a = fabs(e);
        double q = a < delta ? a : delta;       /* minimum(abs, delta) */
        double l = a - q;                       /* linear part */
        losses[i] = (0.5 * (q * q)) + (delta * l);
        double c = e > -delta ? e : -delta;     /* maximum(e, -delta) */
        c = c < delta ? c : delta;              /* minimum(., delta)  */
        grad[i] = c / count;
    }
}

/* A whole sliced optimizer step in one call: k row-strided regions
   (one per parameter array), pointer tables prepared once by the caller. */
void adam_step_multi(long k, const long *rows, const long *cols,
                     const long *strides, double **ps, double **gs,
                     double **ms, double **vs,
                     double lr, double beta1, double beta2, double eps,
                     double bc1, double bc2) {
    for (long i = 0; i < k; i++) {
        adam_step_region(rows[i], cols[i], strides[i], ps[i], gs[i],
                         ms[i], vs[i], lr, beta1, beta2, eps, bc1, bc2);
    }
}

/* ---- batched fleet kernels --------------------------------------------- */

/* RC thermal sub-stepping over a (nodes x n) fleet temperature matrix,
   mirroring DeviceFleet.advance_thermal exactly:

     while any(remaining > 1e-12):
         dt      = active ? min(max_substep, remaining) : 0      per session
         deltas  = ((power - (T - ambient)/R) - coupled) / C * dt
                   -- ALL rows from pre-step temps (two-pass via scratch)
         T      += deltas;  remaining -= dt

   Couplings are visited in list order per row (first as node_a, then as
   node_b), accumulating `coupled = coupled + c * (T_row - T_other)` in the
   same addition order as the NumPy loop.  Sessions that finish early take
   zero-length sub-steps until the longest-running session completes. */
void fleet_thermal_advance(long nodes, long n, double *temps,
                           const double *power, const double *ambient,
                           const double *resistance,
                           const double *heat_capacity,
                           long ncoup, const long *ca, const long *cb,
                           const double *cc, double *remaining,
                           double max_substep, double *dt, double *deltas) {
    for (;;) {
        int any_active = 0;
        for (long j = 0; j < n; j++) {
            double rem = remaining[j];
            if (rem > 1e-12) {
                any_active = 1;
                dt[j] = max_substep < rem ? max_substep : rem;
            } else {
                dt[j] = 0.0;
            }
        }
        if (!any_active) break;
        for (long r = 0; r < nodes; r++) {
            const double *tr = temps + r * n;
            const double *pr = power + r * n;
            double *dr = deltas + r * n;
            double res = resistance[r];
            double hc = heat_capacity[r];
            for (long j = 0; j < n; j++) {
                double to_ambient = (tr[j] - ambient[j]) / res;
                double coupled = 0.0;
                for (long k = 0; k < ncoup; k++) {
                    if (ca[k] == r) {
                        coupled = coupled + cc[k] * (tr[j] - temps[cb[k] * n + j]);
                    } else if (cb[k] == r) {
                        coupled = coupled + cc[k] * (tr[j] - temps[ca[k] * n + j]);
                    }
                }
                double net_flow = (pr[j] - to_ambient) - coupled;
                dr[j] = (net_flow / hc) * dt[j];
            }
        }
        for (long i = 0; i < nodes * n; i++) {
            temps[i] += deltas[i];
        }
        for (long j = 0; j < n; j++) {
            remaining[j] -= dt[j];
        }
    }
}

/* One AR(1) step per session, in place:
     v = (mean + corr * (current - mean)) + innovation; clip to [lo, hi]
   Clip as minimum(maximum(v, lo), hi) with NumPy's `in1 >= in2 ? in1 : in2`
   tie handling. */
void fleet_ar1_advance(long n, double *current, const double *mean,
                       const double *corr, const double *innov,
                       const double *lo, const double *hi) {
    for (long i = 0; i < n; i++) {
        double v = (mean[i] + corr[i] * (current[i] - mean[i])) + innov[i];
        v = v >= lo[i] ? v : lo[i];   /* maximum(v, lo) */
        v = v <= hi[i] ? v : hi[i];   /* minimum(., hi) */
        current[i] = v;
    }
}

/* Proposal-count tail: expected = scene * keep_ratio [* noise_factor],
   counts = clip(rint(expected), min_p, max_p) as int64.  The noise factor
   (exp of the per-session draws) is computed by NumPy and passed in; C
   rint() under the default rounding mode is round-half-to-even, exactly
   np.rint.  The final cast is exact: the clipped value is integral. */
void fleet_proposal_tail(long n, const double *scene, double keep_ratio,
                         long has_factor, const double *factor,
                         double min_p, double max_p, long long *out) {
    for (long i = 0; i < n; i++) {
        double e = scene[i] * keep_ratio;
        if (has_factor) e = e * factor[i];
        double r = rint(e);
        r = r >= min_p ? r : min_p;
        r = r <= max_p ? r : max_p;
        out[i] = (long long)r;
    }
}

/* Fused bias add + ReLU for one hidden layer of the stacked Q forward:
     z[i][j] += b[j];  act[i][j] = maximum(z[i][j], 0.0)
   `act` may alias `z` (the inference path reuses the matmul output).  The
   comparison is `zv >= 0.0 ? zv : 0.0`, NumPy maximum's tie rule, so the
   sign of a -0.0 pre-activation survives exactly as in NumPy. */
void bias_relu(long rows, long cols, double *z, const double *b,
               double *act) {
    for (long r = 0; r < rows; r++) {
        double *zr = z + r * cols;
        double *ar = act + r * cols;
        for (long c = 0; c < cols; c++) {
            double zv = zr[c] + b[c];
            zr[c] = zv;
            ar[c] = zv >= 0.0 ? zv : 0.0;
        }
    }
}

/* Fused bias add (+ optional ReLU) over one (2, batch, units) layer of the
   stacked online/target pair forward, in place.  The two halves carry
   different bias vectors (the online and target parameters live a fixed
   byte offset apart in the shared pair buffer), hence two base pointers.
   Ops per element match `z += b; maximum(z, 0, out=z)` exactly — same
   addition, same `zv >= 0.0 ? zv : 0.0` tie rule as bias_relu above. */
void pair_bias_relu(long batch, long units, double *z, const double *b0,
                    const double *b1, long relu) {
    for (long h = 0; h < 2; h++) {
        const double *b = h ? b1 : b0;
        double *zh = z + h * batch * units;
        for (long r = 0; r < batch; r++) {
            double *zr = zh + r * units;
            for (long c = 0; c < units; c++) {
                double zv = zr[c] + b[c];
                zr[c] = relu ? (zv >= 0.0 ? zv : 0.0) : zv;
            }
        }
    }
}

/* The double-DQN TD-target tail, fused over the final (2, batch, actions)
   pair layer straight after its matmul (bias not yet added): per sample,
   bias-add the online row, argmax it with NumPy's exact semantics (first
   occurrence wins ties, any NaN wins immediately at its first position),
   gather the target Q at that action (bias added on the fly — same
   addition as the full broadcast, just only at the gathered cell), and
   emit `(target_q * discount) + rewards[i]` — the exact operand pairing
   of the NumPy sequence `max_next_q *= discount; max_next_q += rewards`. */
void pair_q_targets(long batch, long actions, const double *z,
                    const double *b0, const double *b1, double discount,
                    const double *rewards, double *out) {
    const double *ztgt = z + batch * actions;
    for (long i = 0; i < batch; i++) {
        const double *onl = z + i * actions;
        long best = 0;
        double bestv = onl[0] + b0[0];
        if (!isnan(bestv)) {
            for (long c = 1; c < actions; c++) {
                double v = onl[c] + b0[c];
                if (isnan(v)) { best = c; break; }
                if (v > bestv) { bestv = v; best = c; }
            }
        }
        double tv = ztgt[i * actions + best] + b1[best];
        out[i] = (tv * discount) + rewards[i];
    }
}

/* Fused Q gather + Huber prep + gradient scatter: gathers the taken
   (row, action) predictions from the ravelled (batch, actions) output
   plane, runs the exact huber_prep op sequence against the targets, and
   scatters the per-sample gradients into a zeroed (batch * actions) flat
   gradient plane.  Replaces take + huber_prep + fill(0) + fancy-index
   scatter with one pass; the loss mean over `losses` stays with NumPy. */
void q_huber_scatter(long n, long actions, const double *outputs,
                     const long *flat_index, const double *targets,
                     double delta, double count, double *losses,
                     double *grad_flat) {
    for (long i = 0; i < n * actions; i++) {
        grad_flat[i] = 0.0;
    }
    for (long i = 0; i < n; i++) {
        double e = outputs[flat_index[i]] - targets[i];
        double a = fabs(e);
        double q = a < delta ? a : delta;       /* minimum(abs, delta) */
        double l = a - q;                       /* linear part */
        losses[i] = (0.5 * (q * q)) + (delta * l);
        double c = e > -delta ? e : -delta;     /* maximum(e, -delta) */
        c = c < delta ? c : delta;              /* minimum(., delta)  */
        grad_flat[flat_index[i]] = c / count;
    }
}
"""

# -ffp-contract=off: no multiply-add fusion (rounding must match NumPy's
# two-step ops).  -fno-math-errno: allows sqrt to vectorize (sqrtpd is still
# correctly rounded; only errno bookkeeping is dropped).  SIMD div/sqrt are
# IEEE-exact per element, so vectorization cannot change results.
_CFLAGS = [
    "-O3",
    "-march=native",
    "-fno-math-errno",
    "-ffp-contract=off",
    "-shared",
    "-fPIC",
    "-lm",
]

_DOUBLE_P = ctypes.POINTER(ctypes.c_double)


class AdamPlan:
    """Pointer/dimension tables for one fused multi-region Adam step."""

    __slots__ = ("k", "rows", "cols", "strides", "ps", "gs", "ms", "vs", "keepalive")

    def __init__(self, k, rows, cols, strides, ps, gs, ms, vs, keepalive):
        self.k = k
        self.rows = rows
        self.cols = cols
        self.strides = strides
        self.ps = ps
        self.gs = gs
        self.ms = ms
        self.vs = vs
        self.keepalive = keepalive


class _FusedAdam:
    """ctypes wrapper around the compiled kernels.

    All pointer arguments are typed ``c_void_p`` so callers can pass raw
    integer addresses (``array.ctypes.data``); hot paths cache those
    addresses for their long-lived scratch buffers instead of paying the
    ctypes pointer-conversion machinery on every call (the ``*_raw``
    methods).
    """

    def __init__(self, lib: ctypes.CDLL):
        self._flat = lib.adam_step_flat
        self._flat.restype = None
        self._flat.argtypes = [
            ctypes.c_long, ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_double, ctypes.c_double, ctypes.c_double, ctypes.c_double,
            ctypes.c_double, ctypes.c_double,
        ]
        self._region = lib.adam_step_region
        self._region.restype = None
        self._region.argtypes = [
            ctypes.c_long, ctypes.c_long, ctypes.c_long,
            ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
            ctypes.c_double, ctypes.c_double, ctypes.c_double, ctypes.c_double,
            ctypes.c_double, ctypes.c_double,
        ]
        self._multi = lib.adam_step_multi
        self._multi.restype = None
        self._multi.argtypes = [
            ctypes.c_long,
            ctypes.POINTER(ctypes.c_long), ctypes.POINTER(ctypes.c_long),
            ctypes.POINTER(ctypes.c_long),
            ctypes.POINTER(ctypes.c_void_p), ctypes.POINTER(ctypes.c_void_p),
            ctypes.POINTER(ctypes.c_void_p), ctypes.POINTER(ctypes.c_void_p),
            ctypes.c_double, ctypes.c_double, ctypes.c_double, ctypes.c_double,
            ctypes.c_double, ctypes.c_double,
        ]
        self._relu_mask = lib.relu_mask
        self._relu_mask.restype = None
        self._relu_mask.argtypes = [ctypes.c_long, ctypes.c_void_p, ctypes.c_void_p]
        self._huber_prep = lib.huber_prep
        self._huber_prep.restype = None
        self._huber_prep.argtypes = [
            ctypes.c_long, ctypes.c_void_p, ctypes.c_void_p,
            ctypes.c_double, ctypes.c_double, ctypes.c_void_p, ctypes.c_void_p,
        ]
        self._fleet_thermal = lib.fleet_thermal_advance
        self._fleet_thermal.restype = None
        self._fleet_thermal.argtypes = [
            ctypes.c_long, ctypes.c_long, ctypes.c_void_p, ctypes.c_void_p,
            ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
            ctypes.c_long, ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
            ctypes.c_void_p, ctypes.c_double, ctypes.c_void_p, ctypes.c_void_p,
        ]
        self._fleet_ar1 = lib.fleet_ar1_advance
        self._fleet_ar1.restype = None
        self._fleet_ar1.argtypes = [
            ctypes.c_long, ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
            ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
        ]
        self._proposal_tail = lib.fleet_proposal_tail
        self._proposal_tail.restype = None
        self._proposal_tail.argtypes = [
            ctypes.c_long, ctypes.c_void_p, ctypes.c_double,
            ctypes.c_long, ctypes.c_void_p,
            ctypes.c_double, ctypes.c_double, ctypes.c_void_p,
        ]
        self._bias_relu = lib.bias_relu
        self._bias_relu.restype = None
        self._bias_relu.argtypes = [
            ctypes.c_long, ctypes.c_long, ctypes.c_void_p, ctypes.c_void_p,
            ctypes.c_void_p,
        ]
        self._pair_bias_relu = lib.pair_bias_relu
        self._pair_bias_relu.restype = None
        self._pair_bias_relu.argtypes = [
            ctypes.c_long, ctypes.c_long, ctypes.c_void_p, ctypes.c_void_p,
            ctypes.c_void_p, ctypes.c_long,
        ]
        self._pair_q_targets = lib.pair_q_targets
        self._pair_q_targets.restype = None
        self._pair_q_targets.argtypes = [
            ctypes.c_long, ctypes.c_long, ctypes.c_void_p, ctypes.c_void_p,
            ctypes.c_void_p, ctypes.c_double, ctypes.c_void_p, ctypes.c_void_p,
        ]
        self._q_huber_scatter = lib.q_huber_scatter
        self._q_huber_scatter.restype = None
        self._q_huber_scatter.argtypes = [
            ctypes.c_long, ctypes.c_long, ctypes.c_void_p, ctypes.c_void_p,
            ctypes.c_void_p, ctypes.c_double, ctypes.c_double, ctypes.c_void_p,
            ctypes.c_void_p,
        ]

    @staticmethod
    def _ptr(array: np.ndarray) -> int:
        return array.ctypes.data

    def make_plan(
        self,
        param_views: list,
        grads: list,
        m_views: list,
        v_views: list,
    ) -> "AdamPlan":
        """Precompute the pointer/dimension tables for ``step_multi``.

        All arrays must stay alive and in place for the plan's lifetime
        (the plan holds references to guarantee the former; the callers—
        flat-backed networks and optimizer state—guarantee the latter).
        """
        k = len(param_views)
        rows, cols, strides = [], [], []
        for a in param_views:
            if a.ndim == 1:
                rows.append(1)
                cols.append(a.shape[0])
                strides.append(a.shape[0])
            else:
                rows.append(a.shape[0])
                cols.append(a.shape[1])
                strides.append(a.strides[0] // a.itemsize)
        return AdamPlan(
            k=k,
            rows=(ctypes.c_long * k)(*rows),
            cols=(ctypes.c_long * k)(*cols),
            strides=(ctypes.c_long * k)(*strides),
            ps=(ctypes.c_void_p * k)(*[a.ctypes.data for a in param_views]),
            gs=(ctypes.c_void_p * k)(*[a.ctypes.data for a in grads]),
            ms=(ctypes.c_void_p * k)(*[a.ctypes.data for a in m_views]),
            vs=(ctypes.c_void_p * k)(*[a.ctypes.data for a in v_views]),
            keepalive=(param_views, grads, m_views, v_views),
        )

    def step_multi(
        self,
        plan: "AdamPlan",
        lr: float,
        beta1: float,
        beta2: float,
        eps: float,
        bc1: float,
        bc2: float,
    ) -> None:
        _obs.kernel_call("step_multi")
        self._multi(
            plan.k, plan.rows, plan.cols, plan.strides,
            plan.ps, plan.gs, plan.ms, plan.vs,
            lr, beta1, beta2, eps, bc1, bc2,
        )

    def relu_mask(self, grad: np.ndarray, pre: np.ndarray) -> None:
        """``grad *= pre > 0`` over contiguous same-sized arrays."""
        _obs.kernel_call("relu_mask")
        self._relu_mask(grad.size, self._ptr(grad), self._ptr(pre))

    def relu_mask_raw(self, n: int, grad_addr: int, pre_addr: int) -> None:
        """:meth:`relu_mask` with precomputed buffer addresses."""
        _obs.kernel_call("relu_mask_raw")
        self._relu_mask(n, grad_addr, pre_addr)

    def huber_prep(
        self,
        predictions: np.ndarray,
        targets: np.ndarray,
        delta: float,
        count: float,
        losses: np.ndarray,
        grad: np.ndarray,
    ) -> None:
        """Per-element Huber losses and clipped gradient (contiguous 1-D)."""
        _obs.kernel_call("huber_prep")
        self._huber_prep(
            predictions.size, self._ptr(predictions), self._ptr(targets),
            delta, count, self._ptr(losses), self._ptr(grad),
        )

    def huber_prep_raw(
        self,
        n: int,
        predictions_addr: int,
        targets_addr: int,
        delta: float,
        count: float,
        losses_addr: int,
        grad_addr: int,
    ) -> None:
        """:meth:`huber_prep` with precomputed buffer addresses."""
        _obs.kernel_call("huber_prep_raw")
        self._huber_prep(
            n, predictions_addr, targets_addr, delta, count,
            losses_addr, grad_addr,
        )

    # -- fleet kernels -------------------------------------------------------

    def fleet_thermal_advance(
        self,
        temps: np.ndarray,
        power: np.ndarray,
        ambient: np.ndarray,
        resistance: np.ndarray,
        heat_capacity: np.ndarray,
        coup_a: np.ndarray,
        coup_b: np.ndarray,
        coup_c: np.ndarray,
        remaining: np.ndarray,
        max_substep: float,
        dt_scratch: np.ndarray,
        deltas_scratch: np.ndarray,
    ) -> None:
        """Advance a ``(nodes, n)`` fleet thermal matrix in place.

        ``remaining`` (seconds, length n) is consumed in place; ``dt_scratch``
        (length n) and ``deltas_scratch`` (``(nodes, n)``) are caller-owned
        work buffers.  All arrays must be C-contiguous float64 (coupling
        endpoint indices int64).
        """
        _obs.kernel_call("fleet_thermal_advance")
        nodes, n = temps.shape
        self._fleet_thermal(
            nodes, n, self._ptr(temps), self._ptr(power), self._ptr(ambient),
            self._ptr(resistance), self._ptr(heat_capacity),
            coup_a.size, self._ptr(coup_a), self._ptr(coup_b),
            self._ptr(coup_c), self._ptr(remaining), max_substep,
            self._ptr(dt_scratch), self._ptr(deltas_scratch),
        )

    def fleet_ar1_advance(
        self,
        current: np.ndarray,
        mean: np.ndarray,
        corr: np.ndarray,
        innovations: np.ndarray,
        minimum: np.ndarray,
        maximum: np.ndarray,
    ) -> None:
        """One clipped AR(1) step over per-session streams, in place."""
        _obs.kernel_call("fleet_ar1_advance")
        self._fleet_ar1(
            current.size, self._ptr(current), self._ptr(mean),
            self._ptr(corr), self._ptr(innovations),
            self._ptr(minimum), self._ptr(maximum),
        )

    def fleet_proposal_tail(
        self,
        scene_candidates: np.ndarray,
        keep_ratio: float,
        factor: np.ndarray | None,
        min_proposals: float,
        max_proposals: float,
        out: np.ndarray,
    ) -> None:
        """rint/clip tail of the batched proposal draw into int64 ``out``."""
        _obs.kernel_call("fleet_proposal_tail")
        self._proposal_tail(
            scene_candidates.size, self._ptr(scene_candidates), keep_ratio,
            0 if factor is None else 1,
            0 if factor is None else self._ptr(factor),
            min_proposals, max_proposals, self._ptr(out),
        )

    def bias_relu(self, z: np.ndarray, b: np.ndarray, act: np.ndarray) -> None:
        """``z += b`` then ``act = maximum(z, 0)`` for one hidden layer.

        ``z`` and ``act`` are ``(batch, units)`` C-contiguous float64 and may
        be the same array; ``b`` is the contiguous active bias slice.
        """
        _obs.kernel_call("bias_relu")
        rows, cols = z.shape
        self._bias_relu(rows, cols, self._ptr(z), self._ptr(b), self._ptr(act))

    def pair_bias_relu(self, z: np.ndarray, b: np.ndarray, relu: bool) -> None:
        """Bias add (+ ReLU when ``relu``) over one stacked pair layer.

        ``z`` is the C-contiguous ``(2, batch, units)`` activation scratch
        (online half first); ``b`` is the strided ``(2, 1, units)`` pair
        bias view, whose two halves sit ``b.strides[0]`` bytes apart in the
        shared pair parameter buffer.
        """
        _obs.kernel_call("pair_bias_relu")
        _, batch, units = z.shape
        b0 = b.ctypes.data
        self._pair_bias_relu(
            batch, units, self._ptr(z), b0, b0 + b.strides[0], 1 if relu else 0
        )

    def pair_q_targets(
        self,
        z: np.ndarray,
        b: np.ndarray,
        discount: float,
        rewards: np.ndarray,
        out: np.ndarray,
    ) -> None:
        """Double-DQN TD targets from the biasless final pair layer.

        ``z`` is the ``(2, batch, actions)`` output of the last stacked
        matmul (bias NOT yet added — the kernel folds it in); ``b`` the
        ``(2, 1, actions)`` pair bias view.  Writes
        ``(target_q[argmax online_q] * discount) + rewards`` into ``out``.
        """
        _obs.kernel_call("pair_q_targets")
        _, batch, actions = z.shape
        b0 = b.ctypes.data
        self._pair_q_targets(
            batch, actions, self._ptr(z), b0, b0 + b.strides[0],
            discount, self._ptr(rewards), self._ptr(out),
        )

    def q_huber_scatter_raw(
        self,
        n: int,
        actions: int,
        outputs_addr: int,
        flat_index_addr: int,
        targets_addr: int,
        delta: float,
        count: float,
        losses_addr: int,
        grad_flat_addr: int,
    ) -> None:
        """Fused Q gather + Huber prep + gradient scatter (raw addresses).

        Zero-fills the ``n * actions`` flat gradient plane, then per sample
        gathers ``outputs[flat_index[i]]``, computes the Huber loss/gradient
        against ``targets`` with the exact ``huber_prep`` op sequence, and
        scatters the gradient back at ``flat_index[i]``.
        """
        _obs.kernel_call("q_huber_scatter_raw")
        self._q_huber_scatter(
            n, actions, outputs_addr, flat_index_addr, targets_addr,
            delta, count, losses_addr, grad_flat_addr,
        )

    def step_flat(
        self,
        params: np.ndarray,
        grads: np.ndarray,
        m: np.ndarray,
        v: np.ndarray,
        lr: float,
        beta1: float,
        beta2: float,
        eps: float,
        bc1: float,
        bc2: float,
    ) -> None:
        _obs.kernel_call("step_flat")
        self._flat(
            params.size, self._ptr(params), self._ptr(grads),
            self._ptr(m), self._ptr(v), lr, beta1, beta2, eps, bc1, bc2,
        )

    def step_region(
        self,
        param_view: np.ndarray,
        grad: np.ndarray,
        m_view: np.ndarray,
        v_view: np.ndarray,
        lr: float,
        beta1: float,
        beta2: float,
        eps: float,
        bc1: float,
        bc2: float,
    ) -> None:
        """Update a (rows, cols) row-strided view from a contiguous gradient."""
        _obs.kernel_call("step_region")
        if param_view.ndim == 1:
            rows, cols = 1, param_view.shape[0]
            stride = cols
        else:
            rows, cols = param_view.shape
            stride = param_view.strides[0] // param_view.itemsize
        self._region(
            rows, cols, stride,
            self._ptr(param_view), self._ptr(grad),
            self._ptr(m_view), self._ptr(v_view),
            lr, beta1, beta2, eps, bc1, bc2,
        )


def _reference_step(p, g, m, v, lr, beta1, beta2, eps, bc1, bc2):
    """The NumPy op sequence the kernel must reproduce bit for bit."""
    m *= beta1
    m += (1.0 - beta1) * g
    v *= beta2
    v += (1.0 - beta2) * (g * g)
    s = m / bc1
    s *= lr
    denom = np.sqrt(v / bc2)
    denom += eps
    s /= denom
    p -= s


def _self_test(kernel: _FusedAdam) -> bool:
    rng = np.random.default_rng(12345)
    n = 1337
    p0 = rng.normal(size=n)
    g0 = rng.normal(size=n)
    m0 = rng.normal(size=n) * 0.1
    v0 = np.abs(rng.normal(size=n)) * 0.01
    args = (0.003, 0.9, 0.99, 1e-8, 0.3, 0.05)
    p_ref, m_ref, v_ref = p0.copy(), m0.copy(), v0.copy()
    _reference_step(p_ref, g0, m_ref, v_ref, *args)
    p_c, m_c, v_c = p0.copy(), m0.copy(), v0.copy()
    kernel.step_flat(p_c, g0, m_c, v_c, *args)
    if not (
        np.array_equal(p_ref, p_c)
        and np.array_equal(m_ref, m_c)
        and np.array_equal(v_ref, v_c)
    ):
        return False
    # Region variant on a strided rectangle.
    full = rng.normal(size=(24, 32))
    mf = rng.normal(size=(24, 32)) * 0.1
    vf = np.abs(rng.normal(size=(24, 32))) * 0.01
    grad = rng.normal(size=(20, 24)).copy()
    p_ref2, m_ref2, v_ref2 = full.copy(), mf.copy(), vf.copy()
    _reference_step(
        p_ref2[:20, :24], grad, m_ref2[:20, :24], v_ref2[:20, :24], *args
    )
    kernel.step_region(full[:20, :24], grad, mf[:20, :24], vf[:20, :24], *args)
    if not (
        np.array_equal(p_ref2, full)
        and np.array_equal(m_ref2, mf)
        and np.array_equal(v_ref2, vf)
    ):
        return False
    # Plan/multi plumbing: a strided matrix region plus a vector in one call.
    pw = rng.normal(size=(10, 16))
    mw = rng.normal(size=(10, 16)) * 0.1
    vw = np.abs(rng.normal(size=(10, 16))) * 0.01
    gw = rng.normal(size=(8, 12)).copy()
    pb = rng.normal(size=20)
    mb = rng.normal(size=20) * 0.1
    vb = np.abs(rng.normal(size=20)) * 0.01
    gb = rng.normal(size=14).copy()
    refs = [a.copy() for a in (pw, mw, vw, pb, mb, vb)]
    _reference_step(refs[0][:8, :12], gw, refs[1][:8, :12], refs[2][:8, :12], *args)
    _reference_step(refs[3][:14], gb, refs[4][:14], refs[5][:14], *args)
    plan = kernel.make_plan(
        [pw[:8, :12], pb[:14]],
        [gw, gb],
        [mw[:8, :12], mb[:14]],
        [vw[:8, :12], vb[:14]],
    )
    kernel.step_multi(plan, *args)
    if not all(
        np.array_equal(ref, live)
        for ref, live in zip(refs, (pw, mw, vw, pb, mb, vb))
    ):
        return False
    # ReLU mask: must match NumPy's float-by-bool multiply bit for bit,
    # including the sign of zero on masked-out entries.
    pre = rng.normal(size=256)
    g_ref = rng.normal(size=256)
    g_c = g_ref.copy()
    g_ref *= pre > 0.0
    kernel.relu_mask(g_c, pre)
    if not np.array_equal(g_ref.view(np.int64), g_c.view(np.int64)):
        return False
    # Huber elementwise prep vs. the NumPy op sequence.
    preds = rng.normal(size=97)
    targs = rng.normal(size=97)
    delta, cnt = 1.0, 97.0
    err = preds - targs
    abs_err = np.abs(err)
    quad = np.minimum(abs_err, delta)
    losses_ref = 0.5 * (quad * quad) + delta * (abs_err - quad)
    grad_ref = np.minimum(np.maximum(err, -delta), delta) / cnt
    losses_c = np.empty(97)
    grad_c = np.empty(97)
    kernel.huber_prep(preds, targs, delta, cnt, losses_c, grad_c)
    if not (
        np.array_equal(losses_ref.view(np.int64), losses_c.view(np.int64))
        and np.array_equal(grad_ref.view(np.int64), grad_c.view(np.int64))
    ):
        return False
    # Fleet thermal sub-stepping vs. the DeviceFleet.advance_thermal NumPy
    # loop: mixed durations (zero, sub-step-sized, multi-step) so sessions
    # finish at different iterations.
    nodes, n = 3, 11
    temps0 = rng.normal(45.0, 10.0, size=(nodes, n))
    power = np.abs(rng.normal(4.0, 2.0, size=(nodes, n)))
    ambient = rng.normal(25.0, 3.0, size=n)
    resistance = np.abs(rng.normal(2.0, 0.5, size=nodes)) + 0.1
    heat_capacity = np.abs(rng.normal(20.0, 5.0, size=nodes)) + 1.0
    couplings = [(0, 1, 0.8), (1, 2, 0.35)]
    max_substep = 0.05
    remaining0 = np.concatenate(
        [np.zeros(2), rng.uniform(0.0, 0.3, size=n - 2)]
    )
    t_ref = temps0.copy()
    remaining = remaining0.copy()
    while True:
        active = remaining > 1e-12
        if not active.any():
            break
        dt = np.where(active, np.minimum(max_substep, remaining), 0.0)
        deltas = np.empty_like(t_ref)
        for row in range(nodes):
            to_ambient = (t_ref[row] - ambient) / resistance[row]
            coupled = np.zeros(n)
            for node_a, node_b, conductance in couplings:
                if row == node_a:
                    coupled = coupled + conductance * (t_ref[row] - t_ref[node_b])
                elif row == node_b:
                    coupled = coupled + conductance * (t_ref[row] - t_ref[node_a])
            net_flow_w = power[row] - to_ambient - coupled
            deltas[row] = net_flow_w / heat_capacity[row] * dt
        t_ref += deltas
        remaining = remaining - dt
    t_c = temps0.copy()
    kernel.fleet_thermal_advance(
        t_c, power, ambient, resistance, heat_capacity,
        np.array([a for a, _, _ in couplings], dtype=np.int64),
        np.array([b for _, b, _ in couplings], dtype=np.int64),
        np.array([c for _, _, c in couplings], dtype=float),
        remaining0.copy(), max_substep, np.empty(n), np.empty((nodes, n)),
    )
    if not np.array_equal(t_ref.view(np.int64), t_c.view(np.int64)):
        return False
    # AR(1) advance vs. the FleetFrameStream.next_frames op sequence,
    # including values that land outside [lo, hi] on both sides.
    cur0 = rng.normal(50.0, 30.0, size=64)
    mean = rng.normal(50.0, 10.0, size=64)
    corr = rng.uniform(0.2, 0.99, size=64)
    innov = rng.normal(0.0, 20.0, size=64)
    lo = np.full(64, 10.0)
    hi = np.full(64, 90.0)
    ar_ref = np.clip(mean + corr * (cur0 - mean) + innov, lo, hi)
    ar_c = cur0.copy()
    kernel.fleet_ar1_advance(ar_c, mean, corr, innov, lo, hi)
    if not np.array_equal(ar_ref.view(np.int64), ar_c.view(np.int64)):
        return False
    # Proposal tail vs. rint/clip/astype, with explicit half-way values so
    # a round-half-away rint would be caught, with and without the noise
    # factor.
    scene = np.concatenate(
        [np.array([0.5, 1.5, 2.5, 3.5, 250.0, 1e4]), rng.uniform(0, 400, 57)]
    )
    keep_ratio, min_p, max_p = 1.0, 1.0, 300.0
    factor = np.exp(rng.normal(0.0, 0.2, size=scene.size))
    for fac in (None, factor):
        expected = scene * keep_ratio
        if fac is not None:
            expected = expected * fac
        counts_ref = np.clip(np.rint(expected), min_p, max_p).astype(np.int64)
        counts_c = np.empty(scene.size, dtype=np.int64)
        kernel.fleet_proposal_tail(scene, keep_ratio, fac, min_p, max_p, counts_c)
        if not np.array_equal(counts_ref, counts_c):
            return False
    # Bias add + ReLU vs. `z += b; maximum(z, 0)`, separate-output and
    # aliased (act is z) forms.
    z0 = rng.normal(size=(17, 23))
    bias = rng.normal(size=23)
    z_ref = z0.copy()
    z_ref += bias
    act_ref = np.maximum(z_ref, 0.0)
    z_c = z0.copy()
    act_c = np.empty_like(z_c)
    kernel.bias_relu(z_c, bias, act_c)
    if not (
        np.array_equal(z_ref.view(np.int64), z_c.view(np.int64))
        and np.array_equal(act_ref.view(np.int64), act_c.view(np.int64))
    ):
        return False
    z_alias = z0.copy()
    kernel.bias_relu(z_alias, bias, z_alias)
    if not np.array_equal(act_ref.view(np.int64), z_alias.view(np.int64)):
        return False
    # Pair bias add (+ ReLU) over a (2, batch, units) stacked layer, with
    # the two bias halves living `half` bytes apart like the real pair
    # parameter buffer (strided (2, 1, units) view), relu and no-relu forms.
    units, half_elems, off = 23, 40, 3
    pair_flat = rng.normal(size=off + half_elems + units)
    pair_b = np.lib.stride_tricks.as_strided(
        pair_flat[off : off + units],
        shape=(2, 1, units),
        strides=(half_elems * pair_flat.itemsize, 0, pair_flat.itemsize),
    )
    zp0 = rng.normal(size=(2, 17, units))
    for relu in (True, False):
        zp_ref = zp0.copy()
        zp_ref += pair_b
        if relu:
            np.maximum(zp_ref, 0.0, out=zp_ref)
        zp_c = zp0.copy()
        kernel.pair_bias_relu(zp_c, pair_b, relu)
        if not np.array_equal(zp_ref.view(np.int64), zp_c.view(np.int64)):
            return False
    # Double-DQN TD targets from the biasless final pair layer, including
    # an exact post-bias tie (first occurrence must win), a NaN mid-row and
    # a NaN at position 0 (NumPy argmax returns the first NaN's index).
    actions, bq_half, bq_off = 5, 12, 2
    bq_flat = rng.normal(size=bq_off + bq_half + actions)
    bq = np.lib.stride_tricks.as_strided(
        bq_flat[bq_off : bq_off + actions],
        shape=(2, 1, actions),
        strides=(bq_half * bq_flat.itemsize, 0, bq_flat.itemsize),
    )
    zq = rng.normal(size=(2, 9, actions))
    bq_flat[bq_off + 1] = 0.25
    bq_flat[bq_off + 4] = 0.25
    zq[0, 2] = 0.0
    zq[0, 2, 1] = 3.5
    zq[0, 2, 4] = 3.5
    zq[0, 1, 2] = np.nan
    zq[0, 3, 0] = np.nan
    rewards_q = rng.normal(size=9)
    discount_q = 0.9
    zq_biased = zq + bq
    best_q = np.argmax(zq_biased[0], axis=1)
    tv = zq_biased[1][np.arange(9), best_q]
    out_ref = (tv * discount_q) + rewards_q
    out_c = np.empty(9)
    kernel.pair_q_targets(zq, bq, discount_q, rewards_q, out_c)
    if not np.array_equal(out_ref.view(np.int64), out_c.view(np.int64)):
        return False
    # Fused gather + Huber prep + gradient scatter vs. the NumPy take /
    # huber sequence / fill-and-fancy-index scatter, with errors on both
    # sides of delta.
    hb, ha = 13, 5
    outs = rng.normal(scale=3.0, size=(hb, ha))
    taken = rng.integers(ha, size=hb)
    fi = (np.arange(hb) * ha + taken).astype(np.intp)
    targs_h = rng.normal(size=hb)
    preds_h = outs.reshape(-1)[fi]
    err_h = preds_h - targs_h
    abs_h = np.abs(err_h)
    quad_h = np.minimum(abs_h, delta)
    losses_href = 0.5 * (quad_h * quad_h) + delta * (abs_h - quad_h)
    grad_vals = np.minimum(np.maximum(err_h, -delta), delta) / float(hb)
    grad_flat_ref = np.zeros(hb * ha)
    grad_flat_ref[fi] = grad_vals
    losses_hc = np.empty(hb)
    grad_flat_c = np.empty(hb * ha)
    kernel.q_huber_scatter_raw(
        hb, ha, outs.ctypes.data, fi.ctypes.data, targs_h.ctypes.data,
        delta, float(hb), losses_hc.ctypes.data, grad_flat_c.ctypes.data,
    )
    return bool(
        np.array_equal(losses_href.view(np.int64), losses_hc.view(np.int64))
        and np.array_equal(grad_flat_ref.view(np.int64), grad_flat_c.view(np.int64))
    )


def _cache_dir() -> Path:
    """Per-user, owner-only cache directory for the compiled library.

    Never a shared world-writable location: loading a ``.so`` from a path
    another local user can pre-create would be code injection.  The
    directory is created 0700 and its ownership verified before use.
    """
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    path = Path(base) / "repro-fused"
    path.mkdir(mode=0o700, parents=True, exist_ok=True)
    stat = path.stat()
    if hasattr(os, "getuid") and stat.st_uid != os.getuid():
        raise PermissionError(f"{path} is not owned by the current user")
    if stat.st_mode & 0o022:
        raise PermissionError(f"{path} is writable by other users")
    return path


def _cpu_tag() -> str:
    """A string identifying the CPU the kernel is compiled for.

    ``-march=native`` bakes the build host's ISA extensions into the
    binary, so the cache key must change when the CPU does (think NFS home
    directories shared across heterogeneous cluster nodes — loading an
    AVX-512 build on an older core would SIGILL, which no Python-level
    fallback can catch).
    """
    try:
        with open("/proc/cpuinfo") as handle:
            for line in handle:
                if line.startswith(("flags", "Features")):
                    return line.strip()
    except OSError:
        pass
    import platform

    return platform.machine() + platform.processor()


def _compile() -> ctypes.CDLL | None:
    digest = hashlib.sha256(
        (_SOURCE + " ".join(_CFLAGS) + _cpu_tag()).encode()
    ).hexdigest()[:16]
    cache_dir = _cache_dir()
    lib_path = cache_dir / f"adam_{digest}.so"
    if not lib_path.exists():
        src_path = cache_dir / f"adam_{digest}.c"
        src_path.write_text(_SOURCE)
        tmp_path = cache_dir / f"adam_{digest}.{os.getpid()}.so"
        result = subprocess.run(
            ["cc", *_CFLAGS, "-o", str(tmp_path), str(src_path)],
            capture_output=True,
            timeout=60,
        )
        if result.returncode != 0 or not tmp_path.exists():
            return None
        os.replace(tmp_path, lib_path)  # atomic for concurrent processes
    return ctypes.CDLL(str(lib_path))


_kernel: _FusedAdam | None = None
_resolved = False


def fused_adam() -> _FusedAdam | None:
    """The verified fused-Adam kernel, or ``None`` if unavailable.

    Resolution (compile + bitwise self-test) happens once per process; the
    result is cached, including negative results.
    """
    global _kernel, _resolved
    if _resolved:
        return _kernel
    _resolved = True
    if os.environ.get("REPRO_FUSED", "1") == "0":
        _obs.event("fused.resolved", status="disabled")
        return None
    try:
        lib = _compile()
        if lib is not None:
            kernel = _FusedAdam(lib)
            if _self_test(kernel):
                _kernel = kernel
    except Exception:
        _kernel = None
    _obs.event(
        "fused.resolved", status="fused" if _kernel is not None else "numpy"
    )
    return _kernel


def fused_fleet() -> _FusedAdam | None:
    """The verified fleet kernels, or ``None`` if unavailable.

    The fleet kernels live in the same compiled library as the Adam ones
    and share its resolution: one compile + bitwise self-test per process,
    one ``REPRO_FUSED=0`` kill switch for everything.  The separate entry
    point exists so fleet call sites (:mod:`repro.hardware.fleet`,
    :mod:`repro.workload.fleet`, :mod:`repro.detection.fleet`,
    :mod:`repro.rl.slimmable`) read as requesting fleet kernels, not an
    optimizer.
    """
    return fused_adam()


def kernel_status() -> str:
    """Kernel selection state without forcing a compile.

    One of ``"disabled"`` (``REPRO_FUSED=0``), ``"unresolved"`` (no call
    site has asked for a kernel yet this process), ``"fused"`` (compiled
    and bitwise-verified) or ``"numpy"`` (resolution ran and fell back).
    Used by the obs sink to stamp run summaries; unlike
    :func:`fused_adam` it never triggers compilation.
    """
    if os.environ.get("REPRO_FUSED", "1") == "0":
        return "disabled"
    if not _resolved:
        return "unresolved"
    return "fused" if _kernel is not None else "numpy"
