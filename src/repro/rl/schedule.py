"""Learning-rate and exploration schedules.

Four schedule shapes are used in the reproduction:

* cosine decay — the learning-rate schedule of the Lotus Q-network training;
* linear and exponential decay — the usual epsilon-greedy exploration
  schedules;
* sinusoidal decay — the epsilon_t of the cool-down action selection, which
  decays "sinusoidally as the agent accumulates more experience in handling
  the overheating case" (paper §4.3.5).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import ConfigurationError


class Schedule(ABC):
    """Maps a non-negative step counter to a scalar value."""

    @abstractmethod
    def value(self, step: int) -> float:
        """Value of the schedule at ``step``."""

    def __call__(self, step: int) -> float:
        return self.value(step)


def _check_step(step: int) -> None:
    if step < 0:
        raise ConfigurationError("schedule step must be non-negative")


@dataclass(frozen=True)
class ConstantSchedule(Schedule):
    """A constant value — useful for disabling decay in ablations."""

    constant: float

    def value(self, step: int) -> float:
        _check_step(step)
        return self.constant


@dataclass(frozen=True)
class LinearDecaySchedule(Schedule):
    """Linear decay from ``initial`` to ``final`` over ``decay_steps``."""

    initial: float
    final: float
    decay_steps: int

    def __post_init__(self) -> None:
        if self.decay_steps <= 0:
            raise ConfigurationError("decay_steps must be positive")

    def value(self, step: int) -> float:
        _check_step(step)
        fraction = min(1.0, step / self.decay_steps)
        return self.initial + fraction * (self.final - self.initial)


@dataclass(frozen=True)
class ExponentialDecaySchedule(Schedule):
    """Exponential decay ``initial * rate**step`` floored at ``final``."""

    initial: float
    final: float
    rate: float

    def __post_init__(self) -> None:
        if not 0.0 < self.rate <= 1.0:
            raise ConfigurationError("rate must lie in (0, 1]")

    def value(self, step: int) -> float:
        _check_step(step)
        return max(self.final, self.initial * self.rate**step)


@dataclass(frozen=True)
class CosineDecaySchedule(Schedule):
    """Cosine decay from ``initial`` to ``final`` over ``decay_steps``.

    This is the learning-rate schedule used for Lotus training (lr 0.01 with
    cosine decay over the training iterations).
    """

    initial: float
    decay_steps: int
    final: float = 0.0

    def __post_init__(self) -> None:
        if self.decay_steps <= 0:
            raise ConfigurationError("decay_steps must be positive")
        if self.final > self.initial:
            raise ConfigurationError("final value must not exceed the initial value")

    def value(self, step: int) -> float:
        _check_step(step)
        fraction = min(1.0, step / self.decay_steps)
        cosine = 0.5 * (1.0 + math.cos(math.pi * fraction))
        return self.final + (self.initial - self.final) * cosine


@dataclass(frozen=True)
class SinusoidalDecaySchedule(Schedule):
    """Sinusoidal decay used by the epsilon_t-greedy cool-down selection.

    The value follows the first half-period of a cosine, decaying from
    ``initial`` to ``final`` as the trigger count grows to ``decay_triggers``
    and staying at ``final`` afterwards.  Unlike the exploration epsilon the
    step counter here is the number of times the cool-down action has been
    *triggered*, so the agent only relinquishes the safety net as it actually
    accumulates overheating experience.
    """

    initial: float
    decay_triggers: int
    final: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.initial <= 1.0:
            raise ConfigurationError("initial value must lie in [0, 1]")
        if not 0.0 <= self.final <= self.initial:
            raise ConfigurationError("final must lie in [0, initial]")
        if self.decay_triggers <= 0:
            raise ConfigurationError("decay_triggers must be positive")

    def value(self, step: int) -> float:
        _check_step(step)
        fraction = min(1.0, step / self.decay_triggers)
        cosine = 0.5 * (1.0 + math.cos(math.pi * fraction))
        return self.final + (self.initial - self.final) * cosine
