"""Gradient-descent optimizers with optional per-parameter update masks.

The masks matter for the slimmable Q-network: when a batch is trained at the
reduced width, only the active slice of each layer may be touched — the
paper is explicit that "the remaining weights are not updated" — so the
optimizer must skip masked-out entries entirely (including their moment
estimates, in the case of Adam).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError


class Optimizer:
    """Base class: holds the learning rate and the step counter."""

    def __init__(self, learning_rate: float):
        if learning_rate <= 0:
            raise ConfigurationError("learning rate must be positive")
        self.learning_rate = learning_rate
        self.step_count = 0

    def set_learning_rate(self, learning_rate: float) -> None:
        """Update the learning rate (called by schedules between steps)."""
        if learning_rate <= 0:
            raise ConfigurationError("learning rate must be positive")
        self.learning_rate = learning_rate

    def step(
        self,
        parameters: Sequence[np.ndarray],
        gradients: Sequence[np.ndarray],
        masks: Sequence[np.ndarray] | None = None,
    ) -> None:
        """Apply one in-place update to ``parameters``."""
        raise NotImplementedError


def _validate_step_args(
    parameters: Sequence[np.ndarray],
    gradients: Sequence[np.ndarray],
    masks: Sequence[np.ndarray] | None,
) -> None:
    if len(parameters) != len(gradients):
        raise ConfigurationError(
            f"got {len(parameters)} parameters but {len(gradients)} gradients"
        )
    if masks is not None and len(masks) != len(parameters):
        raise ConfigurationError(
            f"got {len(parameters)} parameters but {len(masks)} masks"
        )
    for index, (param, grad) in enumerate(zip(parameters, gradients)):
        if param.shape != grad.shape:
            raise ConfigurationError(
                f"parameter {index} shape {param.shape} != gradient shape {grad.shape}"
            )
        if masks is not None and masks[index].shape != param.shape:
            raise ConfigurationError(
                f"parameter {index} shape {param.shape} != mask shape {masks[index].shape}"
            )


class Sgd(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0):
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError("momentum must lie in [0, 1)")
        self.momentum = momentum
        self._velocity: List[np.ndarray] | None = None

    def step(
        self,
        parameters: Sequence[np.ndarray],
        gradients: Sequence[np.ndarray],
        masks: Sequence[np.ndarray] | None = None,
    ) -> None:
        _validate_step_args(parameters, gradients, masks)
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in parameters]
        self.step_count += 1
        for index, (param, grad) in enumerate(zip(parameters, gradients)):
            mask = masks[index] if masks is not None else None
            velocity = self._velocity[index]
            if mask is None:
                velocity[...] = self.momentum * velocity + grad
                param -= self.learning_rate * velocity
            else:
                velocity[mask] = self.momentum * velocity[mask] + grad[mask]
                param[mask] -= self.learning_rate * velocity[mask]


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with masked updates.

    The paper trains the Lotus Q-network with Adam, ``beta1 = 0.9``,
    ``beta2 = 0.99`` and a 0.01 learning rate under cosine decay; those are
    the defaults here.
    """

    def __init__(
        self,
        learning_rate: float = 0.01,
        beta1: float = 0.9,
        beta2: float = 0.99,
        epsilon: float = 1e-8,
    ):
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigurationError("beta1 and beta2 must lie in [0, 1)")
        if epsilon <= 0:
            raise ConfigurationError("epsilon must be positive")
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._first_moment: List[np.ndarray] | None = None
        self._second_moment: List[np.ndarray] | None = None

    def step(
        self,
        parameters: Sequence[np.ndarray],
        gradients: Sequence[np.ndarray],
        masks: Sequence[np.ndarray] | None = None,
    ) -> None:
        _validate_step_args(parameters, gradients, masks)
        if self._first_moment is None:
            self._first_moment = [np.zeros_like(p) for p in parameters]
            self._second_moment = [np.zeros_like(p) for p in parameters]
        assert self._second_moment is not None
        self.step_count += 1
        bias_correction1 = 1.0 - self.beta1**self.step_count
        bias_correction2 = 1.0 - self.beta2**self.step_count
        for index, (param, grad) in enumerate(zip(parameters, gradients)):
            mask = masks[index] if masks is not None else None
            m = self._first_moment[index]
            v = self._second_moment[index]
            if mask is None:
                m[...] = self.beta1 * m + (1.0 - self.beta1) * grad
                v[...] = self.beta2 * v + (1.0 - self.beta2) * grad**2
                m_hat = m / bias_correction1
                v_hat = v / bias_correction2
                param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
            else:
                m[mask] = self.beta1 * m[mask] + (1.0 - self.beta1) * grad[mask]
                v[mask] = self.beta2 * v[mask] + (1.0 - self.beta2) * grad[mask] ** 2
                m_hat = m[mask] / bias_correction1
                v_hat = v[mask] / bias_correction2
                param[mask] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
