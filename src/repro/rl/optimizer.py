"""Gradient-descent optimizers with masked, sliced or flat partial updates.

Partial updates matter for the slimmable Q-network: when a batch is trained
at the reduced width, only the active slice of each layer may be touched —
the paper is explicit that "the remaining weights are not updated" — so the
optimizer must skip inactive entries entirely (including their moment
estimates, in the case of Adam).

Three entry points share one moment store:

* :meth:`Optimizer.step` — full-shape gradients with optional boolean masks
  (the historical interface, kept for compatibility and as the frozen
  baseline in :mod:`repro.perf.legacy`).
* :meth:`Optimizer.step_sliced` — gradients already sliced to the active
  extents plus an index region per parameter; parameters and moments are
  updated through contiguous views with reusable scratch buffers — no
  boolean fancy-indexing, no per-step temporaries.
* :meth:`Optimizer.step_flat` — the full-width fast path: when every
  parameter is active and the network backs its parameters by one
  contiguous buffer (:attr:`SlimmableMLP.flat_parameters`), the whole
  update runs as a dozen whole-buffer ufunc calls instead of a dozen *per
  parameter*.

All three apply the exact same elementwise operations in the same order, so
a seeded run produces bit-identical parameters whichever path executed it.
Moment estimates are allocated as views into one flat buffer per moment, in
parameter order, which is what makes the flat path possible.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.rl.fused import fused_adam

#: Index region addressing the active part of one parameter array: a slice
#: tuple such as ``(slice(0, in_active), slice(0, out_active))`` for a weight
#: matrix or ``(slice(0, out_active),)`` for a bias vector.
Region = Union[Tuple[slice, ...], slice]


def _flat_views(arrays: Sequence[np.ndarray]) -> Tuple[np.ndarray, List[np.ndarray]]:
    """One flat zero buffer plus per-array reshaped views, in order."""
    total = sum(int(a.size) for a in arrays)
    flat = np.zeros(total)
    views: List[np.ndarray] = []
    offset = 0
    for a in arrays:
        views.append(flat[offset : offset + a.size].reshape(a.shape))
        offset += a.size
    return flat, views


class Optimizer:
    """Base class: holds the learning rate and the step counter."""

    def __init__(self, learning_rate: float):
        if learning_rate <= 0:
            raise ConfigurationError("learning rate must be positive")
        self.learning_rate = learning_rate
        self.step_count = 0

    def set_learning_rate(self, learning_rate: float) -> None:
        """Update the learning rate (called by schedules between steps)."""
        if learning_rate <= 0:
            raise ConfigurationError("learning rate must be positive")
        self.learning_rate = learning_rate

    def step(
        self,
        parameters: Sequence[np.ndarray],
        gradients: Sequence[np.ndarray],
        masks: Sequence[np.ndarray] | None = None,
    ) -> None:
        """Apply one in-place update to ``parameters``."""
        raise NotImplementedError

    def step_sliced(
        self,
        parameters: Sequence[np.ndarray],
        gradients: Sequence[np.ndarray],
        regions: Sequence[Region],
    ) -> None:
        """Apply one in-place update to the active region of each parameter.

        Args:
            parameters: Full parameter arrays.
            gradients: Gradients already sliced to the active region, i.e.
                ``gradients[i].shape == parameters[i][regions[i]].shape``.
            regions: One index region per parameter (see :data:`Region`).
        """
        raise NotImplementedError

    def step_flat(
        self,
        parameters: Sequence[np.ndarray],
        flat_parameters: np.ndarray,
        flat_gradients: np.ndarray,
    ) -> None:
        """Full-width update over contiguous parameter/gradient buffers.

        Args:
            parameters: The individual parameter arrays (used only to size
                the moment store on the first step; they must be views into
                ``flat_parameters`` in order).
            flat_parameters: Contiguous buffer backing every parameter.
            flat_gradients: Gradient buffer with the same layout.  Consumed
                as scratch — its contents are garbage afterwards.
        """
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Copyable snapshot of the optimizer's mutable state (moments,
        step counter, learning rate) for checkpointing."""
        raise NotImplementedError

    def load_state_dict(self, parameters: Sequence[np.ndarray], payload: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place.

        ``parameters`` sizes the moment store when the snapshot carries
        moments (the parameter list must match the one training used).
        """
        raise NotImplementedError


def _validate_step_args(
    parameters: Sequence[np.ndarray],
    gradients: Sequence[np.ndarray],
    masks: Sequence[np.ndarray] | None,
) -> None:
    if len(parameters) != len(gradients):
        raise ConfigurationError(
            f"got {len(parameters)} parameters but {len(gradients)} gradients"
        )
    if masks is not None and len(masks) != len(parameters):
        raise ConfigurationError(
            f"got {len(parameters)} parameters but {len(masks)} masks"
        )
    for index, (param, grad) in enumerate(zip(parameters, gradients)):
        if param.shape != grad.shape:
            raise ConfigurationError(
                f"parameter {index} shape {param.shape} != gradient shape {grad.shape}"
            )
        if masks is not None and masks[index].shape != param.shape:
            raise ConfigurationError(
                f"parameter {index} shape {param.shape} != mask shape {masks[index].shape}"
            )


def _validate_sliced_args(
    parameters: Sequence[np.ndarray],
    gradients: Sequence[np.ndarray],
    regions: Sequence[Region],
) -> None:
    if len(parameters) != len(gradients) or len(parameters) != len(regions):
        raise ConfigurationError(
            f"got {len(parameters)} parameters, {len(gradients)} gradients and "
            f"{len(regions)} regions"
        )
    for index, (param, grad, region) in enumerate(zip(parameters, gradients, regions)):
        region_shape = param[region].shape
        if grad.shape != region_shape:
            raise ConfigurationError(
                f"parameter {index}: gradient shape {grad.shape} != active "
                f"region shape {region_shape}"
            )


class Sgd(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0):
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError("momentum must lie in [0, 1)")
        self.momentum = momentum
        self._velocity: List[np.ndarray] | None = None
        self._velocity_flat: np.ndarray | None = None

    def _ensure_state(self, parameters: Sequence[np.ndarray]) -> None:
        if self._velocity is None:
            self._velocity_flat, self._velocity = _flat_views(parameters)

    def step(
        self,
        parameters: Sequence[np.ndarray],
        gradients: Sequence[np.ndarray],
        masks: Sequence[np.ndarray] | None = None,
    ) -> None:
        _validate_step_args(parameters, gradients, masks)
        self._ensure_state(parameters)
        self.step_count += 1
        for index, (param, grad) in enumerate(zip(parameters, gradients)):
            mask = masks[index] if masks is not None else None
            velocity = self._velocity[index]
            if mask is None:
                velocity[...] = self.momentum * velocity + grad
                param -= self.learning_rate * velocity
            else:
                velocity[mask] = self.momentum * velocity[mask] + grad[mask]
                param[mask] -= self.learning_rate * velocity[mask]

    def step_sliced(
        self,
        parameters: Sequence[np.ndarray],
        gradients: Sequence[np.ndarray],
        regions: Sequence[Region],
    ) -> None:
        _validate_sliced_args(parameters, gradients, regions)
        self._ensure_state(parameters)
        self.step_count += 1
        for param, grad, region, velocity in zip(
            parameters, gradients, regions, self._velocity
        ):
            v = velocity[region]
            v *= self.momentum
            v += grad
            param[region] -= self.learning_rate * v

    def step_flat(
        self,
        parameters: Sequence[np.ndarray],
        flat_parameters: np.ndarray,
        flat_gradients: np.ndarray,
    ) -> None:
        self._ensure_state(parameters)
        v = self._velocity_flat
        if v.size != flat_parameters.size:
            raise ConfigurationError(
                f"flat parameter buffer has {flat_parameters.size} entries, "
                f"optimizer state has {v.size}"
            )
        self.step_count += 1
        v *= self.momentum
        v += flat_gradients
        np.multiply(v, self.learning_rate, out=flat_gradients)
        flat_parameters -= flat_gradients

    def state_dict(self) -> dict:
        return {
            "kind": "sgd",
            "learning_rate": float(self.learning_rate),
            "momentum": float(self.momentum),
            "step_count": int(self.step_count),
            "velocity": None if self._velocity_flat is None else self._velocity_flat.copy(),
        }

    def load_state_dict(self, parameters: Sequence[np.ndarray], payload: dict) -> None:
        if payload.get("kind") != "sgd":
            raise ConfigurationError(
                f"expected an 'sgd' optimizer snapshot, got {payload.get('kind')!r}"
            )
        self.set_learning_rate(float(payload["learning_rate"]))
        self.step_count = int(payload["step_count"])
        velocity = payload.get("velocity")
        if velocity is not None:
            self._ensure_state(parameters)
            velocity = np.asarray(velocity, dtype=float)
            if velocity.shape != self._velocity_flat.shape:
                raise ConfigurationError(
                    f"velocity snapshot has shape {velocity.shape}, optimizer "
                    f"state has {self._velocity_flat.shape}"
                )
            self._velocity_flat[...] = velocity
        elif self._velocity_flat is not None:
            # Snapshot taken before the first step: rolling a live optimizer
            # back must clear its momentum, not keep it.
            self._velocity_flat.fill(0.0)


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with masked, sliced and flat updates.

    The paper trains the Lotus Q-network with Adam, ``beta1 = 0.9``,
    ``beta2 = 0.99`` and a 0.01 learning rate under cosine decay; those are
    the defaults here.
    """

    def __init__(
        self,
        learning_rate: float = 0.01,
        beta1: float = 0.9,
        beta2: float = 0.99,
        epsilon: float = 1e-8,
    ):
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigurationError("beta1 and beta2 must lie in [0, 1)")
        if epsilon <= 0:
            raise ConfigurationError("epsilon must be positive")
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._first_moment: List[np.ndarray] | None = None
        self._second_moment: List[np.ndarray] | None = None
        self._m_flat: np.ndarray | None = None
        self._v_flat: np.ndarray | None = None
        self._flat_scratch: np.ndarray | None = None
        self._sliced_scratch: dict[Tuple[int, ...], Tuple[np.ndarray, np.ndarray]] = {}

    def _ensure_state(self, parameters: Sequence[np.ndarray]) -> None:
        if self._first_moment is None:
            self._m_flat, self._first_moment = _flat_views(parameters)
            self._v_flat, self._second_moment = _flat_views(parameters)
            self._flat_scratch = np.zeros(self._m_flat.size)

    def _scratch_for(self, shape: Tuple[int, ...]) -> Tuple[np.ndarray, np.ndarray]:
        scratch = self._sliced_scratch.get(shape)
        if scratch is None:
            scratch = (np.empty(shape), np.empty(shape))
            self._sliced_scratch[shape] = scratch
        return scratch

    def step(
        self,
        parameters: Sequence[np.ndarray],
        gradients: Sequence[np.ndarray],
        masks: Sequence[np.ndarray] | None = None,
    ) -> None:
        _validate_step_args(parameters, gradients, masks)
        self._ensure_state(parameters)
        assert self._second_moment is not None
        self.step_count += 1
        bias_correction1 = 1.0 - self.beta1**self.step_count
        bias_correction2 = 1.0 - self.beta2**self.step_count
        for index, (param, grad) in enumerate(zip(parameters, gradients)):
            mask = masks[index] if masks is not None else None
            m = self._first_moment[index]
            v = self._second_moment[index]
            if mask is None:
                m[...] = self.beta1 * m + (1.0 - self.beta1) * grad
                v[...] = self.beta2 * v + (1.0 - self.beta2) * grad**2
                m_hat = m / bias_correction1
                v_hat = v / bias_correction2
                param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
            else:
                m[mask] = self.beta1 * m[mask] + (1.0 - self.beta1) * grad[mask]
                v[mask] = self.beta2 * v[mask] + (1.0 - self.beta2) * grad[mask] ** 2
                m_hat = m[mask] / bias_correction1
                v_hat = v[mask] / bias_correction2
                param[mask] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def step_sliced(
        self,
        parameters: Sequence[np.ndarray],
        gradients: Sequence[np.ndarray],
        regions: Sequence[Region],
    ) -> None:
        _validate_sliced_args(parameters, gradients, regions)
        self._ensure_state(parameters)
        assert self._second_moment is not None
        self.step_count += 1
        bias_correction1 = 1.0 - self.beta1**self.step_count
        bias_correction2 = 1.0 - self.beta2**self.step_count
        one_minus_beta1 = 1.0 - self.beta1
        one_minus_beta2 = 1.0 - self.beta2
        for index, (param, grad, region) in enumerate(
            zip(parameters, gradients, regions)
        ):
            # Views into the active rectangle plus two reusable scratch
            # buffers; every operation mirrors the masked path elementwise
            # (same operand pairs, same order), so seeded runs stay
            # bit-identical while allocating nothing.
            m = self._first_moment[index][region]
            v = self._second_moment[index][region]
            s1, s2 = self._scratch_for(grad.shape)
            m *= self.beta1
            np.multiply(grad, one_minus_beta1, out=s1)
            m += s1
            v *= self.beta2
            np.multiply(grad, grad, out=s1)
            np.multiply(s1, one_minus_beta2, out=s1)
            v += s1
            np.divide(m, bias_correction1, out=s1)
            s1 *= self.learning_rate
            np.divide(v, bias_correction2, out=s2)
            np.sqrt(s2, out=s2)
            s2 += self.epsilon
            s1 /= s2
            param[region] -= s1

    def plan_step(
        self,
        parameters: Sequence[np.ndarray],
        gradients: Sequence[np.ndarray],
        regions: Sequence[Region],
    ):
        """Prepare a fused one-call step plan for these exact buffers.

        Returns an opaque plan for :meth:`step_planned`, or ``None`` when
        the fused kernel is unavailable or the buffers do not qualify
        (non-contiguous gradients, >2-D regions).  The plan captures raw
        pointers: every array must stay alive and in place — true for the
        flat-backed network parameters, the learner's gradient scratch and
        the optimizer's own moments.
        """
        kernel = fused_adam()
        if kernel is None:
            return None
        if not all(g.flags.c_contiguous for g in gradients):
            return None
        self._ensure_state(parameters)
        assert self._second_moment is not None
        param_views = [p[r] for p, r in zip(parameters, regions)]
        m_views = [m[r] for m, r in zip(self._first_moment, regions)]
        v_views = [v[r] for v, r in zip(self._second_moment, regions)]
        for view in param_views:
            if view.ndim > 2 or view.strides[-1] != view.itemsize:
                return None
        return kernel.make_plan(param_views, list(gradients), m_views, v_views)

    def step_planned(self, plan) -> None:
        """Execute a plan from :meth:`plan_step`: one fused C call.

        Bitwise-identical to :meth:`step_sliced` on the same buffers
        (verified at kernel load time).
        """
        kernel = fused_adam()
        self.step_count += 1
        kernel.step_multi(
            plan,
            self.learning_rate,
            self.beta1,
            self.beta2,
            self.epsilon,
            1.0 - self.beta1**self.step_count,
            1.0 - self.beta2**self.step_count,
        )

    def step_flat(
        self,
        parameters: Sequence[np.ndarray],
        flat_parameters: np.ndarray,
        flat_gradients: np.ndarray,
    ) -> None:
        self._ensure_state(parameters)
        m = self._m_flat
        v = self._v_flat
        s = self._flat_scratch
        if m.size != flat_parameters.size:
            raise ConfigurationError(
                f"flat parameter buffer has {flat_parameters.size} entries, "
                f"optimizer state has {m.size}"
            )
        self.step_count += 1
        bias_correction1 = 1.0 - self.beta1**self.step_count
        bias_correction2 = 1.0 - self.beta2**self.step_count
        kernel = fused_adam()
        if kernel is not None:
            # Single C pass over the whole buffer — bitwise-identical to
            # the NumPy sequence below (verified at kernel load).
            kernel.step_flat(
                flat_parameters,
                flat_gradients,
                m,
                v,
                self.learning_rate,
                self.beta1,
                self.beta2,
                self.epsilon,
                bias_correction1,
                bias_correction2,
            )
            return
        m *= self.beta1
        np.multiply(flat_gradients, 1.0 - self.beta1, out=s)
        m += s
        v *= self.beta2
        np.multiply(flat_gradients, flat_gradients, out=flat_gradients)
        np.multiply(flat_gradients, 1.0 - self.beta2, out=flat_gradients)
        v += flat_gradients
        np.divide(m, bias_correction1, out=s)
        s *= self.learning_rate
        np.divide(v, bias_correction2, out=flat_gradients)
        np.sqrt(flat_gradients, out=flat_gradients)
        flat_gradients += self.epsilon
        s /= flat_gradients
        flat_parameters -= s

    def state_dict(self) -> dict:
        return {
            "kind": "adam",
            "learning_rate": float(self.learning_rate),
            "beta1": float(self.beta1),
            "beta2": float(self.beta2),
            "epsilon": float(self.epsilon),
            "step_count": int(self.step_count),
            "first_moment": None if self._m_flat is None else self._m_flat.copy(),
            "second_moment": None if self._v_flat is None else self._v_flat.copy(),
        }

    def load_state_dict(self, parameters: Sequence[np.ndarray], payload: dict) -> None:
        if payload.get("kind") != "adam":
            raise ConfigurationError(
                f"expected an 'adam' optimizer snapshot, got {payload.get('kind')!r}"
            )
        self.set_learning_rate(float(payload["learning_rate"]))
        self.step_count = int(payload["step_count"])
        first = payload.get("first_moment")
        second = payload.get("second_moment")
        if (first is None) != (second is None):
            raise ConfigurationError("Adam snapshot must carry both moments or neither")
        if first is not None:
            self._ensure_state(parameters)
            first = np.asarray(first, dtype=float)
            second = np.asarray(second, dtype=float)
            if first.shape != self._m_flat.shape or second.shape != self._v_flat.shape:
                raise ConfigurationError(
                    f"moment snapshots have shapes {first.shape}/{second.shape}, "
                    f"optimizer state has {self._m_flat.shape}"
                )
            self._m_flat[...] = first
            self._v_flat[...] = second
        elif self._m_flat is not None:
            # Snapshot taken before the first step: rolling a live optimizer
            # back must clear its moments, not keep them.
            self._m_flat.fill(0.0)
            self._v_flat.fill(0.0)
