"""Slimmable multi-layer perceptron.

The Lotus Q-network is a single MLP executed at two widths: the Q-values of
the first state-action pair of each frame (no proposal count yet) are
computed with only the first ``alpha x`` channels of every hidden layer,
while the second pair uses the full network.  The two computations therefore
share the bulk of their parameters, preserving the correlation between the
two decisions of the same frame — the core architectural idea of §4.3.4.

:class:`SlimmableMLP` implements this with plain NumPy: ``forward`` takes a
width multiplier and only uses the active slice of each hidden layer.  The
training path uses :meth:`SlimmableMLP.backward_sliced`, which returns
gradients *sliced to the active extents* plus the ``(in_active, out_active)``
extents themselves, so neither the backward pass nor the optimizer ever
allocates full-shape zero arrays or boolean masks; the optimizer updates the
active rectangle through views (the paper: "the remaining weights are not
updated").  The mask-based :meth:`SlimmableMLP.backward` remains as a
compatibility wrapper that pads the sliced gradients back to full shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.rl.fused import fused_adam, fused_fleet
from repro.rl.network import he_init


@dataclass
class ForwardCache:
    """Intermediate activations stored by :meth:`SlimmableMLP.forward`.

    Attributes:
        inputs: The input batch.
        pre_activations: Pre-activation values of every layer.
        activations: Post-activation values of every layer (the last entry
            is the network output).
        active_units: The number of active units per layer boundary used for
            this pass (length ``num_layers + 1``).
        width: The width multiplier the pass was run at.
    """

    inputs: np.ndarray
    pre_activations: List[np.ndarray]
    activations: List[np.ndarray]
    active_units: List[int]
    width: float


class SlimmableMLP:
    """An MLP whose hidden layers can run at a reduced width.

    Args:
        input_dim: Number of input features (always fully used).
        hidden_dims: Sizes of the hidden layers at full width.
        output_dim: Number of outputs (always fully used — every action must
            have a Q-value at every width).
        widths: The width multipliers the network supports; ``1.0`` must be
            included.  The paper uses ``(0.75, 1.0)``.
        rng: Random generator for weight initialisation.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dims: Sequence[int],
        output_dim: int,
        widths: Sequence[float] = (0.75, 1.0),
        rng: np.random.Generator | None = None,
    ):
        if input_dim <= 0 or output_dim <= 0:
            raise ConfigurationError("input_dim and output_dim must be positive")
        if not hidden_dims:
            raise ConfigurationError("at least one hidden layer is required")
        if any(h <= 0 for h in hidden_dims):
            raise ConfigurationError("hidden layer sizes must be positive")
        widths = tuple(sorted(set(float(w) for w in widths)))
        if not widths or widths[-1] != 1.0:
            raise ConfigurationError("widths must include 1.0")
        if widths[0] <= 0:
            raise ConfigurationError("widths must be positive")
        self.input_dim = int(input_dim)
        self.hidden_dims = tuple(int(h) for h in hidden_dims)
        self.output_dim = int(output_dim)
        self.widths = widths
        rng = rng if rng is not None else np.random.default_rng(0)

        layer_dims = [self.input_dim, *self.hidden_dims, self.output_dim]
        self._allocate_flat(layer_dims)
        for layer, (fan_in, fan_out) in enumerate(zip(layer_dims[:-1], layer_dims[1:])):
            w, b = he_init(fan_in, fan_out, rng)
            self.weights[layer][...] = w
            self.biases[layer][...] = b
        self._active_units_cache: Dict[float, List[int]] = {
            w: self._compute_active_units(w) for w in self.widths
        }
        self._layer_views_cache: Dict[float, List[Tuple[np.ndarray, np.ndarray]]] = {}
        self._backprop_scratch: Dict[Tuple[float, int], List[np.ndarray]] = {}
        self._forward_scratch: Dict[Tuple[float, int], ForwardCache] = {}
        # Precomputed (size, grad_addr, pre_addr) per hidden layer for the
        # fused ReLU-mask kernel; valid only for the scratch-backed cache
        # object stored alongside.
        self._mask_plans: Dict[Tuple[float, int], Tuple[ForwardCache, List[Tuple[int, int, int]]]] = {}

    def _allocate_flat(self, layer_dims: Sequence[int]) -> None:
        """Back all parameters by one contiguous buffer.

        ``flat_parameters`` is laid out as ``[w0, b0, w1, b1, ...]``;
        :attr:`weights` and :attr:`biases` are reshaped views into it.  The
        contiguous backing lets full-width optimizer steps run as a few
        whole-buffer ufuncs instead of dozens of per-parameter calls.
        Parameter mutation must always go through the views in place
        (``param[...] = ...``), never rebind them — which is what
        :meth:`set_state` and the optimizers do.
        """
        sizes = [
            fan_in * fan_out + fan_out
            for fan_in, fan_out in zip(layer_dims[:-1], layer_dims[1:])
        ]
        self._flat = np.zeros(sum(sizes))
        self._build_views()

    def _build_views(self) -> None:
        layer_dims = [self.input_dim, *self.hidden_dims, self.output_dim]
        self.weights = []
        self.biases = []
        offset = 0
        for fan_in, fan_out in zip(layer_dims[:-1], layer_dims[1:]):
            w_size = fan_in * fan_out
            self.weights.append(
                self._flat[offset : offset + w_size].reshape(fan_in, fan_out)
            )
            offset += w_size
            self.biases.append(self._flat[offset : offset + fan_out])
            offset += fan_out

    @property
    def flat_parameters(self) -> np.ndarray:
        """The contiguous buffer backing every parameter (``[w0, b0, ...]``)."""
        return self._flat

    def rebase(self, flat_buffer: np.ndarray) -> None:
        """Move the parameters into ``flat_buffer`` (same size, same layout).

        Copies the current parameter values into the given contiguous buffer
        and rebuilds every view on top of it.  Used by
        :class:`~repro.rl.dqn.DqnLearner` to co-locate the online and target
        networks in one pair buffer, which makes zero-copy *stacked* weight
        views across the two networks possible (both TD-bootstrap forwards
        in one batched matmul per layer).  Any previously obtained parameter
        views are invalidated.
        """
        if flat_buffer.shape != self._flat.shape:
            raise ConfigurationError(
                f"rebase buffer has shape {flat_buffer.shape}, "
                f"expected {self._flat.shape}"
            )
        flat_buffer[...] = self._flat
        self._flat = flat_buffer
        self._build_views()
        self._layer_views_cache = {}
        self._backprop_scratch = {}
        self._forward_scratch = {}
        self._mask_plans = {}

    def _active_for(self, width: float) -> List[int]:
        """Cached active-unit counts for ``width``, validating on a miss.

        The returned list is the cache entry itself — callers must not
        mutate it (the public :meth:`active_units_for_width` returns a
        copy).
        """
        active = self._active_units_cache.get(width)
        if active is None:
            active = self._active_units_cache[self._validate_width(width)]
        return active

    def _views_for(self, width: float) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Per-layer ``(weight_slice, bias_slice)`` views for ``width``, cached.

        Valid because parameters are only ever mutated in place.
        """
        views = self._layer_views_cache.get(width)
        if views is None:
            active = self._active_for(width)
            views = [
                (w[: active[i], : active[i + 1]], b[: active[i + 1]])
                for i, (w, b) in enumerate(zip(self.weights, self.biases))
            ]
            self._layer_views_cache[width] = views
        return views

    # -- structure ------------------------------------------------------------------

    @property
    def num_layers(self) -> int:
        """Number of dense layers (hidden layers + output layer)."""
        return len(self.weights)

    def _compute_active_units(self, width: float) -> List[int]:
        units = [self.input_dim]
        for hidden in self.hidden_dims:
            units.append(max(1, math.ceil(width * hidden)))
        units.append(self.output_dim)
        return units

    def active_units_for_width(self, width: float) -> List[int]:
        """Active unit counts at each layer boundary for a width multiplier.

        The input and output dimensions are always fully active; hidden
        layers are truncated to ``ceil(width * size)`` units (at least one).
        The counts are precomputed per configured width, so repeated calls
        (every forward pass) are dictionary lookups, not re-derivations.
        """
        return list(self._active_for(width))

    def _validate_width(self, width: float) -> float:
        """Map ``width`` onto the canonical configured value (with tolerance)."""
        for w in self.widths:
            if abs(width - w) < 1e-9:
                return w
        raise ConfigurationError(
            f"width {width} is not one of the configured widths {self.widths}"
        )

    # -- forward / backward -----------------------------------------------------------

    def forward(self, inputs: np.ndarray, width: float = 1.0) -> Tuple[np.ndarray, ForwardCache]:
        """Run the network at ``width``.

        Args:
            inputs: Batch of shape ``(batch, input_dim)`` (a single sample of
                shape ``(input_dim,)`` is also accepted).
            width: Width multiplier; must be one of :attr:`widths`.

        Returns:
            ``(outputs, cache)`` where outputs has shape ``(batch, output_dim)``.
        """
        x = np.asarray(inputs, dtype=float)
        if x.ndim != 2:
            x = np.atleast_2d(x)
        if x.shape[1] != self.input_dim:
            raise ConfigurationError(
                f"expected input dimension {self.input_dim}, got {x.shape[1]}"
            )
        active = self._active_for(width)
        views = self._views_for(width)
        last = len(views) - 1
        pre_activations: List[np.ndarray] = []
        activations: List[np.ndarray] = []
        current = x
        for layer_index, (w, b) in enumerate(views):
            z = current @ w
            z += b
            pre_activations.append(z)
            current = np.maximum(z, 0.0) if layer_index < last else z
            activations.append(current)
        cache = ForwardCache(
            inputs=x,
            pre_activations=pre_activations,
            activations=activations,
            active_units=active,
            width=width,
        )
        return current, cache

    def _forward_train(self, x: np.ndarray, width: float) -> Tuple[np.ndarray, ForwardCache]:
        """Trusted forward into reusable cache buffers (training hot path).

        ``x`` must be a 2-D float batch.  The returned cache (and its
        arrays) is reused by the next ``_forward_train`` call with the same
        ``(width, batch)``, so it is only valid until then — long enough for
        the backward pass of the same training step, which is the sole
        intended consumer.
        """
        batch = x.shape[0]
        key = (width, batch)
        cache = self._forward_scratch.get(key)
        views = self._views_for(width)
        last = len(views) - 1
        if cache is None:
            active = self._active_for(width)
            pre_activations = [np.empty((batch, active[i + 1])) for i in range(last + 1)]
            activations = [
                np.empty((batch, active[i + 1])) if i < last else pre_activations[last]
                for i in range(last + 1)
            ]
            cache = ForwardCache(
                inputs=x,
                pre_activations=pre_activations,
                activations=activations,
                active_units=active,
                width=width,
            )
            self._forward_scratch[key] = cache
        cache.inputs = x
        current = x
        kernel = fused_fleet()
        for layer_index, (w, b) in enumerate(views):
            z = cache.pre_activations[layer_index]
            np.matmul(current, w, out=z)
            if layer_index < last:
                if kernel is not None:
                    current = cache.activations[layer_index]
                    kernel.bias_relu(z, b, current)
                else:
                    z += b
                    current = np.maximum(z, 0.0, out=cache.activations[layer_index])
            else:
                z += b
                current = z
        return current, cache

    def predict(self, inputs: np.ndarray, width: float = 1.0) -> np.ndarray:
        """Forward pass returning only the outputs.

        Unlike :meth:`forward` this does not build a :class:`ForwardCache`
        — it is the inference path used by action selection and TD-target
        bootstrapping, where no backward pass follows.
        """
        x = np.asarray(inputs, dtype=float)
        if x.ndim != 2:
            x = np.atleast_2d(x)
        if x.shape[1] != self.input_dim:
            raise ConfigurationError(
                f"expected input dimension {self.input_dim}, got {x.shape[1]}"
            )
        return self._predict_2d(x, width)

    def _predict_2d(self, x: np.ndarray, width: float) -> np.ndarray:
        """Trusted inference path: ``x`` must be a 2-D float batch."""
        views = self._views_for(width)
        last = len(views) - 1
        kernel = fused_fleet()
        for layer_index, (w, b) in enumerate(views):
            z = x @ w
            if layer_index < last and kernel is not None:
                # Fused bias + ReLU in place: z is this layer's fresh matmul
                # output, so the pre-activation need not survive.
                kernel.bias_relu(z, b, z)
                x = z
            else:
                z += b
                x = np.maximum(z, 0.0) if layer_index < last else z
        return x

    def backward_sliced(
        self, cache: ForwardCache, grad_outputs: np.ndarray
    ) -> Tuple[List[np.ndarray], List[np.ndarray], List[Tuple[int, int]]]:
        """Back-propagate, returning gradients sliced to the active extents.

        This is the allocation-lean training path: each returned weight
        gradient has shape ``(in_active, out_active)`` and each bias gradient
        shape ``(out_active,)`` — no full-shape zero padding, no boolean
        masks.  The accompanying extents let the optimizer address the active
        rectangle of each parameter as a view
        (``param[:in_active, :out_active]``).

        Returns:
            ``(weight_grads, bias_grads, extents)`` where ``extents[i]`` is
            the ``(in_active, out_active)`` pair of layer ``i``.
        """
        grad = np.atleast_2d(np.asarray(grad_outputs, dtype=float))
        if grad.shape != cache.activations[-1].shape:
            raise ConfigurationError(
                f"grad_outputs shape {grad.shape} does not match network output "
                f"shape {cache.activations[-1].shape}"
            )
        active = cache.active_units
        num_layers = len(self.weights)
        weight_grads: List[np.ndarray] = [None] * num_layers  # type: ignore[list-item]
        bias_grads: List[np.ndarray] = [None] * num_layers  # type: ignore[list-item]
        extents: List[Tuple[int, int]] = [
            (active[i], active[i + 1]) for i in range(num_layers)
        ]
        self._backprop(cache, grad, weight_grads, bias_grads, out=False)
        return weight_grads, bias_grads, extents

    def backward_into(
        self,
        cache: ForwardCache,
        grad_outputs: np.ndarray,
        weight_grads: List[np.ndarray],
        bias_grads: List[np.ndarray],
    ) -> None:
        """Like :meth:`backward_sliced`, but writing into caller buffers.

        ``weight_grads[i]`` / ``bias_grads[i]`` must be preallocated arrays
        of the active-extent shapes for ``cache.width`` (typically views
        into one flat gradient buffer, see
        :meth:`~repro.rl.dqn.DqnLearner.train_batch`); the matmuls and
        reductions write straight into them, so the backward pass allocates
        nothing but the small per-layer propagated-gradient temporaries.
        """
        grad = grad_outputs
        if grad.__class__ is not np.ndarray or grad.ndim != 2:
            grad = np.atleast_2d(np.asarray(grad, dtype=float))
        if grad.shape != cache.activations[-1].shape:
            raise ConfigurationError(
                f"grad_outputs shape {grad.shape} does not match network output "
                f"shape {cache.activations[-1].shape}"
            )
        self._backprop(cache, grad, weight_grads, bias_grads, out=True)

    def _backprop(
        self,
        cache: ForwardCache,
        grad: np.ndarray,
        weight_grads: List[np.ndarray],
        bias_grads: List[np.ndarray],
        out: bool,
    ) -> None:
        views = self._views_for(cache.width)
        num_layers = len(views)
        propagate_scratch: List[np.ndarray] | None = None
        kernel = None
        mask_addrs: List[Tuple[int, int, int]] | None = None
        if out:
            batch = grad.shape[0]
            key = (cache.width, batch)
            propagate_scratch = self._backprop_scratch.get(key)
            if propagate_scratch is None:
                active = cache.active_units
                propagate_scratch = [
                    np.empty((batch, active[i])) for i in range(1, num_layers)
                ]
                self._backprop_scratch[key] = propagate_scratch
            kernel = fused_adam()
            if kernel is not None:
                # For the reused training cache, the mask operands are the
                # same buffers every call — precompute their addresses.
                plan = self._mask_plans.get(key)
                if plan is None or plan[0] is not cache:
                    if cache is self._forward_scratch.get(key):
                        addrs = [
                            (
                                propagate_scratch[i].size,
                                propagate_scratch[i].ctypes.data,
                                cache.pre_activations[i].ctypes.data,
                            )
                            for i in range(num_layers - 1)
                        ]
                        self._mask_plans[key] = (cache, addrs)
                        mask_addrs = addrs
                else:
                    mask_addrs = plan[1]
        for layer_index in range(num_layers - 1, -1, -1):
            if layer_index < num_layers - 1:
                # ``grad`` is a scratch/fresh array here (written by the
                # matmul of the previous iteration), so the in-place multiply
                # never touches the caller's ``grad_outputs``.  Multiplying
                # by the boolean mask directly (True -> 1.0, False -> 0.0)
                # equals multiplying by relu_grad without materialising the
                # float mask; the C kernel applies the identical multiply.
                if mask_addrs is not None:
                    kernel.relu_mask_raw(*mask_addrs[layer_index])
                elif kernel is not None:
                    kernel.relu_mask(grad, cache.pre_activations[layer_index])
                else:
                    grad *= cache.pre_activations[layer_index] > 0.0
            upstream = (
                cache.inputs if layer_index == 0 else cache.activations[layer_index - 1]
            )
            if out:
                np.matmul(upstream.T, grad, out=weight_grads[layer_index])
                np.add.reduce(grad, axis=0, out=bias_grads[layer_index])
            else:
                weight_grads[layer_index] = upstream.T @ grad
                bias_grads[layer_index] = np.sum(grad, axis=0)
            if layer_index > 0:
                if propagate_scratch is not None:
                    next_grad = propagate_scratch[layer_index - 1]
                    np.matmul(grad, views[layer_index][0].T, out=next_grad)
                    grad = next_grad
                else:
                    grad = grad @ views[layer_index][0].T

    def backward(
        self, cache: ForwardCache, grad_outputs: np.ndarray
    ) -> Tuple[List[np.ndarray], List[np.ndarray], List[np.ndarray], List[np.ndarray]]:
        """Back-propagate ``grad_outputs`` through the cached forward pass.

        Compatibility wrapper around :meth:`backward_sliced`.

        Returns:
            ``(weight_grads, bias_grads, weight_masks, bias_masks)``.  The
            gradients are full-shaped with zeros outside the active slices;
            the boolean masks mark the active slices so that the optimizer
            can skip inactive parameters entirely.
        """
        sliced_w, sliced_b, extents = self.backward_sliced(cache, grad_outputs)
        weight_grads = [np.zeros_like(w) for w in self.weights]
        bias_grads = [np.zeros_like(b) for b in self.biases]
        weight_masks = [np.zeros(w.shape, dtype=bool) for w in self.weights]
        bias_masks = [np.zeros(b.shape, dtype=bool) for b in self.biases]
        for layer_index, (in_active, out_active) in enumerate(extents):
            weight_grads[layer_index][:in_active, :out_active] = sliced_w[layer_index]
            bias_grads[layer_index][:out_active] = sliced_b[layer_index]
            weight_masks[layer_index][:in_active, :out_active] = True
            bias_masks[layer_index][:out_active] = True
        return weight_grads, bias_grads, weight_masks, bias_masks

    # -- parameter management ------------------------------------------------------------

    def parameters(self) -> List[np.ndarray]:
        """Flat list of parameter arrays (weights then biases, interleaved)."""
        params: List[np.ndarray] = []
        for w, b in zip(self.weights, self.biases):
            params.append(w)
            params.append(b)
        return params

    def get_state(self) -> List[np.ndarray]:
        """Deep copy of all parameters (for target-network snapshots)."""
        return [p.copy() for p in self.parameters()]

    def set_state(self, state: Sequence[np.ndarray]) -> None:
        """Load parameters previously produced by :meth:`get_state`."""
        params = self.parameters()
        if len(state) != len(params):
            raise ConfigurationError(
                f"state has {len(state)} arrays, expected {len(params)}"
            )
        for target, source in zip(params, state):
            if target.shape != source.shape:
                raise ConfigurationError(
                    f"parameter shape mismatch: {target.shape} vs {source.shape}"
                )
            target[...] = source

    def clone(self) -> "SlimmableMLP":
        """Create a copy of this network with identical parameters.

        The copy is built directly from this network's attributes — no
        throwaway He initialisation (and no RNG draws) for weights that
        would be overwritten immediately anyway.
        """
        copy = object.__new__(SlimmableMLP)
        copy.input_dim = self.input_dim
        copy.hidden_dims = self.hidden_dims
        copy.output_dim = self.output_dim
        copy.widths = self.widths
        copy._allocate_flat([self.input_dim, *self.hidden_dims, self.output_dim])
        copy._flat[...] = self._flat
        copy._active_units_cache = {
            w: list(units) for w, units in self._active_units_cache.items()
        }
        copy._layer_views_cache = {}
        copy._backprop_scratch = {}
        copy._forward_scratch = {}
        copy._mask_plans = {}
        return copy

    @property
    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(p.size for p in self.parameters()))
