"""Slimmable multi-layer perceptron.

The Lotus Q-network is a single MLP executed at two widths: the Q-values of
the first state-action pair of each frame (no proposal count yet) are
computed with only the first ``alpha x`` channels of every hidden layer,
while the second pair uses the full network.  The two computations therefore
share the bulk of their parameters, preserving the correlation between the
two decisions of the same frame — the core architectural idea of §4.3.4.

:class:`SlimmableMLP` implements this with plain NumPy: ``forward`` takes a
width multiplier and only uses the active slice of each hidden layer;
``backward`` returns full-shaped gradients that are zero outside the active
slice, together with boolean masks so the optimizer can leave inactive
weights completely untouched (the paper: "the remaining weights are not
updated").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.rl.network import he_init, relu, relu_grad


@dataclass
class ForwardCache:
    """Intermediate activations stored by :meth:`SlimmableMLP.forward`.

    Attributes:
        inputs: The input batch.
        pre_activations: Pre-activation values of every layer.
        activations: Post-activation values of every layer (the last entry
            is the network output).
        active_units: The number of active units per layer boundary used for
            this pass (length ``num_layers + 1``).
        width: The width multiplier the pass was run at.
    """

    inputs: np.ndarray
    pre_activations: List[np.ndarray]
    activations: List[np.ndarray]
    active_units: List[int]
    width: float


class SlimmableMLP:
    """An MLP whose hidden layers can run at a reduced width.

    Args:
        input_dim: Number of input features (always fully used).
        hidden_dims: Sizes of the hidden layers at full width.
        output_dim: Number of outputs (always fully used — every action must
            have a Q-value at every width).
        widths: The width multipliers the network supports; ``1.0`` must be
            included.  The paper uses ``(0.75, 1.0)``.
        rng: Random generator for weight initialisation.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dims: Sequence[int],
        output_dim: int,
        widths: Sequence[float] = (0.75, 1.0),
        rng: np.random.Generator | None = None,
    ):
        if input_dim <= 0 or output_dim <= 0:
            raise ConfigurationError("input_dim and output_dim must be positive")
        if not hidden_dims:
            raise ConfigurationError("at least one hidden layer is required")
        if any(h <= 0 for h in hidden_dims):
            raise ConfigurationError("hidden layer sizes must be positive")
        widths = tuple(sorted(set(float(w) for w in widths)))
        if not widths or widths[-1] != 1.0:
            raise ConfigurationError("widths must include 1.0")
        if widths[0] <= 0:
            raise ConfigurationError("widths must be positive")
        self.input_dim = int(input_dim)
        self.hidden_dims = tuple(int(h) for h in hidden_dims)
        self.output_dim = int(output_dim)
        self.widths = widths
        rng = rng if rng is not None else np.random.default_rng(0)

        layer_dims = [self.input_dim, *self.hidden_dims, self.output_dim]
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(layer_dims[:-1], layer_dims[1:]):
            w, b = he_init(fan_in, fan_out, rng)
            self.weights.append(w)
            self.biases.append(b)

    # -- structure ------------------------------------------------------------------

    @property
    def num_layers(self) -> int:
        """Number of dense layers (hidden layers + output layer)."""
        return len(self.weights)

    def active_units_for_width(self, width: float) -> List[int]:
        """Active unit counts at each layer boundary for a width multiplier.

        The input and output dimensions are always fully active; hidden
        layers are truncated to ``ceil(width * size)`` units (at least one).
        """
        self._validate_width(width)
        units = [self.input_dim]
        for hidden in self.hidden_dims:
            units.append(max(1, math.ceil(width * hidden)))
        units.append(self.output_dim)
        return units

    def _validate_width(self, width: float) -> None:
        if not any(abs(width - w) < 1e-9 for w in self.widths):
            raise ConfigurationError(
                f"width {width} is not one of the configured widths {self.widths}"
            )

    # -- forward / backward -----------------------------------------------------------

    def forward(self, inputs: np.ndarray, width: float = 1.0) -> Tuple[np.ndarray, ForwardCache]:
        """Run the network at ``width``.

        Args:
            inputs: Batch of shape ``(batch, input_dim)`` (a single sample of
                shape ``(input_dim,)`` is also accepted).
            width: Width multiplier; must be one of :attr:`widths`.

        Returns:
            ``(outputs, cache)`` where outputs has shape ``(batch, output_dim)``.
        """
        x = np.atleast_2d(np.asarray(inputs, dtype=float))
        if x.shape[1] != self.input_dim:
            raise ConfigurationError(
                f"expected input dimension {self.input_dim}, got {x.shape[1]}"
            )
        active = self.active_units_for_width(width)
        pre_activations: List[np.ndarray] = []
        activations: List[np.ndarray] = []
        current = x
        for layer_index, (w, b) in enumerate(zip(self.weights, self.biases)):
            in_active = active[layer_index]
            out_active = active[layer_index + 1]
            z = current @ w[:in_active, :out_active] + b[:out_active]
            pre_activations.append(z)
            if layer_index < self.num_layers - 1:
                current = relu(z)
            else:
                current = z
            activations.append(current)
        cache = ForwardCache(
            inputs=x,
            pre_activations=pre_activations,
            activations=activations,
            active_units=active,
            width=width,
        )
        return current, cache

    def predict(self, inputs: np.ndarray, width: float = 1.0) -> np.ndarray:
        """Forward pass returning only the outputs."""
        outputs, _ = self.forward(inputs, width)
        return outputs

    def backward(
        self, cache: ForwardCache, grad_outputs: np.ndarray
    ) -> Tuple[List[np.ndarray], List[np.ndarray], List[np.ndarray], List[np.ndarray]]:
        """Back-propagate ``grad_outputs`` through the cached forward pass.

        Returns:
            ``(weight_grads, bias_grads, weight_masks, bias_masks)``.  The
            gradients are full-shaped with zeros outside the active slices;
            the boolean masks mark the active slices so that the optimizer
            can skip inactive parameters entirely.
        """
        grad = np.atleast_2d(np.asarray(grad_outputs, dtype=float))
        if grad.shape != cache.activations[-1].shape:
            raise ConfigurationError(
                f"grad_outputs shape {grad.shape} does not match network output "
                f"shape {cache.activations[-1].shape}"
            )
        active = cache.active_units
        weight_grads = [np.zeros_like(w) for w in self.weights]
        bias_grads = [np.zeros_like(b) for b in self.biases]
        weight_masks = [np.zeros(w.shape, dtype=bool) for w in self.weights]
        bias_masks = [np.zeros(b.shape, dtype=bool) for b in self.biases]

        for layer_index in range(self.num_layers - 1, -1, -1):
            in_active = active[layer_index]
            out_active = active[layer_index + 1]
            if layer_index < self.num_layers - 1:
                grad = grad * relu_grad(cache.pre_activations[layer_index])
            upstream = (
                cache.inputs if layer_index == 0 else cache.activations[layer_index - 1]
            )
            weight_grads[layer_index][:in_active, :out_active] = upstream.T @ grad
            bias_grads[layer_index][:out_active] = np.sum(grad, axis=0)
            weight_masks[layer_index][:in_active, :out_active] = True
            bias_masks[layer_index][:out_active] = True
            if layer_index > 0:
                grad = grad @ self.weights[layer_index][:in_active, :out_active].T
        return weight_grads, bias_grads, weight_masks, bias_masks

    # -- parameter management ------------------------------------------------------------

    def parameters(self) -> List[np.ndarray]:
        """Flat list of parameter arrays (weights then biases, interleaved)."""
        params: List[np.ndarray] = []
        for w, b in zip(self.weights, self.biases):
            params.append(w)
            params.append(b)
        return params

    def get_state(self) -> List[np.ndarray]:
        """Deep copy of all parameters (for target-network snapshots)."""
        return [p.copy() for p in self.parameters()]

    def set_state(self, state: Sequence[np.ndarray]) -> None:
        """Load parameters previously produced by :meth:`get_state`."""
        params = self.parameters()
        if len(state) != len(params):
            raise ConfigurationError(
                f"state has {len(state)} arrays, expected {len(params)}"
            )
        for target, source in zip(params, state):
            if target.shape != source.shape:
                raise ConfigurationError(
                    f"parameter shape mismatch: {target.shape} vs {source.shape}"
                )
            target[...] = source

    def clone(self) -> "SlimmableMLP":
        """Create a copy of this network with identical parameters."""
        copy = SlimmableMLP(
            input_dim=self.input_dim,
            hidden_dims=self.hidden_dims,
            output_dim=self.output_dim,
            widths=self.widths,
            rng=np.random.default_rng(0),
        )
        copy.set_state(self.get_state())
        return copy

    @property
    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(p.size for p in self.parameters()))
