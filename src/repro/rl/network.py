"""Neural-network primitives shared by the Q-network implementations.

Plain NumPy building blocks: ReLU and its derivative, the Huber loss used by
DQN, and He weight initialisation.  Kept free of any class structure so they
are trivially testable (including finite-difference gradient checks).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def relu_grad(pre_activation: np.ndarray) -> np.ndarray:
    """Derivative of ReLU with respect to its input."""
    return (pre_activation > 0.0).astype(pre_activation.dtype)


def he_init(
    fan_in: int, fan_out: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """He-normal weight initialisation for a dense layer.

    Returns:
        ``(weights, biases)`` with weights of shape ``(fan_in, fan_out)`` and
        zero biases of shape ``(fan_out,)``.
    """
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    scale = np.sqrt(2.0 / fan_in)
    weights = rng.normal(0.0, scale, size=(fan_in, fan_out))
    biases = np.zeros(fan_out)
    return weights, biases


def huber_loss_and_grad(
    predictions: np.ndarray, targets: np.ndarray, delta: float = 1.0
) -> Tuple[float, np.ndarray]:
    """Huber (smooth-L1) loss and its gradient with respect to predictions.

    The Huber loss behaves quadratically for small errors and linearly for
    large ones, which keeps DQN updates stable when TD errors spike (e.g.
    right after a thermal-throttling latency excursion).

    Args:
        predictions: Predicted Q-values, any shape.
        targets: TD targets, same shape as ``predictions``.
        delta: Transition point between the quadratic and linear regimes.

    Returns:
        ``(loss, grad)`` where ``loss`` is the mean Huber loss and ``grad``
        has the same shape as ``predictions``.
    """
    if predictions.shape != targets.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape} vs targets {targets.shape}"
        )
    if delta <= 0:
        raise ValueError("delta must be positive")
    error = predictions - targets
    abs_error = np.abs(error)
    quadratic = np.minimum(abs_error, delta)
    linear = abs_error - quadratic
    losses = 0.5 * quadratic**2 + delta * linear
    count = max(predictions.size, 1)
    grad = np.clip(error, -delta, delta) / count
    return float(np.mean(losses)), grad
