"""Microbenchmarks of the RL training hot path.

Every benchmark times the *current* implementation next to the frozen
pre-refactor reference from :mod:`repro.perf.legacy` in the same process on
the same data, so the speedup ratios in the emitted ``BENCH_*.json`` are
apples-to-apples measurements rather than numbers recorded on different
hardware.  Covered, per the perf trajectory's first entry:

* replay ``push`` and ``sample`` (batch 32 out of a 10k-capacity buffer),
* ``SlimmableMLP`` forward and backward at both widths (sliced-gradient
  fast path vs. the mask-padded compatibility path),
* one full ``DqnLearner.train_batch`` step (sample + update),
* a complete 500-frame Lotus session through the real environment.

Run via ``python -m repro bench`` (``--quick`` shrinks iteration counts for
CI smoke jobs); the report lands in ``BENCH_PR2.json`` by default.
"""

from __future__ import annotations

import json
from itertools import count
from pathlib import Path

import numpy as np

from repro.perf.legacy import (
    LegacyDqnLearner,
    LegacyReplayBuffer,
    LegacySlimmableMLP,
    use_legacy_rl_path,
)
from repro.perf.timer import BenchReport, measure_pair
from repro.rl.dqn import DqnConfig, DqnLearner
from repro.rl.optimizer import Adam
from repro.rl.replay import ReplayBuffer, Transition
from repro.rl.slimmable import SlimmableMLP

#: Dimensions of the synthetic hot-path workload: Lotus-sized network
#: (3 hidden layers of 64) on a 14-feature state with a 30-action output,
#: trained with batch 32 from a 10k-capacity buffer.
STATE_DIM = 14
NUM_ACTIONS = 30
HIDDEN_DIMS = (64, 64, 64)
BATCH_SIZE = 32
CAPACITY = 10_000

#: Default report filename; the label tracks the PR that recorded it.
BENCH_LABEL = "PR2"
DEFAULT_OUTPUT = f"BENCH_{BENCH_LABEL}.json"

#: Acceptance floors for this PR's tentpole (recorded into the report for
#: context; the benchmark itself does not gate on them).
SPEEDUP_TARGETS = {"train_batch": 3.0, "lotus_session": 1.5}


def _make_network(legacy: bool = False, rng_seed: int = 0):
    cls = LegacySlimmableMLP if legacy else SlimmableMLP
    return cls(
        input_dim=STATE_DIM,
        hidden_dims=HIDDEN_DIMS,
        output_dim=NUM_ACTIONS,
        widths=(0.75, 1.0),
        rng=np.random.default_rng(rng_seed),
    )


def _make_learner(legacy: bool) -> DqnLearner:
    cls = LegacyDqnLearner if legacy else DqnLearner
    return cls(
        network=_make_network(legacy),
        config=DqnConfig(batch_size=BATCH_SIZE),
        optimizer=Adam(),
    )


def _transition_stream(count: int, seed: int = 7) -> list[Transition]:
    rng = np.random.default_rng(seed)
    return [
        Transition(
            state=rng.normal(size=STATE_DIM),
            action=int(rng.integers(NUM_ACTIONS)),
            reward=float(rng.normal()),
            next_state=rng.normal(size=STATE_DIM),
            next_width=1.0,
        )
        for _ in range(count)
    ]


def _filled_buffer(legacy: bool, transitions: list[Transition]):
    buffer = LegacyReplayBuffer(CAPACITY) if legacy else ReplayBuffer(CAPACITY)
    for t in transitions:
        buffer.push(t)
    return buffer


def bench_replay(report: BenchReport, iterations: int, repeats: int) -> None:
    """Replay push and sample, current ring buffer vs. legacy deque."""
    transitions = _transition_stream(CAPACITY)
    cycle = len(transitions)

    def make_push(legacy: bool):
        buffer = _filled_buffer(legacy, transitions)  # steady-state: full buffer
        counter = count()

        def push() -> None:
            t = transitions[next(counter) % cycle]
            buffer.append(t.state, t.action, t.reward, t.next_state, t.next_width)

        return push

    report.add_pair(
        "replay_push",
        *measure_pair(
            "replay_push", make_push(False),
            "replay_push_legacy", make_push(True),
            iterations=iterations, repeats=repeats,
        ),
    )

    current = _filled_buffer(False, transitions)
    legacy_buf = _filled_buffer(True, transitions)
    rng_a = np.random.default_rng(11)
    rng_b = np.random.default_rng(11)
    report.add_pair(
        "replay_sample",
        *measure_pair(
            "replay_sample", lambda: current.sample(BATCH_SIZE, rng_a),
            "replay_sample_legacy", lambda: legacy_buf.sample(BATCH_SIZE, rng_b),
            iterations=iterations, repeats=repeats,
        ),
    )


def bench_network(report: BenchReport, iterations: int, repeats: int) -> None:
    """Forward and backward at both widths, current vs. seed implementation."""
    net = _make_network(False)
    legacy_net = _make_network(True)  # same init seed => identical weights
    x = np.random.default_rng(3).normal(size=(BATCH_SIZE, STATE_DIM))
    for width in (0.75, 1.0):
        tag = f"w{int(width * 100):03d}"
        report.add_pair(
            f"forward_{tag}",
            *measure_pair(
                f"forward_{tag}", lambda: net.forward(x, width),
                f"forward_{tag}_legacy", lambda: legacy_net.forward(x, width),
                iterations=iterations, repeats=repeats,
            ),
        )
        _, cache = net.forward(x, width)
        _, legacy_cache = legacy_net.forward(x, width)
        grad_out = np.random.default_rng(4).normal(size=(BATCH_SIZE, NUM_ACTIONS))
        report.add_pair(
            f"backward_{tag}",
            *measure_pair(
                f"backward_{tag}",
                lambda: net.backward_sliced(cache, grad_out),
                f"backward_{tag}_legacy",
                lambda: legacy_net.backward(legacy_cache, grad_out),
                iterations=iterations, repeats=repeats,
            ),
        )


def bench_train_batch(report: BenchReport, iterations: int, repeats: int) -> None:
    """One ``DqnLearner.train_batch`` update at batch 32 from a 10k buffer.

    Sampling is benchmarked separately (``replay_sample``); here each
    iteration trains on one of 64 presampled batches, cycling, so the
    measurement isolates the update itself.  The headline ``train_batch``
    family is the reduced-width update with full-width bootstrapping — the
    Lotus start-of-frame decision point (paper §4.3.4), which exercises the
    sliced-gradient path this PR introduced; ``train_batch_full`` is the
    full-width variant (zTT / Lotus mid-frame pattern).
    """
    transitions = _transition_stream(CAPACITY)

    def make_step(legacy: bool, width: float):
        learner = _make_learner(legacy)
        buffer = _filled_buffer(legacy, transitions)
        rng = np.random.default_rng(13)
        batches = [buffer.sample(BATCH_SIZE, rng) for _ in range(64)]
        counter = count()
        # Warm up scratch buffers / kernel plans outside the timed region.
        for _ in range(3):
            learner.train_batch(batches[next(counter) % 64], width=width)
        return lambda: learner.train_batch(batches[next(counter) % 64], width=width)

    report.add_pair(
        "train_batch",
        *measure_pair(
            "train_batch", make_step(False, width=0.75),
            "train_batch_legacy", make_step(True, width=0.75),
            iterations=iterations, repeats=repeats,
        ),
    )
    report.add_pair(
        "train_batch_full",
        *measure_pair(
            "train_batch_full", make_step(False, width=1.0),
            "train_batch_full_legacy", make_step(True, width=1.0),
            iterations=iterations, repeats=repeats,
        ),
    )


def run_lotus_session(num_frames: int, legacy: bool, seed: int = 0):
    """Run one Lotus online session end to end; returns the SessionResult."""
    from repro.analysis.experiments import (
        ExperimentSetting,
        make_environment,
        make_policy,
    )
    from repro.core.training import OnlineSession

    setting = ExperimentSetting(num_frames=num_frames, seed=seed)
    environment = make_environment(setting)
    policy = make_policy("lotus", environment, num_frames, seed=setting.seed)
    if legacy:
        use_legacy_rl_path(policy)
    return OnlineSession(environment, policy).run(num_frames)


def bench_lotus_session(report: BenchReport, num_frames: int, repeats: int) -> None:
    """A full Lotus session (environment + agent + training) per iteration."""
    report.add_pair(
        "lotus_session",
        *measure_pair(
            f"lotus_session_{num_frames}f",
            lambda: run_lotus_session(num_frames, legacy=False),
            f"lotus_session_{num_frames}f_legacy",
            lambda: run_lotus_session(num_frames, legacy=True),
            iterations=1, repeats=repeats,
        ),
    )


def run_bench_suite(quick: bool = False) -> BenchReport:
    """Run every microbenchmark and return the populated report.

    Args:
        quick: CI-smoke mode — roughly an order of magnitude fewer inner
            iterations and a shorter Lotus session, to prove execution
            health rather than produce stable numbers.
    """
    report = BenchReport(label=BENCH_LABEL, quick=quick)
    micro_iters = 200 if quick else 2_000
    train_iters = 50 if quick else 400
    repeats = 2 if quick else 3
    train_repeats = 2 if quick else 5
    session_frames = 120 if quick else 500
    session_repeats = 1 if quick else 3

    bench_replay(report, micro_iters, repeats)
    bench_network(report, micro_iters, repeats)
    bench_train_batch(report, train_iters, train_repeats)
    bench_lotus_session(report, session_frames, session_repeats)
    return report


def write_report(report: BenchReport, output: str | Path) -> Path:
    """Serialise ``report`` (plus the acceptance targets) to ``output``."""
    path = Path(output)
    payload = report.to_dict()
    payload["speedup_targets"] = dict(SPEEDUP_TARGETS)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def format_report(report: BenchReport, targets: dict[str, float] | None = None) -> str:
    """Human-readable table of results and speedups.

    Args:
        report: The populated report.
        targets: Acceptance floors annotated next to matching speedup
            families (defaults to the RL suite's :data:`SPEEDUP_TARGETS`).
    """
    if targets is None:
        targets = SPEEDUP_TARGETS
    lines = [f"perf suite [{report.label}]" + (" (quick)" if report.quick else "")]
    lines.append(f"{'benchmark':<28s} {'iters':>6s} {'best/iter':>12s}")
    for result in report.results:
        lines.append(
            f"{result.name:<28s} {result.iterations:>6d} "
            f"{result.best_per_iter_ms:>9.3f} ms"
        )
    if report.speedups:
        lines.append("")
        lines.append("speedups vs. the scalar/legacy baseline (same process):")
        for family, ratio in report.speedups.items():
            target = targets.get(family)
            suffix = f"  (target >= {target:.1f}x)" if target else ""
            lines.append(f"  {family:<26s} {ratio:5.2f}x{suffix}")
    return "\n".join(lines)
