"""Fault-tolerance benchmark suite (``BENCH_PR7.json``).

Two questions a fault-tolerant runtime must answer with numbers:

* **What does reliability cost per message?**  The retry/dedup protocol of
  :class:`~repro.comms.RemotePolicy` is benchmarked over a clean channel
  and over a lossy one (20 % drop, 10 % duplicate); the report records the
  per-message overhead of each and the retry counts the lossy episode
  actually needed — the price of *zero lost decisions* under loss.
* **How long does crash recovery take?**  A supervised sharded run with one
  injected worker crash is timed against the same run without the crash,
  across fleet sizes; the report records the measured recovery time (pool
  rebuild + replay from the latest checkpoint) per size.

Run via ``python -m repro bench --suite faults``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.comms.channel import LossyChannel, SimulatedChannel
from repro.comms.server import RemotePolicy
from repro.env.episode import run_episode
from repro.faults.plan import FaultPlan, WorkerCrash
from repro.perf.timer import BenchReport, BenchResult
from repro.runtime.shards import run_supervised_scenario
from repro.scenarios import build_scenario

#: Default report filename; the label tracks the PR that recorded it.
FAULT_BENCH_LABEL = "PR7"
DEFAULT_FAULTS_OUTPUT = f"BENCH_{FAULT_BENCH_LABEL}.json"

#: Channel-loss profile of the lossy retry benchmark.
LOSSY_DROP_RATE = 0.2
LOSSY_DUPLICATE_RATE = 0.1

#: Fleet sizes the recovery benchmark sweeps (quick mode uses the first).
DEFAULT_RECOVERY_FLEET_SIZES = (8, 16, 32)


def _remote_episode(channel: SimulatedChannel, num_frames: int) -> RemotePolicy:
    """Run one governor episode through ``channel``; returns the policy."""
    from repro.analysis.experiments import ExperimentSetting, make_environment
    from repro.governors.registry import build_default_governor

    setting = ExperimentSetting(num_frames=num_frames, seed=0)
    environment = make_environment(setting)
    policy = RemotePolicy(build_default_governor(environment), channel=channel)
    run_episode(environment, policy, num_frames)
    return policy


def bench_retry_overhead(report: BenchReport, num_frames: int, repeats: int) -> dict:
    """Benchmark the delivery protocol on clean vs lossy channels.

    Returns the overhead metadata (per-message stats from the lossy run)
    recorded into the report payload.
    """
    clean_times = []
    lossy_times = []
    for _ in range(repeats):
        start = time.perf_counter()
        clean_policy = _remote_episode(SimulatedChannel(), num_frames)
        clean_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        lossy_policy = _remote_episode(
            LossyChannel(
                drop_rate=LOSSY_DROP_RATE,
                duplicate_rate=LOSSY_DUPLICATE_RATE,
                seed=7,
            ),
            num_frames,
        )
        lossy_times.append(time.perf_counter() - start)
    report.add(
        BenchResult(
            name=f"remote_episode_clean_{num_frames}f",
            iterations=num_frames,
            repeats=repeats,
            best_s=min(clean_times),
            mean_s=sum(clean_times) / len(clean_times),
        )
    )
    report.add(
        BenchResult(
            name=f"remote_episode_lossy_{num_frames}f",
            iterations=num_frames,
            repeats=repeats,
            best_s=min(lossy_times),
            mean_s=sum(lossy_times) / len(lossy_times),
        )
    )
    clean = clean_policy.overhead_report()
    lossy = lossy_policy.overhead_report()
    messages = max(lossy.messages_per_frame * lossy.frames, 1.0)
    return {
        "drop_rate": LOSSY_DROP_RATE,
        "duplicate_rate": LOSSY_DUPLICATE_RATE,
        "clean_messages_per_frame": clean.messages_per_frame,
        "lossy_messages_per_frame": lossy.messages_per_frame,
        "lossy_retries": lossy.retries,
        "lossy_retries_per_message": lossy.retries / messages,
        "lossy_dropped_messages": lossy.dropped_messages,
        "lossy_duplicates_discarded": lossy.duplicates_discarded,
        "lossy_retry_wait_ms_per_frame": lossy.retry_wait_ms_per_frame,
        "clean_overhead_ms_per_frame": clean.total_overhead_ms_per_frame,
        "lossy_overhead_ms_per_frame": lossy.total_overhead_ms_per_frame,
        "clean_channel_ms_per_message": clean.channel_ms_per_message,
        "lossy_channel_ms_per_message": lossy.channel_ms_per_message,
    }


def bench_recovery_time(
    report: BenchReport,
    fleet_sizes: tuple[int, ...],
    num_frames: int,
    num_shards: int,
) -> dict:
    """Benchmark supervised crash recovery across fleet sizes.

    For each size, runs the supervised scenario once cleanly and once with
    an injected worker crash mid-episode; records both wall times and the
    supervisor's measured recovery time.
    """
    recovery: dict[str, float] = {}
    for size in fleet_sizes:
        spec = build_scenario("cctv-burst").with_overrides(
            num_frames=num_frames, num_sessions=size
        )
        clean = run_supervised_scenario(
            spec, num_shards=num_shards, checkpoint_every=max(num_frames // 4, 1)
        )
        crashed = run_supervised_scenario(
            spec,
            num_shards=num_shards,
            checkpoint_every=max(num_frames // 4, 1),
            crashes=(WorkerCrash(frame=num_frames // 2, shard=num_shards - 1),),
        )
        report.add(
            BenchResult(
                name=f"supervised_clean_{size}x{num_frames}f",
                iterations=num_frames,
                repeats=1,
                best_s=clean.elapsed_s,
                mean_s=clean.elapsed_s,
            )
        )
        report.add(
            BenchResult(
                name=f"supervised_crash_{size}x{num_frames}f",
                iterations=num_frames,
                repeats=1,
                best_s=crashed.elapsed_s,
                mean_s=crashed.elapsed_s,
            )
        )
        recovery[str(size)] = crashed.recovery.recovery_s
    return {"recovery_s_by_fleet_size": recovery, "num_shards": num_shards}


def run_fault_bench_suite(quick: bool = False) -> tuple[BenchReport, dict]:
    """Run the fault-tolerance suite; returns (report, extra metadata).

    Args:
        quick: CI-smoke mode — shorter episodes, one repeat and the
            smallest recovery fleet only, to prove execution health.
    """
    report = BenchReport(label=FAULT_BENCH_LABEL, quick=quick)
    retry_frames = 60 if quick else 300
    retry_repeats = 1 if quick else 3
    recovery_frames = 24 if quick else 60
    sizes = (
        DEFAULT_RECOVERY_FLEET_SIZES[:1] if quick else DEFAULT_RECOVERY_FLEET_SIZES
    )
    extra = {
        "retry_overhead": bench_retry_overhead(report, retry_frames, retry_repeats),
        "crash_recovery": bench_recovery_time(report, sizes, recovery_frames, 2),
    }
    return report, extra


def write_fault_report(
    report: BenchReport, extra: dict, output: str | Path
) -> Path:
    """Serialise the fault suite's report plus its overhead metadata."""
    path = Path(output)
    payload = report.to_dict()
    payload["host_cpu_count"] = os.cpu_count()
    payload.update(extra)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
