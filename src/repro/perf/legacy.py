"""Frozen pre-vectorization reference implementations.

These classes preserve, verbatim in behaviour, the original pure-Python DQN
hot path that the ring-buffer replay and the sliced-gradient training pass
replaced: a ``deque``-of-:class:`Transition` replay buffer with per-object
sampling, full-shape zero-padded gradients with boolean masks, and the
masked (fancy-indexed) optimizer update.  They serve two purposes:

* **recorded baseline** — :mod:`repro.perf.benchmarks` times them next to
  the current implementations in the same process, so every ``BENCH_*.json``
  speedup is measured against the genuine pre-refactor code rather than a
  stale number from different hardware;
* **equivalence oracle** — the seed-for-seed tests drive a full Lotus
  session through this path and assert the vectorized path produces the
  exact same losses, rewards and traces.

Do not "optimise" this module; its slowness is the point.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, ReplayBufferError
from repro.rl.dqn import DqnLearner
from repro.rl.network import he_init, huber_loss_and_grad, relu, relu_grad
from repro.rl.replay import Transition
from repro.rl.slimmable import ForwardCache


class LegacyReplayBuffer:
    """The original bounded FIFO replay buffer (deque of transitions)."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ReplayBufferError("capacity must be positive")
        self.capacity = capacity
        self._storage: Deque[Transition] = deque(maxlen=capacity)
        self._total_pushed = 0

    def push(self, transition: Transition) -> None:
        """Store a transition, evicting the oldest if the buffer is full."""
        self._storage.append(transition)
        self._total_pushed += 1

    def append(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        next_width: float = 1.0,
    ) -> None:
        """Field-wise push shim matching the current buffer's interface.

        The original code built a :class:`Transition` at every call site;
        doing it here keeps the per-push object construction cost inside the
        legacy path, where it historically was.
        """
        self.push(Transition(state, action, reward, next_state, next_width))

    def __len__(self) -> int:
        return len(self._storage)

    @property
    def total_pushed(self) -> int:
        """Total number of transitions ever pushed (including evicted ones)."""
        return self._total_pushed

    @property
    def is_full(self) -> bool:
        """Whether the buffer has reached its capacity."""
        return len(self._storage) == self.capacity

    def sample(self, batch_size: int, rng: np.random.Generator) -> List[Transition]:
        """Sample ``batch_size`` transitions uniformly at random."""
        if batch_size <= 0:
            raise ReplayBufferError("batch_size must be positive")
        if len(self._storage) < batch_size:
            raise ReplayBufferError(
                f"cannot sample {batch_size} transitions from a buffer of size "
                f"{len(self._storage)}"
            )
        indices = rng.choice(len(self._storage), size=batch_size, replace=False)
        return [self._storage[int(i)] for i in indices]

    def clear(self) -> None:
        """Discard all stored transitions."""
        self._storage.clear()

    def latest(self) -> Transition:
        """The most recently pushed transition."""
        if not self._storage:
            raise ReplayBufferError("buffer is empty")
        return self._storage[-1]


class LegacySlimmableMLP:
    """The original slimmable MLP, kept verbatim.

    Re-derives the active unit counts and re-validates the width on every
    forward pass, slices the weights per call, and its ``backward`` builds
    full-shape zero-padded gradients plus boolean masks — exactly the seed
    implementation that :class:`~repro.rl.slimmable.SlimmableMLP` replaced
    with cached views, flat parameter backing and sliced gradients.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dims: Sequence[int],
        output_dim: int,
        widths: Sequence[float] = (0.75, 1.0),
        rng: np.random.Generator | None = None,
    ):
        self.input_dim = int(input_dim)
        self.hidden_dims = tuple(int(h) for h in hidden_dims)
        self.output_dim = int(output_dim)
        self.widths = tuple(sorted(set(float(w) for w in widths)))
        rng = rng if rng is not None else np.random.default_rng(0)
        layer_dims = [self.input_dim, *self.hidden_dims, self.output_dim]
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(layer_dims[:-1], layer_dims[1:]):
            w, b = he_init(fan_in, fan_out, rng)
            self.weights.append(w)
            self.biases.append(b)

    @property
    def num_layers(self) -> int:
        return len(self.weights)

    def active_units_for_width(self, width: float) -> List[int]:
        self._validate_width(width)
        units = [self.input_dim]
        for hidden in self.hidden_dims:
            units.append(max(1, math.ceil(width * hidden)))
        units.append(self.output_dim)
        return units

    def _validate_width(self, width: float) -> None:
        if not any(abs(width - w) < 1e-9 for w in self.widths):
            raise ConfigurationError(
                f"width {width} is not one of the configured widths {self.widths}"
            )

    def forward(self, inputs: np.ndarray, width: float = 1.0) -> Tuple[np.ndarray, ForwardCache]:
        x = np.atleast_2d(np.asarray(inputs, dtype=float))
        if x.shape[1] != self.input_dim:
            raise ConfigurationError(
                f"expected input dimension {self.input_dim}, got {x.shape[1]}"
            )
        active = self.active_units_for_width(width)
        pre_activations: List[np.ndarray] = []
        activations: List[np.ndarray] = []
        current = x
        for layer_index, (w, b) in enumerate(zip(self.weights, self.biases)):
            in_active = active[layer_index]
            out_active = active[layer_index + 1]
            z = current @ w[:in_active, :out_active] + b[:out_active]
            pre_activations.append(z)
            if layer_index < self.num_layers - 1:
                current = relu(z)
            else:
                current = z
            activations.append(current)
        cache = ForwardCache(
            inputs=x,
            pre_activations=pre_activations,
            activations=activations,
            active_units=active,
            width=width,
        )
        return current, cache

    def predict(self, inputs: np.ndarray, width: float = 1.0) -> np.ndarray:
        outputs, _ = self.forward(inputs, width)
        return outputs

    def backward(
        self, cache: ForwardCache, grad_outputs: np.ndarray
    ) -> Tuple[List[np.ndarray], List[np.ndarray], List[np.ndarray], List[np.ndarray]]:
        grad = np.atleast_2d(np.asarray(grad_outputs, dtype=float))
        active = cache.active_units
        weight_grads = [np.zeros_like(w) for w in self.weights]
        bias_grads = [np.zeros_like(b) for b in self.biases]
        weight_masks = [np.zeros(w.shape, dtype=bool) for w in self.weights]
        bias_masks = [np.zeros(b.shape, dtype=bool) for b in self.biases]
        for layer_index in range(self.num_layers - 1, -1, -1):
            in_active = active[layer_index]
            out_active = active[layer_index + 1]
            if layer_index < self.num_layers - 1:
                grad = grad * relu_grad(cache.pre_activations[layer_index])
            upstream = (
                cache.inputs if layer_index == 0 else cache.activations[layer_index - 1]
            )
            weight_grads[layer_index][:in_active, :out_active] = upstream.T @ grad
            bias_grads[layer_index][:out_active] = np.sum(grad, axis=0)
            weight_masks[layer_index][:in_active, :out_active] = True
            bias_masks[layer_index][:out_active] = True
            if layer_index > 0:
                grad = grad @ self.weights[layer_index][:in_active, :out_active].T
        return weight_grads, bias_grads, weight_masks, bias_masks

    def parameters(self) -> List[np.ndarray]:
        params: List[np.ndarray] = []
        for w, b in zip(self.weights, self.biases):
            params.append(w)
            params.append(b)
        return params

    def get_state(self) -> List[np.ndarray]:
        return [p.copy() for p in self.parameters()]

    def set_state(self, state: Sequence[np.ndarray]) -> None:
        for target, source in zip(self.parameters(), state):
            target[...] = source

    def clone(self) -> "LegacySlimmableMLP":
        # The seed clone really did re-run He initialisation only to
        # overwrite it — preserved here because its cost is part of the
        # recorded baseline (and its RNG is private, so no stream impact).
        copy = LegacySlimmableMLP(
            input_dim=self.input_dim,
            hidden_dims=self.hidden_dims,
            output_dim=self.output_dim,
            widths=self.widths,
            rng=np.random.default_rng(0),
        )
        copy.set_state(self.get_state())
        return copy


class LegacyDqnLearner(DqnLearner):
    """The original DQN update: object batches, masks, fancy-indexed Adam.

    Inherits action selection, target synchronisation and construction from
    :class:`~repro.rl.dqn.DqnLearner` (those did not change) and overrides
    the training path with the pre-vectorization implementation.
    """

    def train_batch(self, transitions: Sequence[Transition], width: float = 1.0) -> float:
        """One DQN update on a batch of transitions (original implementation)."""
        transitions = list(transitions)
        if not transitions:
            raise ReplayBufferError("cannot train on an empty batch")

        states = np.stack([t.state for t in transitions])
        actions = np.array([t.action for t in transitions], dtype=int)
        rewards = np.array([t.reward for t in transitions], dtype=float)
        next_states = np.stack([t.next_state for t in transitions])
        next_widths = np.array([t.next_width for t in transitions], dtype=float)

        max_next_q = np.zeros(len(transitions))
        for next_width in np.unique(next_widths):
            group = next_widths == next_width
            target_q = self.target_network.predict(next_states[group], float(next_width))
            if self.config.double_dqn:
                online_q = self.network.predict(next_states[group], float(next_width))
                best_actions = np.argmax(online_q, axis=1)
                max_next_q[group] = target_q[np.arange(len(best_actions)), best_actions]
            else:
                max_next_q[group] = np.max(target_q, axis=1)
        targets = rewards + self.config.discount * max_next_q

        outputs, cache = self.network.forward(states, width)
        batch_indices = np.arange(len(transitions))
        predictions = outputs[batch_indices, actions]
        loss, grad_predictions = huber_loss_and_grad(
            predictions, targets, self.config.huber_delta
        )

        grad_outputs = np.zeros_like(outputs)
        grad_outputs[batch_indices, actions] = grad_predictions
        weight_grads, bias_grads, weight_masks, bias_masks = self.network.backward(
            cache, grad_outputs
        )
        gradients = []
        masks = []
        for wg, bg, wm, bm in zip(weight_grads, bias_grads, weight_masks, bias_masks):
            gradients.extend([wg, bg])
            masks.extend([wm, bm])
        self._clip_gradients(gradients)

        if self.learning_rate_schedule is not None:
            self.optimizer.set_learning_rate(
                max(1e-6, self.learning_rate_schedule.value(self.train_steps))
            )
        self.optimizer.step(self.network.parameters(), gradients, masks)

        self.train_steps += 1
        if self.train_steps % self.config.target_sync_interval == 0:
            self.sync_target()
        return loss

    def _clip_gradients(self, gradients: Sequence[np.ndarray]) -> None:
        if self.config.max_grad_norm <= 0:
            return
        total = float(np.sqrt(sum(float(np.sum(g**2)) for g in gradients)))
        if total > self.config.max_grad_norm and total > 0:
            scale = self.config.max_grad_norm / total
            for grad in gradients:
                grad *= scale


def use_legacy_rl_path(policy) -> None:
    """Swap a learning policy's replay/training hot path for the legacy one.

    Replaces the policy's Q-network with a weight-identical
    :class:`LegacySlimmableMLP`, its replay buffer(s) with
    :class:`LegacyReplayBuffer` and its learner with a
    :class:`LegacyDqnLearner` sharing the same configuration, optimizer and
    schedule — the complete pre-refactor hot path, end to end.  Must be
    called on a freshly built policy, before any frame has been processed,
    so the legacy and current paths start from identical state.

    Works for both :class:`~repro.core.agent.LotusAgent` (two buffers,
    honouring ``shared_buffer``) and
    :class:`~repro.baselines.ztt.ZttPolicy` (one buffer).
    """
    learner = policy.learner
    network = learner.network
    legacy_network = LegacySlimmableMLP(
        input_dim=network.input_dim,
        hidden_dims=network.hidden_dims,
        output_dim=network.output_dim,
        widths=network.widths,
    )
    legacy_network.set_state(network.get_state())
    policy.network = legacy_network
    policy.learner = LegacyDqnLearner(
        network=legacy_network,
        config=learner.config,
        optimizer=learner.optimizer,
        learning_rate_schedule=learner.learning_rate_schedule,
    )
    if hasattr(policy, "start_buffer"):  # LotusAgent
        shared = policy.mid_buffer is policy.start_buffer
        policy.start_buffer = LegacyReplayBuffer(policy.start_buffer.capacity)
        policy.mid_buffer = (
            policy.start_buffer
            if shared
            else LegacyReplayBuffer(policy.mid_buffer.capacity)
        )
    elif hasattr(policy, "buffer"):  # ZttPolicy
        policy.buffer = LegacyReplayBuffer(policy.buffer.capacity)
    else:
        raise TypeError(f"policy {type(policy).__name__} has no replay buffer to swap")
