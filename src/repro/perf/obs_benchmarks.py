"""Observability overhead benchmark suite (``BENCH_PR10.json``).

Three questions the obs layer must answer with numbers:

* **What does a disabled hook cost?**  The per-call price of
  ``inc``/``observe``/``span`` with no registry installed (the default
  state of every library import) — this is what every hot-path call site
  pays when observability is off, so it is measured in nanoseconds.
* **What does an observed episode cost?**  The gating number is *derived*:
  one observed in-process fleet episode yields the exact hook invocation
  counts (histogram counts and unit counters record one entry per call),
  which are multiplied by the measured per-hook enabled costs and divided
  by the unobserved episode wall time.  This is deterministic and
  reproducible; the direct interleaved on-vs-off wall-clock difference is
  recorded alongside as ``paired_overhead_pct`` but is not the gate — the
  true effect is far below shared-host scheduling noise (±10 % swings on
  a 40 ms episode), so a wall-clock gate would flake in both directions.
  Acceptance ceiling: derived overhead within ``OBS_OVERHEAD_TARGET_PCT``
  percent.
* **What does observing a sharded run cost?**  The warm-pool sharded
  scenario pair (collection off vs on, interleaved) is recorded for the
  worker snapshot/merge path; informational for the same noise reason.

Run via ``python -m repro bench --suite obs``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.perf.timer import BenchReport, measure, measure_pair

#: Default report filename; the label tracks the PR that recorded it.
OBS_BENCH_LABEL = "PR10"
DEFAULT_OBS_OUTPUT = f"BENCH_{OBS_BENCH_LABEL}.json"

#: Acceptance ceiling on the derived observed-run overhead, in percent.
OBS_OVERHEAD_TARGET_PCT = 5.0

#: Shape of the in-process observed episode (sessions x frames).
EPISODE_BENCH_SESSIONS = 32
EPISODE_BENCH_FRAMES = 60

#: Shape of the sharded informational pair (scenario sessions x frames).
SHARDED_BENCH_SCENARIO = "cctv-burst"
SHARDED_BENCH_SESSIONS = 8
SHARDED_BENCH_FRAMES = 40
SHARDED_BENCH_SHARDS = 2

#: Inner-loop calls per repeat for the per-hook microbenchmarks.
HOOK_BENCH_ITERATIONS = 50_000


# ---------------------------------------------------------------------------
# Per-hook micro costs
# ---------------------------------------------------------------------------


def bench_hooks(report: BenchReport, iterations: int, repeats: int) -> dict:
    """Per-call cost of the hot hooks, disabled and enabled."""
    from repro.obs import bus

    def span_call() -> None:
        with bus.span("bench.span"):
            pass

    bus.disable()
    off_inc = measure(
        "obs_off_inc", lambda: bus.inc("bench.counter"), iterations, repeats
    )
    off_observe = measure(
        "obs_off_observe", lambda: bus.observe("bench.hist", 1.0), iterations,
        repeats,
    )
    off_span = measure("obs_off_span", span_call, iterations, repeats)
    bus.enable(fresh=True)
    on_inc = measure(
        "obs_on_inc", lambda: bus.inc("bench.counter"), iterations, repeats
    )
    on_observe = measure(
        "obs_on_observe", lambda: bus.observe("bench.hist", 1.0), iterations,
        repeats,
    )
    on_span = measure("obs_on_span", span_call, iterations, repeats)
    bus.disable()
    for result in (off_inc, off_observe, off_span, on_inc, on_observe, on_span):
        report.add(result)
    return {
        "iterations": iterations,
        "off_inc_ns": off_inc.best_per_iter_ms * 1e6,
        "off_observe_ns": off_observe.best_per_iter_ms * 1e6,
        "off_span_ns": off_span.best_per_iter_ms * 1e6,
        "on_inc_ns": on_inc.best_per_iter_ms * 1e6,
        "on_observe_ns": on_observe.best_per_iter_ms * 1e6,
        "on_span_ns": on_span.best_per_iter_ms * 1e6,
    }


# ---------------------------------------------------------------------------
# Derived overhead of one observed in-process episode
# ---------------------------------------------------------------------------


def _count_hooks(registry) -> dict:
    """Exact hook invocation counts recoverable from a registry.

    Histograms record one entry per ``observe`` call; every span performs
    exactly one duration ``observe`` into its ``span.*`` histogram; the
    hot counters (``fused.kernel_calls``) increment by one per call, so
    summing counter values upper-bounds the ``inc`` calls (counters that
    add batch sizes, e.g. fault cell counts, only push the bound up).
    """
    span_count = 0
    observe_count = 0
    for (name, _labels), histogram in registry.histograms.items():
        if name.startswith("span."):
            span_count += histogram.moments.count
        else:
            observe_count += histogram.moments.count
    return {
        "spans": span_count,
        "observes": observe_count,
        "incs": int(sum(registry.counters.values())),
        "gauges": len(registry.gauges),
        "events": sum(1 for e in registry.events if e["type"] == "event"),
    }


def bench_observed_episode(
    report: BenchReport,
    num_sessions: int,
    num_frames: int,
    repeats: int,
) -> dict:
    """Derived + direct overhead of observing one in-process fleet episode."""
    from repro.obs import bus
    from repro.analysis.experiments import ExperimentSetting
    from repro.env.fleet import run_fleet_episode
    from repro.runtime.fleet import make_fleet_environment, make_fleet_policy

    def run_episode() -> None:
        setting = ExperimentSetting(num_frames=num_frames, seed=0)
        environment = make_fleet_environment(setting, num_sessions)
        policy = make_fleet_policy("default", environment, num_frames, seed=0)
        run_fleet_episode(environment, policy, num_frames)

    def run_observed() -> None:
        bus.enable(fresh=True)
        try:
            run_episode()
        finally:
            bus.disable()

    bus.disable()
    run_episode()  # warm every lazy import outside the timed region
    hooks_registry = bus.enable(fresh=True)
    run_episode()
    counts = _count_hooks(hooks_registry)
    bus.disable()
    observed, plain = measure_pair(
        f"obs_on_episode_{num_sessions}x{num_frames}f",
        run_observed,
        f"obs_off_episode_{num_sessions}x{num_frames}f",
        run_episode,
        iterations=1,
        repeats=repeats,
    )
    report.add(observed)
    report.add(plain)
    hook_costs = _HOOK_COSTS_NS
    estimated_ms = (
        counts["incs"] * hook_costs["inc"]
        + counts["observes"] * hook_costs["observe"]
        + counts["spans"] * hook_costs["span"]
        + counts["events"] * hook_costs["span"]  # an event writes one dict too
        + counts["gauges"] * hook_costs["inc"]
    ) / 1e6
    return {
        "sessions": num_sessions,
        "frames": num_frames,
        "hook_calls": counts,
        "estimated_obs_ms": estimated_ms,
        "obs_off_ms": plain.best_s * 1e3,
        "obs_on_ms": observed.best_s * 1e3,
        "overhead_pct": estimated_ms / (plain.best_s * 1e3) * 100.0,
        "paired_overhead_pct": (observed.best_s - plain.best_s)
        / plain.best_s
        * 100.0,
    }


#: Enabled per-hook costs (ns) filled in by :func:`run_obs_bench_suite`
#: from the micro measurements before the episode benchmark runs.
_HOOK_COSTS_NS = {"inc": 1_000.0, "observe": 2_000.0, "span": 10_000.0}


# ---------------------------------------------------------------------------
# Observed vs unobserved sharded episode (informational)
# ---------------------------------------------------------------------------


def bench_sharded_pair(
    report: BenchReport,
    num_sessions: int,
    num_frames: int,
    num_shards: int,
    repeats: int,
) -> dict:
    """The same warm sharded scenario with collection off vs on."""
    from repro.obs import bus
    from repro.runtime.pool import shutdown_shared_pool
    from repro.runtime.shards import run_sharded_scenario

    def run_episode() -> None:
        run_sharded_scenario(
            SHARDED_BENCH_SCENARIO,
            num_shards=num_shards,
            num_sessions=num_sessions,
            num_frames=num_frames,
        )

    def run_observed() -> None:
        bus.enable(fresh=True)
        try:
            run_episode()
        finally:
            bus.disable()

    # Fresh shared pool, primed once: both sides then reuse the same warm
    # pinned workers (the obs collect flag rides in the task message, so
    # observing does not change the worker fingerprint).
    shutdown_shared_pool()
    bus.disable()
    run_episode()
    observed, plain = measure_pair(
        f"obs_on_sharded_{num_sessions}x{num_frames}f",
        run_observed,
        f"obs_off_sharded_{num_sessions}x{num_frames}f",
        run_episode,
        iterations=1,
        repeats=repeats,
    )
    report.add(observed)
    report.add(plain)
    return {
        "scenario": SHARDED_BENCH_SCENARIO,
        "sessions": num_sessions,
        "frames": num_frames,
        "shards": num_shards,
        "obs_off_ms": plain.best_s * 1e3,
        "obs_on_ms": observed.best_s * 1e3,
        "paired_overhead_pct": (observed.best_s - plain.best_s)
        / plain.best_s
        * 100.0,
    }


# ---------------------------------------------------------------------------
# Suite entry points
# ---------------------------------------------------------------------------


def _fused_status() -> str:
    try:
        from repro.rl.fused import kernel_status

        return kernel_status()
    except Exception:  # pragma: no cover - defensive
        return "unknown"


def run_obs_bench_suite(quick: bool = False) -> "tuple[BenchReport, dict]":
    """Run the obs suite; returns (report, extra metadata).

    Args:
        quick: CI-smoke mode — smaller episodes and fewer repeats, to
            prove execution health rather than produce stable numbers.
    """
    report = BenchReport(label=OBS_BENCH_LABEL, quick=quick)
    repeats = 2 if quick else 3
    hook_iterations = 10_000 if quick else HOOK_BENCH_ITERATIONS
    episode_sessions = 16 if quick else EPISODE_BENCH_SESSIONS
    episode_frames = 24 if quick else EPISODE_BENCH_FRAMES
    sharded_sessions = 4 if quick else SHARDED_BENCH_SESSIONS
    sharded_frames = 16 if quick else SHARDED_BENCH_FRAMES
    hooks = bench_hooks(report, hook_iterations, repeats)
    _HOOK_COSTS_NS["inc"] = hooks["on_inc_ns"]
    _HOOK_COSTS_NS["observe"] = hooks["on_observe_ns"]
    _HOOK_COSTS_NS["span"] = hooks["on_span_ns"]
    episode = bench_observed_episode(
        report, episode_sessions, episode_frames, repeats
    )
    sharded = bench_sharded_pair(
        report, sharded_sessions, sharded_frames, SHARDED_BENCH_SHARDS, repeats
    )
    extra = {
        "hooks": hooks,
        "episode": episode,
        "sharded": sharded,
        "overhead_pct": episode["overhead_pct"],
        "overhead_target_pct": OBS_OVERHEAD_TARGET_PCT,
        "within_target": episode["overhead_pct"] <= OBS_OVERHEAD_TARGET_PCT,
        "fused_status": _fused_status(),
    }
    return report, extra


def write_obs_report(
    report: BenchReport, extra: dict, output: "str | Path"
) -> Path:
    """Serialise the obs suite's report with the overhead verdict."""
    import os

    path = Path(output)
    payload = report.to_dict()
    payload["host_cpu_count"] = os.cpu_count()
    payload.update(extra)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
