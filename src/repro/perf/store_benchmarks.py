"""Columnar trace-store benchmark suite (``BENCH_PR8.json``).

Three questions the zero-copy store must answer with numbers:

* **What does spooling cost at write time?**  Chunked columnar writes
  (:func:`repro.store.write_fleet_trace`) are timed against pickling the
  same trace's frame list — the serialisation path the shard workers used
  before the store existed — and both on-disk footprints are recorded.
* **What does the memory-mapped merge buy?**  Re-interleaving per-shard
  traces through :class:`~repro.store.MappedFleetTrace` manifests (the
  blocked columnar scatter) is timed against unpickling the shard frame
  lists and merging them frame-object by frame-object (the pre-store
  protocol).
* **Can a 10k-session report run in bounded memory?**  The headline
  experiment runs the full paper table sweep plus a whole-fleet report in
  two child processes: the *object* path materialises the in-memory trace
  and dense ``(frames, sessions)`` matrices; the *streaming* path sinks the
  episode straight into a chunk writer and renders the same report from
  memory-mapped column windows — under an enforced ``RLIMIT_DATA`` heap
  ceiling.  Both children record peak RSS (``ru_maxrss``) and wall time,
  and the parent cross-checks that the two reports agree.

Run via ``python -m repro bench --suite store``.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.perf.timer import BenchReport, BenchResult, measure_pair

#: Default report filename; the label tracks the PR that recorded it.
STORE_BENCH_LABEL = "PR8"
DEFAULT_STORE_OUTPUT = f"BENCH_{STORE_BENCH_LABEL}.json"

#: Shape of the synthetic trace the write/merge microbenchmarks use.
WRITE_BENCH_SESSIONS = 256
WRITE_BENCH_FRAMES = 64
MERGE_BENCH_SHARDS = 4

#: The bounded-memory report: a 10k-session fleet episode rendered without
#: ever materialising the trace.
BOUNDED_REPORT_SESSIONS = 10_000
BOUNDED_REPORT_FRAMES = 128

#: Chunk geometry of the report's spooled store: small chunks keep both the
#: writer's buffer and the reader's mapped window proportional to
#: ``chunk_frames * num_sessions``, not to the episode.
BOUNDED_REPORT_CHUNK_FRAMES = 16

#: Heap ceiling (``RLIMIT_DATA``) enforced on the streaming child, MiB.
#: Calibrated well below the object path's measured peak RSS at the default
#: report shape (the object child must hold the full trace plus dense
#: matrices) and comfortably above interpreter + numpy + one chunk buffer.
DEFAULT_RSS_CEILING_MB = 192

#: The paper table sweep both report children render (Tables 1/2 grid).
PAPER_SWEEP_DETECTORS = ("faster_rcnn", "mask_rcnn", "yolo_v5")
PAPER_SWEEP_DATASETS = ("kitti", "visdrone2019")
PAPER_SWEEP_METHODS = ("default", "ztt", "lotus")
PAPER_SWEEP_FRAMES = 64


# ---------------------------------------------------------------------------
# Synthetic traces
# ---------------------------------------------------------------------------


def _synthetic_trace(num_sessions: int, num_frames: int, seed: int = 0,
                     start_index: int = 0):
    """A deterministic random :class:`~repro.env.fleet.FleetTrace`.

    Field dtypes match what the fleet engine emits, so serialisation
    benchmarks move byte-for-byte realistic payloads without paying for a
    simulation.
    """
    from repro.env.fleet import FleetFrameResult, FleetTrace

    rng = np.random.default_rng(seed)
    datasets = ("kitti",) * num_sessions
    trace = FleetTrace(num_sessions)
    for frame in range(num_frames):
        shape = (num_sessions,)
        trace.append(
            FleetFrameResult(
                index=start_index + frame,
                datasets=datasets,
                num_proposals=rng.integers(1, 300, shape, dtype=np.int64),
                stage1_latency_ms=rng.random(shape) * 40.0,
                stage2_latency_ms=rng.random(shape) * 60.0,
                total_latency_ms=rng.random(shape) * 100.0,
                latency_constraint_ms=np.full(shape, 100.0),
                met_constraint=rng.random(shape) < 0.9,
                cpu_temperature_c=40.0 + rng.random(shape) * 30.0,
                gpu_temperature_c=40.0 + rng.random(shape) * 35.0,
                cpu_level_stage1=rng.integers(0, 8, shape, dtype=np.int64),
                gpu_level_stage1=rng.integers(0, 8, shape, dtype=np.int64),
                cpu_level_stage2=rng.integers(0, 8, shape, dtype=np.int64),
                gpu_level_stage2=rng.integers(0, 8, shape, dtype=np.int64),
                cpu_throttled=rng.random(shape) < 0.05,
                gpu_throttled=rng.random(shape) < 0.05,
                ambient_temperature_c=np.full(shape, 25.0),
                energy_j=rng.random(shape) * 2.0,
            )
        )
    return trace


def _tree_bytes(path: Path) -> int:
    return sum(
        p.stat().st_size for p in Path(path).rglob("*") if p.is_file()
    )


# ---------------------------------------------------------------------------
# Write-path microbenchmark
# ---------------------------------------------------------------------------


def bench_chunk_write(
    report: BenchReport, num_sessions: int, num_frames: int, repeats: int
) -> dict:
    """Chunked columnar spool vs pickling the frame list, same trace."""
    from repro.store import write_fleet_trace

    trace = _synthetic_trace(num_sessions, num_frames, seed=11)
    frames = list(trace)
    workdir = Path(tempfile.mkdtemp(prefix="repro-store-bench-"))
    store_dir = workdir / "store"
    pickle_path = workdir / "trace.pkl"
    try:

        def write_store() -> None:
            if store_dir.exists():
                shutil.rmtree(store_dir)
            write_fleet_trace(trace, store_dir)

        def write_pickle() -> None:
            with open(pickle_path, "wb") as handle:
                pickle.dump(frames, handle, protocol=pickle.HIGHEST_PROTOCOL)

        name = f"store_write_{num_sessions}x{num_frames}f"
        current, legacy = measure_pair(
            name,
            write_store,
            f"{name}_pickle",
            write_pickle,
            iterations=1,
            repeats=repeats,
        )
        report.add_pair("store_write", current, legacy)
        return {
            "sessions": num_sessions,
            "frames": num_frames,
            "store_bytes": _tree_bytes(store_dir),
            "pickle_bytes": pickle_path.stat().st_size,
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


# ---------------------------------------------------------------------------
# Merge-path microbenchmark
# ---------------------------------------------------------------------------


def bench_mmap_merge(
    report: BenchReport,
    num_sessions: int,
    num_frames: int,
    num_shards: int,
    repeats: int,
) -> dict:
    """Memory-mapped columnar merge vs unpickle + per-frame object merge."""
    from repro.env.fleet import FleetTrace, _scatter_frame_results
    from repro.env.fleet import validate_session_partition
    from repro.runtime.shards import ShardPlan, _interleave_shard_traces
    from repro.store import write_fleet_trace

    bounds = np.linspace(0, num_sessions, num_shards + 1).astype(int)
    shards = [
        ShardPlan(index=k, start=int(bounds[k]), stop=int(bounds[k + 1]))
        for k in range(num_shards)
    ]
    workdir = Path(tempfile.mkdtemp(prefix="repro-merge-bench-"))
    try:
        manifest_paths = []
        pickle_paths = []
        for shard in shards:
            shard_trace = _synthetic_trace(
                shard.num_sessions, num_frames, seed=100 + shard.index
            )
            store_dir = workdir / f"shard-{shard.index}"
            write_fleet_trace(shard_trace, store_dir)
            manifest_paths.append(str(store_dir))
            pkl = workdir / f"shard-{shard.index}.pkl"
            with open(pkl, "wb") as handle:
                pickle.dump(
                    list(shard_trace), handle, protocol=pickle.HIGHEST_PROTOCOL
                )
            pickle_paths.append(pkl)
        targets = validate_session_partition(
            [shard.session_indices for shard in shards], num_sessions
        )

        def merge_mapped() -> None:
            _interleave_shard_traces(list(manifest_paths), shards, num_sessions)

        def merge_objects() -> None:
            shard_frames = []
            for pkl in pickle_paths:
                with open(pkl, "rb") as handle:
                    shard_frames.append(pickle.load(handle))
            merged = FleetTrace(num_sessions)
            for frame_index in range(num_frames):
                merged.append(
                    _scatter_frame_results(
                        [frames[frame_index] for frames in shard_frames],
                        targets,
                        num_sessions,
                    )
                )

        name = f"mmap_merge_{num_shards}x{num_sessions // num_shards}x{num_frames}f"
        current, legacy = measure_pair(
            name,
            merge_mapped,
            f"{name}_objects",
            merge_objects,
            iterations=1,
            repeats=repeats,
        )
        report.add_pair("mmap_merge", current, legacy)
        return {
            "sessions": num_sessions,
            "frames": num_frames,
            "shards": num_shards,
            "spooled_bytes": sum(
                _tree_bytes(Path(p)) for p in manifest_paths
            ),
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


# ---------------------------------------------------------------------------
# Bounded-memory report (child process)
# ---------------------------------------------------------------------------


def _peak_rss_mb() -> float:
    """High-water resident set of this process in MiB (Linux: KB units)."""
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # bytes on macOS
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def _apply_heap_ceiling(limit_mb: int) -> bool:
    """Enforce an ``RLIMIT_DATA`` heap ceiling; returns True if it stuck."""
    try:
        import resource

        limit = int(limit_mb) * 1024 * 1024
        resource.setrlimit(resource.RLIMIT_DATA, (limit, limit))
        return True
    except (ImportError, AttributeError, ValueError, OSError):
        return False


def _paper_table_sweep(num_frames: int) -> str:
    """Render the full Tables 1/2 grid (detectors × datasets × methods)."""
    from repro.analysis.tables import comparison_table
    from repro.runtime.engine import ExperimentRuntime
    from repro.runtime.sweep import SweepSpec, sweep_metrics_map

    spec = SweepSpec(
        detectors=PAPER_SWEEP_DETECTORS,
        datasets=PAPER_SWEEP_DATASETS,
        methods=PAPER_SWEEP_METHODS,
        num_frames=num_frames,
    )
    jobs = spec.expand()
    results = ExperimentRuntime(max_workers=1).run_jobs(jobs)
    table = sweep_metrics_map(jobs, results, device=spec.devices[0])
    return comparison_table(
        table,
        datasets=list(spec.datasets),
        title=f"paper table sweep ({num_frames} frames/cell)",
    )


def _dense_summary(trace) -> dict:
    """The object-path report: whole ``(frames, sessions)`` matrices."""
    fields = (
        "total_latency_ms",
        "met_constraint",
        "cpu_temperature_c",
        "gpu_temperature_c",
        "cpu_throttled",
        "gpu_throttled",
        "energy_j",
        "num_proposals",
    )
    dense = {
        name: np.stack([getattr(frame, name) for frame in trace])
        for name in fields
    }
    latencies = dense["total_latency_ms"]
    throttled = dense["cpu_throttled"] | dense["gpu_throttled"]
    return {
        "num_sessions": trace.num_sessions,
        "num_frames": len(trace),
        "total_frames": int(latencies.size),
        "mean_latency_ms": float(latencies.mean()),
        "p99_latency_ms": float(np.percentile(latencies, 99.0)),
        "min_latency_ms": float(latencies.min()),
        "max_latency_ms": float(latencies.max()),
        "constraint_met_fraction": float(dense["met_constraint"].mean()),
        "throttled_fraction": float(throttled.mean()),
        "mean_cpu_temperature_c": float(dense["cpu_temperature_c"].mean()),
        "mean_gpu_temperature_c": float(dense["gpu_temperature_c"].mean()),
        "max_temperature_c": float(
            max(dense["cpu_temperature_c"].max(), dense["gpu_temperature_c"].max())
        ),
        "total_energy_j": float(dense["energy_j"].sum(dtype=np.float64)),
        "mean_proposals": float(dense["num_proposals"].mean()),
    }


def _report_child(
    mode: str,
    num_sessions: int,
    num_frames: int,
    sweep_frames: int,
    rss_limit_mb: int,
    workdir: str,
) -> dict:
    """Body of one report child; prints nothing, returns the result dict."""
    from repro.analysis.experiments import ExperimentSetting
    from repro.runtime.fleet import make_fleet_environment, make_fleet_policy

    enforced = False
    if mode == "streaming" and rss_limit_mb > 0:
        enforced = _apply_heap_ceiling(rss_limit_mb)

    start_total = time.perf_counter()
    start = time.perf_counter()
    sweep_table = _paper_table_sweep(sweep_frames)
    wall_sweep = time.perf_counter() - start

    setting = ExperimentSetting(num_frames=num_frames, seed=0)
    environment = make_fleet_environment(setting, num_sessions)
    policy = make_fleet_policy("default", environment, num_frames, seed=0)

    start = time.perf_counter()
    if mode == "object":
        from repro.env.fleet import run_fleet_episode

        trace = run_fleet_episode(environment, policy, num_frames)
        summary = _dense_summary(trace)
        from repro.analysis.streaming import FleetSummary
        from repro.analysis.tables import fleet_summary_table

        fleet_table = fleet_summary_table(
            FleetSummary(**summary), title="fleet report (object path)"
        )
        store_bytes = 0
    elif mode == "streaming":
        from repro.analysis.tables import fleet_summary_table
        from repro.analysis.streaming import summarize_fleet
        from repro.env.fleet import run_fleet_episode
        from repro.store import FleetTraceWriter, MappedFleetTrace

        store_dir = Path(workdir) / "fleet-store"
        writer = FleetTraceWriter(
            store_dir, num_sessions, chunk_frames=BOUNDED_REPORT_CHUNK_FRAMES
        )
        run_fleet_episode(environment, policy, num_frames, sink=writer)
        writer.close()
        mapped = MappedFleetTrace(store_dir, map_cache_chunks=2)
        summary = summarize_fleet(mapped).to_dict()
        fleet_table = fleet_summary_table(
            summarize_fleet(mapped), title="fleet report (streaming path)"
        )
        store_bytes = _tree_bytes(store_dir)
        mapped.close()
    else:  # pragma: no cover - guarded by the argument parser
        raise ValueError(f"unknown report child mode {mode!r}")
    wall_fleet = time.perf_counter() - start

    return {
        "mode": mode,
        "sessions": num_sessions,
        "frames": num_frames,
        "sweep_frames": sweep_frames,
        "sweep_cells": len(PAPER_SWEEP_DETECTORS)
        * len(PAPER_SWEEP_DATASETS)
        * len(PAPER_SWEEP_METHODS),
        "rss_limit_mb": rss_limit_mb if mode == "streaming" else 0,
        "rss_limit_enforced": enforced,
        "peak_rss_mb": _peak_rss_mb(),
        "wall_s_sweep": wall_sweep,
        "wall_s_fleet": wall_fleet,
        "wall_s_total": time.perf_counter() - start_total,
        "store_bytes": store_bytes,
        "summary": summary,
        "sweep_table_lines": sweep_table.count("\n") + 1,
        "fleet_table_lines": fleet_table.count("\n") + 1,
    }


def _run_report_child(
    mode: str,
    num_sessions: int,
    num_frames: int,
    sweep_frames: int,
    rss_limit_mb: int,
) -> dict:
    """Launch one report child as a subprocess and parse its JSON result."""
    import repro

    src_root = Path(repro.__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_root)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    workdir = tempfile.mkdtemp(prefix="repro-report-bench-")
    try:
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.perf.store_benchmarks",
                "--report-child",
                mode,
                "--sessions",
                str(num_sessions),
                "--frames",
                str(num_frames),
                "--sweep-frames",
                str(sweep_frames),
                "--rss-limit-mb",
                str(rss_limit_mb),
                "--workdir",
                workdir,
            ],
            env=env,
            capture_output=True,
            text=True,
        )
        if completed.returncode != 0:
            raise RuntimeError(
                f"report child ({mode}) failed with code "
                f"{completed.returncode}:\n{completed.stderr[-2000:]}"
            )
        return json.loads(completed.stdout)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def bench_bounded_report(
    report: BenchReport,
    num_sessions: int,
    num_frames: int,
    sweep_frames: int,
    rss_limit_mb: int,
) -> dict:
    """The headline experiment: object vs streaming report children."""
    object_result = _run_report_child(
        "object", num_sessions, num_frames, sweep_frames, 0
    )
    streaming_result = _run_report_child(
        "streaming", num_sessions, num_frames, sweep_frames, rss_limit_mb
    )
    for result in (object_result, streaming_result):
        report.add(
            BenchResult(
                name=f"report_{num_sessions}x{num_frames}f_{result['mode']}",
                iterations=1,
                repeats=1,
                best_s=result["wall_s_total"],
                mean_s=result["wall_s_total"],
            )
        )
    # The win is memory, not time: record the peak-RSS ratio as the family
    # "speedup" (legacy / current, consistent with the wall-time families).
    report.speedups["report_peak_rss"] = (
        object_result["peak_rss_mb"] / streaming_result["peak_rss_mb"]
    )
    deltas = []
    for key, object_value in object_result["summary"].items():
        streaming_value = streaming_result["summary"][key]
        scale = max(abs(object_value), abs(streaming_value), 1e-12)
        deltas.append(abs(object_value - streaming_value) / scale)
    return {
        "object": object_result,
        "streaming": streaming_result,
        "peak_rss_ratio": report.speedups["report_peak_rss"],
        "summary_max_rel_delta": max(deltas),
    }


# ---------------------------------------------------------------------------
# Suite entry points
# ---------------------------------------------------------------------------


def run_store_bench_suite(quick: bool = False) -> tuple[BenchReport, dict]:
    """Run the trace-store suite; returns (report, extra metadata).

    Args:
        quick: CI-smoke mode — smaller traces, one repeat and a reduced
            report fleet, to prove execution health.
    """
    report = BenchReport(label=STORE_BENCH_LABEL, quick=quick)
    repeats = 1 if quick else 3
    write_sessions = 64 if quick else WRITE_BENCH_SESSIONS
    write_frames = 16 if quick else WRITE_BENCH_FRAMES
    report_sessions = 1_000 if quick else BOUNDED_REPORT_SESSIONS
    report_frames = 16 if quick else BOUNDED_REPORT_FRAMES
    sweep_frames = 8 if quick else PAPER_SWEEP_FRAMES
    extra = {
        "write_bench": bench_chunk_write(
            report, write_sessions, write_frames, repeats
        ),
        "merge_bench": bench_mmap_merge(
            report, write_sessions, write_frames, MERGE_BENCH_SHARDS, repeats
        ),
        "bounded_report": bench_bounded_report(
            report,
            report_sessions,
            report_frames,
            sweep_frames,
            DEFAULT_RSS_CEILING_MB,
        ),
    }
    return report, extra


def write_store_report(
    report: BenchReport, extra: dict, output: str | Path
) -> Path:
    """Serialise the store suite's report plus its report-child metadata."""
    path = Path(output)
    payload = report.to_dict()
    payload["host_cpu_count"] = os.cpu_count()
    payload.update(extra)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def main(argv: list[str] | None = None) -> int:
    """Module entry point: only the report-child protocol lives here."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro.perf.store_benchmarks")
    parser.add_argument(
        "--report-child", choices=("object", "streaming"), required=True
    )
    parser.add_argument("--sessions", type=int, required=True)
    parser.add_argument("--frames", type=int, required=True)
    parser.add_argument("--sweep-frames", type=int, required=True)
    parser.add_argument("--rss-limit-mb", type=int, default=0)
    parser.add_argument("--workdir", required=True)
    args = parser.parse_args(argv)
    result = _report_child(
        args.report_child,
        args.sessions,
        args.frames,
        args.sweep_frames,
        args.rss_limit_mb,
        args.workdir,
    )
    print(json.dumps(result))
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    raise SystemExit(main())
