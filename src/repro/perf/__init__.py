"""Performance benchmarking subsystem.

First-class measurement infrastructure for the repository's perf
trajectory: every performance claim made by a PR is a number recorded in a
``BENCH_*.json`` file at the repo root, produced by ``python -m repro
bench`` from the microbenchmarks in this package.

* :mod:`repro.perf.timer` — :class:`Timer`, :func:`measure`,
  :class:`BenchResult` and :class:`BenchReport` (the JSON schema).
* :mod:`repro.perf.benchmarks` — the benchmark suite: replay push/sample,
  slimmable forward/backward at both widths, ``train_batch``, and a full
  Lotus session, each timed against the frozen pre-refactor reference.
* :mod:`repro.perf.legacy` — that reference: the original deque replay and
  mask-padded DQN update, kept verbatim as baseline and equivalence oracle.
"""

from repro.perf.timer import BenchReport, BenchResult, Timer, measure, measure_pair
from repro.perf.benchmarks import (
    DEFAULT_OUTPUT,
    SPEEDUP_TARGETS,
    format_report,
    run_bench_suite,
    write_report,
)

__all__ = [
    "BenchReport",
    "BenchResult",
    "DEFAULT_OUTPUT",
    "SPEEDUP_TARGETS",
    "Timer",
    "format_report",
    "measure",
    "measure_pair",
    "run_bench_suite",
    "write_report",
]
