"""Performance benchmarking subsystem.

First-class measurement infrastructure for the repository's perf
trajectory: every performance claim made by a PR is a number recorded in a
``BENCH_*.json`` file at the repo root, produced by ``python -m repro
bench`` from the microbenchmarks in this package.

* :mod:`repro.perf.timer` — :class:`Timer`, :func:`measure`,
  :class:`BenchResult` and :class:`BenchReport` (the JSON schema).
* :mod:`repro.perf.benchmarks` — the RL benchmark suite: replay
  push/sample, slimmable forward/backward at both widths, ``train_batch``,
  and a full Lotus session, each timed against the frozen pre-refactor
  reference.
* :mod:`repro.perf.fleet_benchmarks` — the fleet-engine suite: a full
  fleet episode, the batched thermal/governor/proposal kernels, each timed
  against the equivalent loop over scalar objects (``BENCH_PR3.json``).
* :mod:`repro.perf.fault_benchmarks` — the fault-tolerance suite: retry
  overhead per message on clean vs lossy channels, and supervised crash
  recovery time across fleet sizes (``BENCH_PR7.json``).
* :mod:`repro.perf.store_benchmarks` — the trace-store suite: chunked
  columnar writes vs pickling, memory-mapped shard merges vs per-frame
  object merges, and the bounded-memory 10k-session report under an
  enforced heap ceiling (``BENCH_PR8.json``).
* :mod:`repro.perf.pool_benchmarks` — the persistent-pool suite: warm
  shared-pool vs cold pool-per-episode sharded throughput, back-to-back
  matrix re-renders, the fused-vs-NumPy ``lotus-fleet`` train step, and
  the aggregate frames/s headline against the 1M+ target
  (``BENCH_PR9.json``).
* :mod:`repro.perf.obs_benchmarks` — the observability suite: per-call
  cost of disabled and enabled obs hooks, and the obs-on vs obs-off wall
  time of a warm sharded episode against the ≤ 5 % overhead ceiling
  (``BENCH_PR10.json``).
* :mod:`repro.perf.legacy` — the RL reference: the original deque replay
  and mask-padded DQN update, kept verbatim as baseline and equivalence
  oracle.
"""

from repro.perf.timer import BenchReport, BenchResult, Timer, measure, measure_pair
from repro.perf.benchmarks import (
    DEFAULT_OUTPUT,
    SPEEDUP_TARGETS,
    format_report,
    run_bench_suite,
    write_report,
)
from repro.perf.fault_benchmarks import (
    DEFAULT_FAULTS_OUTPUT,
    run_fault_bench_suite,
    write_fault_report,
)
from repro.perf.store_benchmarks import (
    DEFAULT_STORE_OUTPUT,
    STORE_BENCH_LABEL,
    run_store_bench_suite,
    write_store_report,
)
from repro.perf.pool_benchmarks import (
    DEFAULT_POOL_OUTPUT,
    POOL_BENCH_LABEL,
    POOL_THROUGHPUT_TARGET_FPS,
    run_pool_bench_suite,
    write_pool_report,
)
from repro.perf.obs_benchmarks import (
    DEFAULT_OBS_OUTPUT,
    OBS_BENCH_LABEL,
    OBS_OVERHEAD_TARGET_PCT,
    run_obs_bench_suite,
    write_obs_report,
)
from repro.perf.fleet_benchmarks import (
    DEFAULT_FLEET_OUTPUT,
    DEFAULT_SHARD_OUTPUT,
    FLEET_SIZE,
    FLEET_SPEEDUP_TARGETS,
    SHARD_THROUGHPUT_TARGET_FPS,
    run_fleet_bench_suite,
    run_shard_bench_suite,
    write_fleet_report,
    write_shard_report,
)

__all__ = [
    "BenchReport",
    "BenchResult",
    "DEFAULT_FAULTS_OUTPUT",
    "DEFAULT_FLEET_OUTPUT",
    "DEFAULT_OBS_OUTPUT",
    "DEFAULT_POOL_OUTPUT",
    "DEFAULT_SHARD_OUTPUT",
    "DEFAULT_STORE_OUTPUT",
    "DEFAULT_OUTPUT",
    "OBS_BENCH_LABEL",
    "OBS_OVERHEAD_TARGET_PCT",
    "POOL_BENCH_LABEL",
    "POOL_THROUGHPUT_TARGET_FPS",
    "FLEET_SIZE",
    "FLEET_SPEEDUP_TARGETS",
    "SHARD_THROUGHPUT_TARGET_FPS",
    "SPEEDUP_TARGETS",
    "STORE_BENCH_LABEL",
    "Timer",
    "format_report",
    "measure",
    "measure_pair",
    "run_bench_suite",
    "run_fault_bench_suite",
    "run_fleet_bench_suite",
    "run_obs_bench_suite",
    "run_pool_bench_suite",
    "run_shard_bench_suite",
    "run_store_bench_suite",
    "write_fault_report",
    "write_fleet_report",
    "write_obs_report",
    "write_pool_report",
    "write_shard_report",
    "write_store_report",
    "write_report",
]
