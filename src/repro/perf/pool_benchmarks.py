"""Persistent worker-pool benchmark suite (``BENCH_PR9.json``).

Four questions the warm-worker runtime must answer with numbers:

* **What does a warm worker save per sharded episode?**  The same sharded
  scenario is run repeatedly through a cold path (``REPRO_POOL=0``: a
  private single-use pool per call — process spawn plus a from-scratch
  environment/policy rebuild every time, exactly what PR 6 paid) and
  through the shared persistent pool after one priming call (fingerprint
  pinned, workers warm).  Acceptance floor: warm ≥ 2x cold.
* **What does the shared pool buy a back-to-back matrix re-render?**  The
  generalization matrix and the paper sweeps both execute through
  :meth:`~repro.runtime.engine.ExperimentRuntime.run_jobs`; re-rendering
  the same job grid twice in a row is timed on the shared pool against
  the per-call ``ProcessPoolExecutor`` fallback.
* **What do the fused pair-forward / TD-target / Huber kernels buy the
  ``lotus-fleet`` train step?**  Two child processes time the identical
  :meth:`~repro.rl.dqn.DqnLearner.train_batch` loop on a lotus-fleet-shaped
  agent, one with ``REPRO_FUSED=1`` and one with ``REPRO_FUSED=0``.
  Acceptance floor: fused ≥ 1.2x NumPy.
* **Where does aggregate throughput stand against the 1M+ frames/s
  target?**  The best observed frames/s across the in-process batched
  fleet episode and the warm sharded runs is recorded next to
  ``host_cpu_count`` — the public target assumes a multi-core box, so a
  small host reports its honest (possibly sub-target) number.

Run via ``python -m repro bench --suite pool``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.perf.timer import BenchReport, BenchResult, measure

#: Default report filename; the label tracks the PR that recorded it.
POOL_BENCH_LABEL = "PR9"
DEFAULT_POOL_OUTPUT = f"BENCH_{POOL_BENCH_LABEL}.json"

#: Documented multi-core throughput target (ROADMAP item 2).
POOL_THROUGHPUT_TARGET_FPS = 1_000_000

#: Acceptance floors recorded into the report.
WARM_SPEEDUP_TARGET = 2.0
FUSED_TRAIN_SPEEDUP_TARGET = 1.2

#: Shape of the repeated sharded episode (scenario sessions x frames).
WARM_BENCH_SCENARIO = "cctv-burst"
WARM_BENCH_SESSIONS = 8
WARM_BENCH_FRAMES = 40
WARM_BENCH_SHARDS = 2

#: The matrix-style job grid re-rendered back to back.
MATRIX_BENCH_FRAMES = 24
MATRIX_BENCH_DETECTORS = ("faster_rcnn", "yolo_v5")
MATRIX_BENCH_METHODS = ("default", "ztt")

#: The fused train-step child: lotus-fleet network shape, steps timed.
TRAIN_BENCH_STEPS = 300
TRAIN_BENCH_WARMUP = 20

#: In-process batched fleet episode used for the aggregate frames/s number.
AGGREGATE_BENCH_SESSIONS = 512
AGGREGATE_BENCH_FRAMES = 60


def _pool_disabled() -> "dict[str, str]":
    """Environment overrides that force the cold (pool-less) path."""
    from repro.runtime.pool import POOL_ENV

    return {POOL_ENV: "0"}


class _env_override:
    """Temporarily set environment variables around a timed call."""

    def __init__(self, overrides: "dict[str, str]"):
        self.overrides = overrides
        self._saved: "dict[str, str | None]" = {}

    def __enter__(self) -> None:
        for key, value in self.overrides.items():
            self._saved[key] = os.environ.get(key)
            os.environ[key] = value

    def __exit__(self, *exc) -> None:
        for key, saved in self._saved.items():
            if saved is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = saved


# ---------------------------------------------------------------------------
# Warm vs cold sharded episodes
# ---------------------------------------------------------------------------


def bench_warm_vs_cold(
    report: BenchReport,
    num_sessions: int,
    num_frames: int,
    num_shards: int,
    repeats: int,
) -> dict:
    """The same sharded scenario, cold pool-per-episode vs warm shared pool."""
    from repro.runtime.pool import shared_pool, shutdown_shared_pool
    from repro.runtime.shards import run_sharded_scenario

    def run_episode() -> None:
        run_sharded_scenario(
            WARM_BENCH_SCENARIO,
            num_shards=num_shards,
            num_sessions=num_sessions,
            num_frames=num_frames,
        )

    def run_cold() -> None:
        with _env_override(_pool_disabled()):
            run_episode()

    # A fresh shared pool, primed once so every measured episode hits warm
    # pinned workers (the steady state of a long-running campaign).
    shutdown_shared_pool()
    run_episode()
    warm = measure(
        f"pool_warm_{num_sessions}x{num_frames}f", run_episode, iterations=1,
        repeats=repeats,
    )
    warm_stats = dict(shared_pool().stats)
    cold = measure(
        f"pool_cold_{num_sessions}x{num_frames}f", run_cold, iterations=1,
        repeats=repeats,
    )
    report.add_pair("warm_pool", warm, cold)
    frames_per_episode = num_sessions * num_frames
    return {
        "scenario": WARM_BENCH_SCENARIO,
        "sessions": num_sessions,
        "frames": num_frames,
        "shards": num_shards,
        "frames_per_episode": frames_per_episode,
        "cold_frames_per_second": frames_per_episode / cold.best_s,
        "warm_frames_per_second": frames_per_episode / warm.best_s,
        "warm_speedup": cold.best_s / warm.best_s,
        "warm_pool_stats": warm_stats,
    }


# ---------------------------------------------------------------------------
# Back-to-back matrix re-render
# ---------------------------------------------------------------------------


def bench_matrix_rerender(
    report: BenchReport, num_frames: int, repeats: int
) -> dict:
    """Re-render a matrix-style job grid twice, shared pool vs executor.

    The generalization matrix executes its cells through
    :meth:`ExperimentRuntime.run_jobs`; this times exactly that substrate
    (cache disabled so every cell really executes) on a double render —
    the second render is where the persistent pool's warm workers pay off
    against the per-call ``ProcessPoolExecutor`` rebuild.
    """
    from repro.runtime.engine import ExperimentRuntime
    from repro.runtime.pool import shutdown_shared_pool
    from repro.runtime.sweep import SweepSpec

    jobs = SweepSpec(
        detectors=MATRIX_BENCH_DETECTORS,
        methods=MATRIX_BENCH_METHODS,
        num_frames=num_frames,
    ).expand()
    runtime = ExperimentRuntime(max_workers=max(2, os.cpu_count() or 1))

    def render_twice() -> None:
        runtime.run_jobs(jobs)
        runtime.run_jobs(jobs)

    def render_twice_cold() -> None:
        with _env_override(_pool_disabled()):
            render_twice()

    shutdown_shared_pool()
    runtime.run_jobs(jobs)  # prime the shared pool
    warm = measure(
        f"matrix_rerender_{len(jobs)}cells", render_twice, iterations=1,
        repeats=repeats,
    )
    cold = measure(
        f"matrix_rerender_{len(jobs)}cells_executor", render_twice_cold,
        iterations=1, repeats=repeats,
    )
    report.add_pair("matrix_rerender", warm, cold)
    return {
        "cells": len(jobs),
        "frames_per_cell": num_frames,
        "renders": 2,
        "warm_wall_s": warm.best_s,
        "executor_wall_s": cold.best_s,
        "rerender_speedup": cold.best_s / warm.best_s,
    }


# ---------------------------------------------------------------------------
# Fused vs NumPy lotus-fleet train step (child processes)
# ---------------------------------------------------------------------------


def _train_child(steps: int, warmup: int) -> dict:
    """Body of one train-step child; returns the timing dict."""
    from repro.core.fleet import FleetLotusAgent
    from repro.rl.fused import fused_adam
    from repro.rl.replay import ReplayBuffer, Transition

    agent = FleetLotusAgent(
        cpu_levels=8,
        gpu_levels=8,
        temperature_threshold_c=70.0,
        proposal_scale=100.0,
        num_sessions=16,
    )
    learner = agent.learner
    batch_size = learner.config.batch_size
    rng = np.random.default_rng(42)
    buffer = ReplayBuffer(capacity=4096)
    num_actions = learner.network.output_dim
    for _ in range(1024):
        buffer.push(
            Transition(
                state=rng.normal(size=7),
                action=int(rng.integers(num_actions)),
                reward=float(rng.normal()),
                next_state=rng.normal(size=7),
                next_width=1.0,
            )
        )
    sample_rng = np.random.default_rng(7)
    for _ in range(warmup):
        learner.train_batch(buffer.sample(batch_size, sample_rng), width=1.0)
    start = time.perf_counter()
    for _ in range(steps):
        learner.train_batch(buffer.sample(batch_size, sample_rng), width=1.0)
    elapsed = time.perf_counter() - start
    return {
        "fused": fused_adam() is not None,
        "steps": steps,
        "batch_size": batch_size,
        "per_step_ms": elapsed / steps * 1000.0,
        "wall_s": elapsed,
    }


def _run_train_child(fused: bool, steps: int, warmup: int) -> dict:
    """Launch one train-step child under ``REPRO_FUSED={0,1}``."""
    import repro

    src_root = Path(repro.__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_root)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    env["REPRO_FUSED"] = "1" if fused else "0"
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.perf.pool_benchmarks",
            "--train-child",
            "--steps",
            str(steps),
            "--warmup",
            str(warmup),
        ],
        env=env,
        capture_output=True,
        text=True,
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"train child (fused={fused}) failed with code "
            f"{completed.returncode}:\n{completed.stderr[-2000:]}"
        )
    result = json.loads(completed.stdout)
    if result["fused"] != fused:
        raise RuntimeError(
            f"train child resolved fused={result['fused']}, expected {fused} "
            "(compiler unavailable or self-test failed?)"
        )
    return result


def bench_fused_train_step(
    report: BenchReport, steps: int, warmup: int
) -> dict:
    """Fused-vs-NumPy lotus-fleet ``train_batch``, one child per mode."""
    fused_result = _run_train_child(True, steps, warmup)
    numpy_result = _run_train_child(False, steps, warmup)
    for result, tag in ((fused_result, "fused"), (numpy_result, "numpy")):
        report.add(
            BenchResult(
                name=f"lotus_train_step_{tag}",
                iterations=result["steps"],
                repeats=1,
                best_s=result["wall_s"],
                mean_s=result["wall_s"],
            )
        )
    speedup = numpy_result["per_step_ms"] / fused_result["per_step_ms"]
    report.speedups["fused_train"] = speedup
    return {
        "fused": fused_result,
        "numpy": numpy_result,
        "fused_speedup": speedup,
    }


# ---------------------------------------------------------------------------
# Aggregate frames/s headline
# ---------------------------------------------------------------------------


def bench_aggregate_throughput(
    report: BenchReport, num_sessions: int, num_frames: int, repeats: int
) -> dict:
    """In-process batched fleet episode: aggregate frames per second."""
    from repro.analysis.experiments import ExperimentSetting
    from repro.env.fleet import run_fleet_episode
    from repro.runtime.fleet import make_fleet_environment, make_fleet_policy

    setting = ExperimentSetting(num_frames=num_frames, seed=0)

    def run_episode() -> None:
        environment = make_fleet_environment(setting, num_sessions)
        policy = make_fleet_policy("default", environment, num_frames, seed=0)
        run_fleet_episode(environment, policy, num_frames)

    session = measure(
        f"fleet_episode_{num_sessions}x{num_frames}f", run_episode,
        iterations=1, repeats=repeats,
    )
    report.add(session)
    total_frames = num_sessions * num_frames
    return {
        "sessions": num_sessions,
        "frames": num_frames,
        "aggregate_frames_per_second": total_frames / session.best_s,
    }


# ---------------------------------------------------------------------------
# Suite entry points
# ---------------------------------------------------------------------------


def run_pool_bench_suite(quick: bool = False) -> "tuple[BenchReport, dict]":
    """Run the pool suite; returns (report, extra metadata).

    Args:
        quick: CI-smoke mode — smaller episodes and single repeats, to
            prove execution health rather than produce stable numbers.
    """
    report = BenchReport(label=POOL_BENCH_LABEL, quick=quick)
    repeats = 1 if quick else 3
    warm_sessions = 4 if quick else WARM_BENCH_SESSIONS
    warm_frames = 16 if quick else WARM_BENCH_FRAMES
    matrix_frames = 8 if quick else MATRIX_BENCH_FRAMES
    train_steps = 60 if quick else TRAIN_BENCH_STEPS
    train_warmup = 5 if quick else TRAIN_BENCH_WARMUP
    aggregate_sessions = 128 if quick else AGGREGATE_BENCH_SESSIONS
    aggregate_frames = 16 if quick else AGGREGATE_BENCH_FRAMES
    extra = {
        "warm_vs_cold": bench_warm_vs_cold(
            report, warm_sessions, warm_frames, WARM_BENCH_SHARDS, repeats
        ),
        "matrix_rerender": bench_matrix_rerender(report, matrix_frames, repeats),
        "fused_train": bench_fused_train_step(report, train_steps, train_warmup),
        "aggregate": bench_aggregate_throughput(
            report, aggregate_sessions, aggregate_frames, repeats
        ),
    }
    return report, extra


def write_pool_report(
    report: BenchReport, extra: dict, output: "str | Path"
) -> Path:
    """Serialise the pool suite's report with targets and the honest host.

    ``best_observed_frames_per_second`` is the max across the in-process
    batched episode and the warm sharded path; ``host_cpu_count`` records
    the machine it was measured on — the 1M+ target is a multi-core
    number, so a small host's shortfall is expected and stated rather
    than hidden.
    """
    path = Path(output)
    payload = report.to_dict()
    payload["host_cpu_count"] = os.cpu_count()
    payload["throughput_target_frames_per_second"] = POOL_THROUGHPUT_TARGET_FPS
    payload["warm_speedup_target"] = WARM_SPEEDUP_TARGET
    payload["fused_train_speedup_target"] = FUSED_TRAIN_SPEEDUP_TARGET
    best = max(
        extra["aggregate"]["aggregate_frames_per_second"],
        extra["warm_vs_cold"]["warm_frames_per_second"],
    )
    payload["best_observed_frames_per_second"] = best
    payload["throughput_target_met"] = best >= POOL_THROUGHPUT_TARGET_FPS
    payload.update(extra)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def main(argv: "list[str] | None" = None) -> int:
    """Module entry point: only the train-step child protocol lives here."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro.perf.pool_benchmarks")
    parser.add_argument("--train-child", action="store_true", required=True)
    parser.add_argument("--steps", type=int, required=True)
    parser.add_argument("--warmup", type=int, required=True)
    args = parser.parse_args(argv)
    print(json.dumps(_train_child(args.steps, args.warmup)))
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    raise SystemExit(main())
