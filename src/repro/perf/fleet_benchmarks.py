"""Microbenchmarks of the vectorized fleet engine.

Second entry of the repository's perf trajectory: every benchmark times the
batched fleet kernel next to the equivalent loop over scalar objects in the
same process on the same seeds, so the ``BENCH_PR3.json`` speedups are
apples-to-apples.  Covered:

* ``fleet_session`` — the headline: a full default-governor episode on the
  fleet engine vs. the same N sessions run one at a time through the scalar
  environment (aggregate frames/sec ratio; acceptance floor 5x at N=64),
* ``fleet_thermal`` — one executed device segment (power, RC integration,
  throttle update) batched vs. a loop over scalar devices,
* ``fleet_governor`` — one schedutil + simple_ondemand decision batched vs.
  the scalar governor loop,
* ``fleet_proposals`` — proposal sampling batched vs. the scalar loop,
* ``fleet_heterogeneous`` — a mixed-device, mixed-ambient
  ``mixed-edge-fleet`` scenario on the grouped sub-fleet engine vs. the
  same sessions run one at a time as scalar scenario references.

Run via ``python -m repro bench --suite fleet``; the report lands in
``BENCH_PR3.json`` by default.

The module also carries the *shard-scaling* suite (``--suite shards``,
``BENCH_PR6.json``): one homogeneous default-governor fleet cell run
through :func:`repro.runtime.shards.run_sharded_fleet` at increasing shard
counts, recording aggregate frames/second per count next to the host's
core count and the documented multi-core throughput target
(:data:`SHARD_THROUGHPUT_TARGET_FPS`).  Shard results are byte-identical
to the unsharded run (``tests/test_fleet_sharding.py``), so the suite
measures pure engine scaling, not a relaxed variant.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.analysis.experiments import ExperimentSetting, make_environment, make_policy
from repro.detection.fleet import propose_batch
from repro.detection.registry import build_detector
from repro.env.episode import run_episode
from repro.env.fleet import run_fleet_episode
from repro.governors.fleet import build_batched_default_governor
from repro.governors.registry import build_default_governor
from repro.hardware.devices.registry import build_device
from repro.hardware.fleet import DeviceFleet
from repro.perf.timer import BenchReport, measure
from repro.runtime.fleet import make_fleet_environment, make_fleet_policy

#: Default report filename; the label tracks the PR that recorded it.
BENCH_LABEL = "PR3"
DEFAULT_FLEET_OUTPUT = f"BENCH_{BENCH_LABEL}.json"

#: Fleet size of the headline benchmark (the acceptance floor is defined
#: at N=64; quick mode shrinks the episode, not the fleet).
FLEET_SIZE = 64

#: Acceptance floors recorded into the report for context (the benchmark
#: itself does not gate on them; tests/test_fleet_perf.py does).
FLEET_SPEEDUP_TARGETS = {"fleet_session": 5.0}

#: Label and default output of the shard-scaling suite.
SHARD_BENCH_LABEL = "PR6"
DEFAULT_SHARD_OUTPUT = f"BENCH_{SHARD_BENCH_LABEL}.json"

#: Shard counts the scaling suite sweeps by default.
DEFAULT_SHARD_COUNTS = (1, 2, 4, 8)

#: Documented multi-core throughput target: 1M+ aggregate frames/second.
#: A single core sustains roughly 40-100k frames/s on the default-governor
#: cell depending on hardware, so the target needs >= 10-16 physical cores
#: with near-linear shard scaling; the report records the host's measured
#: per-shard-count throughput and core count next to this constant so a
#: single-core CI record is never mistaken for a target miss.
SHARD_THROUGHPUT_TARGET_FPS = 1_000_000.0


def bench_fleet_session(
    report: BenchReport, fleet_size: int, frames: int, repeats: int
) -> None:
    """Full default-governor episode: fleet engine vs. N scalar sessions."""
    setting = ExperimentSetting(num_frames=frames, seed=0)
    fleet_env = make_fleet_environment(setting, fleet_size)
    fleet_policy = make_fleet_policy("default", fleet_env, frames, seed=0)
    scalar_envs = [
        make_environment(setting.with_overrides(seed=i)) for i in range(fleet_size)
    ]
    scalar_policies = [
        make_policy("default", env, frames, seed=i)
        for i, env in enumerate(scalar_envs)
    ]

    def run_fleet_side() -> None:
        run_fleet_episode(fleet_env, fleet_policy, frames)

    def run_scalar_side() -> None:
        for env, policy in zip(scalar_envs, scalar_policies):
            run_episode(env, policy, frames)

    name = f"fleet_session_{fleet_size}x{frames}f"
    current = measure(name, run_fleet_side, iterations=1, repeats=repeats)
    legacy = measure(f"{name}_scalar", run_scalar_side, iterations=1, repeats=repeats)
    report.add_pair("fleet_session", current, legacy)


def bench_fleet_thermal(
    report: BenchReport, fleet_size: int, iterations: int, repeats: int
) -> None:
    """One executed 150 ms segment: batched device kernel vs. scalar loop."""
    fleet = DeviceFleet(build_device("jetson-orin-nano"), fleet_size)
    devices = [build_device("jetson-orin-nano") for _ in range(fleet_size)]
    duration = np.full(fleet_size, 150.0)

    current = measure(
        f"fleet_thermal_{fleet_size}",
        lambda: fleet.execute(duration, 0.4, 0.85),
        iterations=iterations,
        repeats=repeats,
        setup=fleet.reset,
    )

    def scalar_segment() -> None:
        for device in devices:
            device.execute(150.0, 0.4, 0.85)

    def scalar_reset() -> None:
        for device in devices:
            device.reset()

    legacy = measure(
        f"fleet_thermal_{fleet_size}_scalar",
        scalar_segment,
        iterations=iterations,
        repeats=repeats,
        setup=scalar_reset,
    )
    report.add_pair("fleet_thermal", current, legacy)


def bench_fleet_governor(
    report: BenchReport, fleet_size: int, iterations: int, repeats: int
) -> None:
    """One joint governor decision: batched kernels vs. the scalar loop."""
    rng = np.random.default_rng(5)
    cpu_util = rng.uniform(0.1, 1.0, size=fleet_size)
    gpu_util = rng.uniform(0.1, 1.0, size=fleet_size)
    cpu_levels = rng.integers(0, 10, size=fleet_size)
    gpu_levels = rng.integers(0, 5, size=fleet_size)
    batched = build_batched_default_governor("jetson-orin-nano")
    scalar = build_default_governor("jetson-orin-nano")

    def batched_decide() -> None:
        batched.cpu_governor.select_levels(cpu_util, cpu_levels, 10)
        batched.gpu_governor.select_levels(gpu_util, gpu_levels, 5)

    def scalar_decide() -> None:
        for i in range(fleet_size):
            scalar.cpu_governor.select_level(cpu_util[i], int(cpu_levels[i]), 10)
            scalar.gpu_governor.select_level(gpu_util[i], int(gpu_levels[i]), 5)

    current = measure(
        f"fleet_governor_{fleet_size}", batched_decide,
        iterations=iterations, repeats=repeats,
    )
    legacy = measure(
        f"fleet_governor_{fleet_size}_scalar", scalar_decide,
        iterations=iterations, repeats=repeats,
    )
    report.add_pair("fleet_governor", current, legacy)


def bench_fleet_proposals(
    report: BenchReport, fleet_size: int, iterations: int, repeats: int
) -> None:
    """Proposal sampling: batched exp/clip tail vs. the scalar loop."""
    detector = build_detector("faster_rcnn")
    candidates = np.random.default_rng(6).uniform(20.0, 400.0, size=fleet_size)
    batched_rngs = [np.random.default_rng(i) for i in range(fleet_size)]
    scalar_rngs = [np.random.default_rng(i) for i in range(fleet_size)]

    current = measure(
        f"fleet_proposals_{fleet_size}",
        lambda: propose_batch(detector, candidates, batched_rngs),
        iterations=iterations,
        repeats=repeats,
    )

    def scalar_propose() -> None:
        for i in range(fleet_size):
            detector.propose(float(candidates[i]), scalar_rngs[i])

    legacy = measure(
        f"fleet_proposals_{fleet_size}_scalar", scalar_propose,
        iterations=iterations, repeats=repeats,
    )
    report.add_pair("fleet_proposals", current, legacy)


def bench_fleet_heterogeneous(
    report: BenchReport, num_sessions: int, frames: int, repeats: int
) -> None:
    """Mixed-device/ambient scenario: grouped fleet engine vs. scalar loop.

    Uses the governor-driven members of the built-in ``mixed-edge-fleet``
    (the learning member is dropped so the comparison times the engine, not
    DQN training); the scalar side runs each session's own spec + seed
    through the scalar environment, exactly like the equivalence oracle.
    """
    from repro.runtime.fleet import run_fleet_scenario, scalar_reference_session
    from repro.scenarios import FleetScenario, build_scenario

    base = build_scenario("mixed-edge-fleet")
    scenario = FleetScenario(
        name="mixed-edge-fleet-bench",
        members=tuple(
            member
            for member in base.members
            if member.spec.method in ("default", "performance", "powersave", "fixed")
        ),
        description="governor-only members of mixed-edge-fleet",
    )
    assignments = scenario.session_assignments(num_sessions)

    def run_grouped_side() -> None:
        run_fleet_scenario(scenario, num_sessions=num_sessions, num_frames=frames)

    def run_scalar_side() -> None:
        for assignment in assignments:
            scalar_reference_session(
                assignment.spec, seed=assignment.seed, num_frames=frames
            )

    name = f"fleet_hetero_{num_sessions}x{frames}f"
    current = measure(name, run_grouped_side, iterations=1, repeats=repeats)
    legacy = measure(f"{name}_scalar", run_scalar_side, iterations=1, repeats=repeats)
    report.add_pair("fleet_heterogeneous", current, legacy)


def bench_shard_scaling(
    report: BenchReport,
    fleet_size: int,
    frames: int,
    shard_counts: tuple[int, ...],
    repeats: int,
) -> None:
    """One default-governor fleet cell at every shard count in the sweep.

    Records one result per count (``fleet_shards_{k}of{N}x{F}f``) plus a
    ``fleet_shards_{k}`` speedup relative to the single-shard run for every
    ``k > 1``.  On a single-core host those ratios fall below 1 (process
    overhead with no parallel hardware) — that is signal, not failure.
    """
    from repro.runtime.shards import run_sharded_fleet

    setting = ExperimentSetting(num_frames=frames, seed=0)
    results: dict[int, object] = {}
    for shards in shard_counts:
        name = f"fleet_shards_{shards}of{fleet_size}x{frames}f"
        results[shards] = report.add(
            measure(
                name,
                lambda shards=shards: run_sharded_fleet(
                    setting, "default", fleet_size, shards
                ),
                iterations=1,
                repeats=repeats,
            )
        )
    base = results.get(1)
    if base is not None:
        for shards, result in results.items():
            if shards != 1:
                report.speedups[f"fleet_shards_{shards}"] = (
                    base.best_s / result.best_s
                )


def run_shard_bench_suite(
    quick: bool = False,
    fleet_size: int | None = None,
    shard_counts: tuple[int, ...] | None = None,
) -> BenchReport:
    """Run the shard-scaling sweep and return the populated report.

    Args:
        quick: CI-smoke mode — a small fleet, short episode and the
            ``(1, 2)`` counts only, to prove execution health.
        fleet_size: Sessions in the benchmarked cell (default 32 quick /
            256 full).
        shard_counts: Shard counts to sweep (default ``(1, 2)`` quick /
            :data:`DEFAULT_SHARD_COUNTS` full).
    """
    report = BenchReport(label=SHARD_BENCH_LABEL, quick=quick)
    size = fleet_size if fleet_size is not None else (32 if quick else 256)
    frames = 20 if quick else 50
    repeats = 1 if quick else 3
    counts = shard_counts if shard_counts is not None else (
        (1, 2) if quick else DEFAULT_SHARD_COUNTS
    )
    bench_shard_scaling(report, size, frames, tuple(counts), repeats)
    return report


def annotate_shard_speedups(
    speedups: "dict[str, float]", host_cpu_count: int
) -> dict[str, str]:
    """Label each shard speedup honestly, gated on the host's core count.

    A sub-1× shard "speedup" is *expected* when the host cannot actually
    run the shards in parallel — one core, or more shards than cores —
    because the sweep is then measuring pure process/serialisation
    overhead.  Only a sub-1× result with genuine parallel headroom is
    flagged as a regression; anything at or above 1× is ``"ok"``.
    """
    notes: dict[str, str] = {}
    for family, ratio in speedups.items():
        if not family.startswith("fleet_shards_"):
            continue
        try:
            shards = int(family.removeprefix("fleet_shards_"))
        except ValueError:
            continue
        if ratio >= 1.0:
            notes[family] = "ok"
        elif host_cpu_count < 2 or shards > host_cpu_count:
            notes[family] = (
                f"expected single-core overhead: {shards} shards on "
                f"{host_cpu_count} core(s) cannot run in parallel"
            )
        else:
            notes[family] = (
                f"regression: {ratio:.2f}x with {shards} shards on "
                f"{host_cpu_count} cores (parallel hardware available)"
            )
    return notes


def write_shard_report(report: BenchReport, output: str | Path) -> Path:
    """Serialise a shard-scaling report plus throughput metadata.

    Adds the per-shard-count aggregate frames/second table, the host core
    count the sweep actually had, and the documented multi-core target so
    the record is self-describing — including per-speedup honesty notes
    (:func:`annotate_shard_speedups`) that mark sub-1× entries as expected
    single-core overhead when the host could not parallelise them.
    """
    path = Path(output)
    payload = report.to_dict()
    host_cpu_count = os.cpu_count() or 1
    payload["host_cpu_count"] = host_cpu_count
    payload["parallel_hardware_available"] = host_cpu_count > 1
    payload["speedup_notes"] = annotate_shard_speedups(
        report.speedups, host_cpu_count
    )
    payload["throughput_target_frames_per_second"] = SHARD_THROUGHPUT_TARGET_FPS
    throughput: dict[str, float] = {}
    for result in report.results:
        if not result.name.startswith("fleet_shards_"):
            continue
        shards, _, rest = result.name.removeprefix("fleet_shards_").partition("of")
        sessions, _, frames = rest.partition("x")
        total_frames = int(sessions) * int(frames.removesuffix("f"))
        throughput[shards] = total_frames / result.best_s
    payload["shard_throughput_frames_per_second"] = throughput
    if throughput:
        payload["best_observed_frames_per_second"] = max(throughput.values())
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def run_fleet_bench_suite(quick: bool = False, fleet_size: int = FLEET_SIZE) -> BenchReport:
    """Run every fleet microbenchmark and return the populated report.

    Args:
        quick: CI-smoke mode — shorter episodes and fewer repeats, to prove
            execution health rather than produce stable numbers.
        fleet_size: Fleet size N used by every benchmark.
    """
    report = BenchReport(label=BENCH_LABEL, quick=quick)
    session_frames = 60 if quick else 150
    session_repeats = 1 if quick else 3
    micro_iters = 50 if quick else 400
    repeats = 2 if quick else 3

    # The heterogeneous case splits the population into (device, detector)
    # groups, so it needs a fleet-scale population before the batched
    # kernels amortise; benchmark it at realistic sizes.
    hetero_sessions = 48 if quick else 96

    bench_fleet_session(report, fleet_size, session_frames, session_repeats)
    bench_fleet_thermal(report, fleet_size, micro_iters, repeats)
    bench_fleet_governor(report, fleet_size, micro_iters, repeats)
    bench_fleet_proposals(report, fleet_size, micro_iters, repeats)
    bench_fleet_heterogeneous(
        report, hetero_sessions, session_frames, session_repeats
    )
    return report


def write_fleet_report(report: BenchReport, output: str | Path) -> Path:
    """Serialise ``report`` plus fleet metadata and targets to ``output``."""
    path = Path(output)
    payload = report.to_dict()
    payload["speedup_targets"] = dict(FLEET_SPEEDUP_TARGETS)
    session = next(
        (r for r in report.results if r.name.startswith("fleet_session_")
         and not r.name.endswith("_scalar")),
        None,
    )
    if session is not None:
        sessions, _, frames = session.name.removeprefix("fleet_session_").partition("x")
        payload["fleet_size"] = int(sessions)
        total_frames = int(sessions) * int(frames.removesuffix("f"))
        payload["aggregate_frames_per_second"] = total_frames / session.best_s
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
