"""Timing primitives of the benchmarking subsystem.

Small, dependency-free building blocks: a :class:`Timer` context manager
around :func:`time.perf_counter`, a :func:`measure` helper implementing the
usual best-of-``repeats`` × ``iterations`` loop, and the
:class:`BenchResult` record every microbenchmark produces.  The perf
trajectory of the repository (the ``BENCH_*.json`` files at the repo root)
is a serialisation of these records — see :mod:`repro.perf.benchmarks`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List


class Timer:
    """Context manager measuring wall-clock time with ``perf_counter``.

    Usage::

        with Timer() as t:
            do_work()
        print(t.elapsed_s)
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed_s: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None
        self.elapsed_s = time.perf_counter() - self._start


@dataclass(frozen=True)
class BenchResult:
    """Outcome of one microbenchmark.

    Attributes:
        name: Benchmark identifier (e.g. ``"train_batch"``).
        iterations: Inner-loop calls per repeat.
        repeats: Number of timed repeats; the *best* repeat is reported to
            suppress scheduling noise.
        best_s: Wall-clock seconds of the fastest repeat (whole inner loop).
        mean_s: Mean wall-clock seconds across repeats (whole inner loop).
    """

    name: str
    iterations: int
    repeats: int
    best_s: float
    mean_s: float

    @property
    def best_per_iter_ms(self) -> float:
        """Milliseconds per inner-loop call in the fastest repeat."""
        return self.best_s / self.iterations * 1e3

    def to_dict(self) -> Dict[str, float | int | str]:
        """JSON-serialisable representation."""
        return {
            "name": self.name,
            "iterations": self.iterations,
            "repeats": self.repeats,
            "best_s": self.best_s,
            "mean_s": self.mean_s,
            "best_per_iter_ms": self.best_per_iter_ms,
        }


def measure(
    name: str,
    fn: Callable[[], object],
    iterations: int,
    repeats: int = 3,
    setup: Callable[[], object] | None = None,
) -> BenchResult:
    """Time ``fn`` with the best-of-``repeats`` × ``iterations`` protocol.

    Args:
        name: Benchmark identifier carried into the result.
        fn: Zero-argument callable to time (called ``iterations`` times per
            repeat).
        iterations: Inner-loop calls per repeat; must be positive.
        repeats: Timed repeats; the fastest is reported as ``best_s``.
        setup: Optional callable run before every repeat, outside the timed
            region (e.g. refill a buffer the benchmark drains).
    """
    if iterations <= 0 or repeats <= 0:
        raise ValueError("iterations and repeats must be positive")
    timings: List[float] = []
    for _ in range(repeats):
        if setup is not None:
            setup()
        start = time.perf_counter()
        for _ in range(iterations):
            fn()
        timings.append(time.perf_counter() - start)
    return BenchResult(
        name=name,
        iterations=iterations,
        repeats=repeats,
        best_s=min(timings),
        mean_s=sum(timings) / len(timings),
    )


def measure_pair(
    name_current: str,
    fn_current: Callable[[], object],
    name_legacy: str,
    fn_legacy: Callable[[], object],
    iterations: int,
    repeats: int = 3,
) -> "tuple[BenchResult, BenchResult]":
    """Time a current/legacy pair with interleaved repeats.

    Alternating the two sides within each repeat means slow machine drift
    (frequency scaling, noisy neighbours) biases both measurements equally
    instead of whichever ran second, which stabilises the derived speedup
    ratio.
    """
    if iterations <= 0 or repeats <= 0:
        raise ValueError("iterations and repeats must be positive")
    current_times: List[float] = []
    legacy_times: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iterations):
            fn_current()
        current_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        for _ in range(iterations):
            fn_legacy()
        legacy_times.append(time.perf_counter() - start)
    return (
        BenchResult(
            name=name_current,
            iterations=iterations,
            repeats=repeats,
            best_s=min(current_times),
            mean_s=sum(current_times) / len(current_times),
        ),
        BenchResult(
            name=name_legacy,
            iterations=iterations,
            repeats=repeats,
            best_s=min(legacy_times),
            mean_s=sum(legacy_times) / len(legacy_times),
        ),
    )


@dataclass
class BenchReport:
    """A named collection of benchmark results plus derived speedups.

    ``speedups`` maps a benchmark family (e.g. ``"train_batch"``) to the
    ratio ``legacy_best / current_best`` — how many times faster the current
    implementation is than the recorded pre-refactor baseline measured in
    the same process.
    """

    label: str
    quick: bool
    results: List[BenchResult] = field(default_factory=list)
    speedups: Dict[str, float] = field(default_factory=dict)

    def add(self, result: BenchResult) -> BenchResult:
        """Record one result and return it (for chaining)."""
        self.results.append(result)
        return result

    def add_pair(self, family: str, current: BenchResult, legacy: BenchResult) -> None:
        """Record a current/legacy pair and its derived speedup."""
        self.results.append(current)
        self.results.append(legacy)
        self.speedups[family] = legacy.best_s / current.best_s

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation (the ``BENCH_*.json`` schema)."""
        return {
            "schema": "repro-bench/v1",
            "label": self.label,
            "quick": self.quick,
            "benchmarks": {r.name: r.to_dict() for r in self.results},
            "speedups": dict(self.speedups),
        }
