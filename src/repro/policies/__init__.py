"""Policy lifecycle: checkpoints, the policy zoo, frozen deployment and the
cross-scenario generalization matrix.

The rest of the repository trains and evaluates inside one process; this
layer makes trained agents *durable, versioned artifacts*:

* :mod:`repro.policies.checkpoint` — lossless, integrity-hashed
  serialisation of a full agent training state (network + target, Adam
  moments, replay rings, schedules, RNG, in-flight transitions); save →
  load → continue is bit-exact, even mid-episode.
* :mod:`repro.policies.store` — the content-addressed policy zoo with
  provenance metadata and parent lineage (``python -m repro policy
  train|list|show|export|import``).
* :mod:`repro.policies.frozen` — inference-only deployment of a stored
  checkpoint through the ordinary :class:`~repro.env.policy.Policy`
  protocol; the ``policy:<id>`` method string plugs one trained artifact
  into scalar runs, fleets and declarative scenarios alike.
* :mod:`repro.policies.train` — scenario-driven training into the zoo.
* :mod:`repro.policies.matrix` — the train/eval transfer grid over the
  scenario registry, executed on the cached experiment runtime
  (``python -m repro policy eval-matrix``).
"""

from repro.policies.checkpoint import (
    FORMAT_VERSION as CHECKPOINT_FORMAT_VERSION,
    PolicyCheckpoint,
    checkpoint_from_bytes,
    checkpoint_from_policy,
    checkpoint_to_bytes,
    policy_from_checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.policies.frozen import (
    POLICY_METHOD_PREFIX,
    FrozenLotusPolicy,
    FrozenZttPolicy,
    frozen_policy_for_environment,
    frozen_policy_from_checkpoint,
    is_policy_method,
    policy_method_id,
)
from repro.policies.matrix import (
    GeneralizationMatrix,
    MatrixCell,
    run_generalization_matrix,
)
from repro.policies.store import (
    POLICY_DIR_ENV,
    PolicyRecord,
    PolicyStore,
    default_policy_dir,
)
from repro.policies.train import train_policy

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "POLICY_DIR_ENV",
    "POLICY_METHOD_PREFIX",
    "FrozenLotusPolicy",
    "FrozenZttPolicy",
    "GeneralizationMatrix",
    "MatrixCell",
    "PolicyCheckpoint",
    "PolicyRecord",
    "PolicyStore",
    "checkpoint_from_bytes",
    "checkpoint_from_policy",
    "checkpoint_to_bytes",
    "default_policy_dir",
    "frozen_policy_for_environment",
    "frozen_policy_from_checkpoint",
    "is_policy_method",
    "policy_from_checkpoint",
    "policy_method_id",
    "read_checkpoint",
    "run_generalization_matrix",
    "train_policy",
    "write_checkpoint",
]
